//! Bit-blasting triplet form to SAT (paper §5.1, second step).
//!
//! Every integer definition is represented as a little-endian two's
//! complement bit-vector whose width is derived from its inferred interval,
//! so overflow is impossible by construction. Arithmetic triplets become
//! ripple-carry adders and shift-add multipliers (variable×variable products
//! included — the TDMA blocking terms need them); comparisons become
//! comparator chains.
//!
//! Two back-ends are supported, mirroring the paper's discussion:
//!
//! * [`Backend::Cnf`] — every gate is a set of plain clauses (the encoding
//!   the paper argues *against* for carry logic),
//! * [`Backend::PseudoBoolean`] — carry gates and cardinality use compact
//!   pseudo-Boolean constraints, e.g. the full-adder carry as the paper's
//!   `(2·c̄out + x + y + cin ≥ 2) ∧ (2·cout + x̄ + ȳ + c̄in ≥ 2)` pair.
//!
//! Constant bits are folded at every gate, so fixed operands (periods,
//! deadlines, WCET tables) cost nothing.

use crate::expr::{BoolVar, CmpOp, IntVar};
use crate::triplet::{ArithOp, BoolDef, IntDefKind, TripletForm};
use optalloc_sat::{Lit, PbOp, PbTerm, Solver};
use std::collections::HashMap;

/// How arithmetic gates are encoded.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Pure CNF clauses for every gate.
    Cnf,
    /// Pseudo-Boolean constraints where they are more compact (carries,
    /// cardinality, range bounds) — the paper's GOBLIN encoding.
    PseudoBoolean,
}

/// A propositional bit: either a known constant or a solver literal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Bit {
    Const(bool),
    Lit(Lit),
}

impl Bit {
    fn flip(self) -> Bit {
        match self {
            Bit::Const(b) => Bit::Const(!b),
            Bit::Lit(l) => Bit::Lit(!l),
        }
    }
}

/// A two's complement bit-vector, little-endian; the last bit is the sign.
#[derive(Clone, Debug)]
struct BitVec {
    bits: Vec<Bit>,
}

impl BitVec {
    fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Smallest two's complement width that represents every value in `[lo, hi]`.
fn width_for(lo: i64, hi: i64) -> usize {
    debug_assert!(lo <= hi);
    let mut w = 1;
    while !(-(1i64 << (w - 1)) <= lo && hi < (1i64 << (w - 1))) {
        w += 1;
        assert!(w <= 62, "bit width overflow for range [{lo}, {hi}]");
    }
    w
}

fn const_bitvec(v: i64) -> BitVec {
    let w = width_for(v, v);
    BitVec {
        bits: (0..w).map(|i| Bit::Const(v >> i & 1 == 1)).collect(),
    }
}

/// Result of blasting one [`TripletForm`] into a solver: the mapping from
/// problem variables to solver literals, used for bound constraints and
/// model extraction.
pub struct Blast {
    backend: Backend,
    int_inputs: HashMap<u32, BitVec>,
    bool_inputs: HashMap<u32, Lit>,
    /// Set when an assertion folded to `false` during blasting.
    trivially_unsat: bool,
    true_lit: Option<Lit>,
}

impl Blast {
    /// `true` if an assertion was constant-false (the instance is UNSAT
    /// regardless of the solver).
    pub fn trivially_unsat(&self) -> bool {
        self.trivially_unsat
    }

    /// Reads the model value of an integer input variable after a SAT
    /// verdict. Variables that never occurred in a constraint take their
    /// lower bound.
    pub fn int_value(&self, solver: &Solver, var: IntVar) -> i64 {
        match self.int_inputs.get(&var.id) {
            None => var.lo,
            Some(bv) => {
                let mut v: i64 = 0;
                let w = bv.width();
                for (i, &b) in bv.bits.iter().enumerate() {
                    let set = match b {
                        Bit::Const(c) => c,
                        Bit::Lit(l) => solver.model_value(l),
                    };
                    if set {
                        if i + 1 == w {
                            v -= 1i64 << i;
                        } else {
                            v += 1i64 << i;
                        }
                    }
                }
                v
            }
        }
    }

    /// Reads the model value of a Boolean input variable after a SAT
    /// verdict; variables absent from every constraint read `false`.
    pub fn bool_value(&self, solver: &Solver, var: BoolVar) -> bool {
        self.bool_inputs
            .get(&var.id)
            .map(|&l| solver.model_value(l))
            .unwrap_or(false)
    }

    /// Adds `guard → (lo ≤ var ≤ hi)` to the solver, for the binary-search
    /// bound constraints (§5.2). The guard is passed as an assumption while
    /// the bound is active.
    pub fn add_guarded_bounds(
        &mut self,
        solver: &mut Solver,
        var: IntVar,
        lo: i64,
        hi: i64,
        guard: Lit,
    ) {
        let bv = match self.int_inputs.get(&var.id) {
            Some(bv) => bv.clone(),
            // The variable occurs in no constraint: bounds on it only
            // matter if they exclude its whole range.
            None => {
                if lo > var.hi || hi < var.lo {
                    solver.add_clause(&[!guard]);
                }
                return;
            }
        };
        let mut g = Gates {
            solver,
            backend: self.backend,
            true_lit: &mut self.true_lit,
        };
        let ge = g.cmp(CmpOp::Le, &const_bitvec(lo), &bv);
        let le = g.cmp(CmpOp::Le, &bv, &const_bitvec(hi));
        for bit in [ge, le] {
            match bit {
                Bit::Const(true) => {}
                Bit::Const(false) => {
                    solver.add_clause(&[!guard]);
                }
                Bit::Lit(l) => {
                    solver.add_clause(&[!guard, l]);
                }
            }
        }
    }
}

/// Gate construction helpers operating on a solver.
struct Gates<'a> {
    solver: &'a mut Solver,
    backend: Backend,
    true_lit: &'a mut Option<Lit>,
}

impl Gates<'_> {
    fn fresh(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// A literal constrained to be true (for materializing constants).
    fn true_lit(&mut self) -> Lit {
        if let Some(l) = *self.true_lit {
            return l;
        }
        let l = self.fresh();
        self.solver.add_clause(&[l]);
        *self.true_lit = Some(l);
        l
    }

    fn materialize(&mut self, b: Bit) -> Lit {
        match b {
            Bit::Lit(l) => l,
            Bit::Const(true) => self.true_lit(),
            Bit::Const(false) => !self.true_lit(),
        }
    }

    fn and2(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
            (Bit::Lit(x), Bit::Lit(y)) => {
                if x == y {
                    return Bit::Lit(x);
                }
                if x == !y {
                    return Bit::Const(false);
                }
                let g = self.fresh();
                self.solver.add_clause(&[!g, x]);
                self.solver.add_clause(&[!g, y]);
                self.solver.add_clause(&[g, !x, !y]);
                Bit::Lit(g)
            }
        }
    }

    fn or2(&mut self, a: Bit, b: Bit) -> Bit {
        self.and2(a.flip(), b.flip()).flip()
    }

    fn xor2(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x ^ y),
            (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x.flip(),
            (Bit::Lit(x), Bit::Lit(y)) => {
                if x == y {
                    return Bit::Const(false);
                }
                if x == !y {
                    return Bit::Const(true);
                }
                let g = self.fresh();
                self.solver.add_clause(&[!g, x, y]);
                self.solver.add_clause(&[!g, !x, !y]);
                self.solver.add_clause(&[g, !x, y]);
                self.solver.add_clause(&[g, x, !y]);
                Bit::Lit(g)
            }
        }
    }

    fn iff2(&mut self, a: Bit, b: Bit) -> Bit {
        self.xor2(a, b).flip()
    }

    fn and_many(&mut self, bits: &[Bit]) -> Bit {
        let mut lits = Vec::with_capacity(bits.len());
        for &b in bits {
            match b {
                Bit::Const(false) => return Bit::Const(false),
                Bit::Const(true) => {}
                Bit::Lit(l) => lits.push(l),
            }
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0] == !w[1]) {
            return Bit::Const(false);
        }
        match lits.len() {
            0 => Bit::Const(true),
            1 => Bit::Lit(lits[0]),
            _ => {
                let g = self.fresh();
                for &l in &lits {
                    self.solver.add_clause(&[!g, l]);
                }
                let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                long.push(g);
                self.solver.add_clause(&long);
                Bit::Lit(g)
            }
        }
    }

    fn or_many(&mut self, bits: &[Bit]) -> Bit {
        let flipped: Vec<Bit> = bits.iter().map(|b| b.flip()).collect();
        self.and_many(&flipped).flip()
    }

    /// Full adder: returns `(sum, carry_out)`.
    fn full_adder(&mut self, a: Bit, b: Bit, cin: Bit) -> (Bit, Bit) {
        let t = self.xor2(a, b);
        let sum = self.xor2(t, cin);
        let cout = match (a, b, cin) {
            // With any constant input the carry reduces to AND/OR.
            (Bit::Const(false), x, y) | (x, Bit::Const(false), y) | (x, y, Bit::Const(false)) => {
                self.and2(x, y)
            }
            (Bit::Const(true), x, y) | (x, Bit::Const(true), y) | (x, y, Bit::Const(true)) => {
                self.or2(x, y)
            }
            (Bit::Lit(x), Bit::Lit(y), Bit::Lit(z)) => {
                let g = self.fresh();
                match self.backend {
                    Backend::PseudoBoolean => {
                        // The paper's compact majority encoding.
                        self.solver.add_pb(
                            &[
                                PbTerm::new(!g, 2),
                                PbTerm::new(x, 1),
                                PbTerm::new(y, 1),
                                PbTerm::new(z, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                        self.solver.add_pb(
                            &[
                                PbTerm::new(g, 2),
                                PbTerm::new(!x, 1),
                                PbTerm::new(!y, 1),
                                PbTerm::new(!z, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                    }
                    Backend::Cnf => {
                        self.solver.add_clause(&[!x, !y, g]);
                        self.solver.add_clause(&[!x, !z, g]);
                        self.solver.add_clause(&[!y, !z, g]);
                        self.solver.add_clause(&[x, y, !g]);
                        self.solver.add_clause(&[x, z, !g]);
                        self.solver.add_clause(&[y, z, !g]);
                    }
                }
                Bit::Lit(g)
            }
        };
        (sum, cout)
    }

    /// Sign-extends to exactly `w` bits.
    fn sext(&self, bv: &BitVec, w: usize) -> BitVec {
        debug_assert!(w >= bv.width());
        let sign = *bv.bits.last().unwrap();
        let mut bits = bv.bits.clone();
        bits.resize(w, sign);
        BitVec { bits }
    }

    /// `a + b`, widened so the result is exact.
    fn add(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let w = a.width().max(b.width()) + 1;
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        self.ripple(&a.bits, &b.bits, Bit::Const(false))
    }

    /// `a - b`, widened so the result is exact (`a + ¬b + 1`).
    fn sub(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let w = a.width().max(b.width()) + 1;
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        let nb: Vec<Bit> = b.bits.iter().map(|x| x.flip()).collect();
        self.ripple(&a.bits, &nb, Bit::Const(true))
    }

    /// Ripple-carry addition over equal-width inputs, truncating the final
    /// carry (callers guarantee the width holds the result).
    fn ripple(&mut self, a: &[Bit], b: &[Bit], mut carry: Bit) -> BitVec {
        debug_assert_eq!(a.len(), b.len());
        let mut bits = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            bits.push(s);
            carry = c;
        }
        BitVec { bits }
    }

    /// `a * b` via shift-and-add, truncated to a width that is exact for the
    /// given result range.
    fn mul(&mut self, a: &BitVec, b: &BitVec, lo: i64, hi: i64) -> BitVec {
        let w = width_for(lo, hi);
        let a = self.sext(a, w.max(a.width()));
        let b = self.sext(b, w.max(b.width()));
        // Truncated two's complement multiply: with both operands extended
        // to ≥ w bits, the low w bits of the product equal the true product
        // whenever it fits in w bits — which the range guarantees.
        let mut acc: Vec<Bit> = vec![Bit::Const(false); w];
        for j in 0..w {
            let bj = b.bits[j.min(b.width() - 1)];
            if bj == Bit::Const(false) {
                continue;
            }
            // addend = (a << j) & bj, truncated to w bits.
            let mut addend: Vec<Bit> = Vec::with_capacity(w);
            for i in 0..w {
                let bit = if i < j {
                    Bit::Const(false)
                } else {
                    let ai = a.bits[(i - j).min(a.width() - 1)];
                    self.and2(ai, bj)
                };
                addend.push(bit);
            }
            acc = self.ripple(&acc, &addend, Bit::Const(false)).bits;
        }
        BitVec { bits: acc }
    }

    /// Comparison `a ∼ b` over signed bit-vectors, returning one bit.
    fn cmp(&mut self, op: CmpOp, a: &BitVec, b: &BitVec) -> Bit {
        let w = a.width().max(b.width());
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        match op {
            CmpOp::Eq => {
                let per_bit: Vec<Bit> = (0..w).map(|i| self.iff2(a.bits[i], b.bits[i])).collect();
                self.and_many(&per_bit)
            }
            CmpOp::Le | CmpOp::Lt => {
                // Flip sign bits to reduce signed to unsigned comparison.
                let mut x = a.bits.clone();
                let mut y = b.bits.clone();
                x[w - 1] = x[w - 1].flip();
                y[w - 1] = y[w - 1].flip();
                let mut acc = Bit::Const(op == CmpOp::Le);
                for i in 0..w {
                    let lt = self.and2(x[i].flip(), y[i]);
                    let eq = self.iff2(x[i], y[i]);
                    let keep = self.and2(eq, acc);
                    acc = self.or2(lt, keep);
                }
                acc
            }
        }
    }
}

/// Encodes a triplet form into `solver` using the chosen backend.
///
/// Returns the [`Blast`] mapping for bound injection and model extraction.
pub fn blast(
    form: &TripletForm,
    decls: &[(i64, i64)],
    solver: &mut Solver,
    backend: Backend,
) -> Blast {
    let mut out = Blast {
        backend,
        int_inputs: HashMap::new(),
        bool_inputs: HashMap::new(),
        trivially_unsat: false,
        true_lit: None,
    };
    let mut int_bits: Vec<Option<BitVec>> = vec![None; form.ints.len()];
    let mut bool_bits: Vec<Option<Bit>> = vec![None; form.bools.len()];

    // Integer definitions, in topological order.
    for (idx, def) in form.ints.iter().enumerate() {
        let bv = match &def.kind {
            IntDefKind::Const(v) => const_bitvec(*v),
            IntDefKind::Input(decl) => {
                let (lo, hi) = decls[*decl as usize];
                let bv = fresh_input(&mut out, solver, backend, lo, hi);
                out.int_inputs.insert(*decl, bv.clone());
                bv
            }
            IntDefKind::Op(op, a, b) => {
                let (a, b) = (
                    int_bits[*a as usize].clone().unwrap(),
                    int_bits[*b as usize].clone().unwrap(),
                );
                let mut g = Gates {
                    solver,
                    backend,
                    true_lit: &mut out.true_lit,
                };
                match op {
                    ArithOp::Add => g.add(&a, &b),
                    ArithOp::Sub => g.sub(&a, &b),
                    ArithOp::Mul => g.mul(&a, &b, def.lo, def.hi),
                }
            }
        };
        int_bits[idx] = Some(bv);
    }

    // Boolean definitions.
    for (idx, def) in form.bools.iter().enumerate() {
        let bit = {
            let mut g = Gates {
                solver,
                backend,
                true_lit: &mut out.true_lit,
            };
            match def {
                BoolDef::Const(b) => Bit::Const(*b),
                BoolDef::Input(decl) => {
                    let l = *out
                        .bool_inputs
                        .entry(*decl)
                        .or_insert_with(|| solver.new_var().positive());
                    Bit::Lit(l)
                }
                BoolDef::Cmp(op, a, b) => {
                    let (a, b) = (
                        int_bits[*a as usize].clone().unwrap(),
                        int_bits[*b as usize].clone().unwrap(),
                    );
                    g.cmp(*op, &a, &b)
                }
                BoolDef::Not(a) => bool_bits[*a as usize].unwrap().flip(),
                BoolDef::And(ids) => {
                    let bits: Vec<Bit> = ids
                        .iter()
                        .map(|&i| bool_bits[i as usize].unwrap())
                        .collect();
                    g.and_many(&bits)
                }
                BoolDef::Or(ids) => {
                    let bits: Vec<Bit> = ids
                        .iter()
                        .map(|&i| bool_bits[i as usize].unwrap())
                        .collect();
                    g.or_many(&bits)
                }
                BoolDef::Iff(a, b) => {
                    let (x, y) = (
                        bool_bits[*a as usize].unwrap(),
                        bool_bits[*b as usize].unwrap(),
                    );
                    g.iff2(x, y)
                }
            }
        };
        bool_bits[idx] = Some(bit);
    }

    // Root assertions.
    for &root in &form.asserts {
        match bool_bits[root as usize].unwrap() {
            Bit::Const(true) => {}
            Bit::Const(false) => out.trivially_unsat = true,
            Bit::Lit(l) => {
                solver.add_clause(&[l]);
            }
        }
    }

    // Direct PB assertions over Boolean definitions.
    for (terms, op, bound) in &form.pb_asserts {
        let mut g = Gates {
            solver,
            backend,
            true_lit: &mut out.true_lit,
        };
        let pb_terms: Vec<PbTerm> = terms
            .iter()
            .map(|&(id, coef)| {
                let bit = bool_bits[id as usize].unwrap();
                let l = g.materialize(bit);
                PbTerm::new(l, coef)
            })
            .collect();
        if !solver.add_pb(&pb_terms, *op, *bound) {
            out.trivially_unsat = true;
        }
    }

    out
}

/// Allocates fresh bits for an input variable with range `[lo, hi]` and adds
/// its range constraints.
fn fresh_input(out: &mut Blast, solver: &mut Solver, backend: Backend, lo: i64, hi: i64) -> BitVec {
    if lo == hi {
        return const_bitvec(lo);
    }
    let w = width_for(lo, hi);
    let mut bits: Vec<Bit> = Vec::with_capacity(w);
    if lo >= 0 {
        // Non-negative: fresh value bits, constant-zero sign bit.
        for _ in 0..w - 1 {
            bits.push(Bit::Lit(solver.new_var().positive()));
        }
        bits.push(Bit::Const(false));
    } else {
        for _ in 0..w {
            bits.push(Bit::Lit(solver.new_var().positive()));
        }
    }
    let bv = BitVec { bits };
    // Range constraints (skip bounds that the width already enforces).
    let need_lo = lo > -(1i64 << (w - 1)) && lo != 0;
    let need_hi = hi < (1i64 << (w - 1)) - 1;
    match backend {
        Backend::PseudoBoolean => {
            let mut terms: Vec<PbTerm> = Vec::new();
            for (i, &b) in bv.bits.iter().enumerate() {
                if let Bit::Lit(l) = b {
                    let coef = if i + 1 == w { -(1i64 << i) } else { 1i64 << i };
                    terms.push(PbTerm::new(l, coef));
                }
            }
            if need_lo {
                solver.add_pb(&terms, PbOp::Ge, lo);
            }
            if need_hi {
                solver.add_pb(&terms, PbOp::Le, hi);
            }
        }
        Backend::Cnf => {
            let mut g = Gates {
                solver,
                backend,
                true_lit: &mut out.true_lit,
            };
            if need_lo {
                let ok = g.cmp(CmpOp::Le, &const_bitvec(lo), &bv);
                let l = g.materialize(ok);
                g.solver.add_clause(&[l]);
            }
            if need_hi {
                let ok = g.cmp(CmpOp::Le, &bv, &const_bitvec(hi));
                let l = g.materialize(ok);
                g.solver.add_clause(&[l]);
            }
        }
    }
    bv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(0, 0), 1);
        assert_eq!(width_for(0, 1), 2);
        assert_eq!(width_for(-1, 0), 1);
        assert_eq!(width_for(-2, 1), 2);
        assert_eq!(width_for(0, 127), 8);
        assert_eq!(width_for(0, 128), 9);
        assert_eq!(width_for(-128, 127), 8);
    }

    #[test]
    fn const_bitvec_roundtrip() {
        for v in [-5i64, -1, 0, 1, 6, 100] {
            let bv = const_bitvec(v);
            let mut got = 0i64;
            let w = bv.width();
            for (i, b) in bv.bits.iter().enumerate() {
                if let Bit::Const(true) = b {
                    if i + 1 == w {
                        got -= 1 << i;
                    } else {
                        got += 1 << i;
                    }
                }
            }
            assert_eq!(got, v, "roundtrip of {v}");
        }
    }
}
