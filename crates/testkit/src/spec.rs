//! The seed grammar: a compact, serializable description of one
//! hierarchical allocation instance.
//!
//! Specs reference everything *positionally* (ECU `j`, task `k`, medium
//! `m`), which matches the dense-id model layer exactly: `build` pushes
//! declarations in order, so spec index `i` becomes `EcuId(i)` / `TaskId(i)`
//! / `MediumId(i)`. That makes the metamorphic transforms (permute, scale,
//! tighten, drop) pure index arithmetic on plain data, and makes regression
//! files self-contained JSON.

use optalloc::{Objective, SolveOptions};
use optalloc_model::{Architecture, Ecu, Medium, Task, TaskSet, Time};
use serde::{Deserialize, Serialize};

/// One ECU declaration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EcuSpec {
    /// Unique name.
    pub name: String,
    /// Memory capacity in bytes; `None` = unlimited.
    pub memory: Option<u64>,
    /// Pure protocol converter: connects media but hosts no tasks.
    pub gateway_only: bool,
}

/// One communication-medium declaration over ECU indices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MediumSpec {
    /// Unique name.
    pub name: String,
    /// Member ECUs, as indices into [`InstanceSpec::ecus`].
    pub members: Vec<usize>,
    /// TDMA slot table (one slot length per member, in member order);
    /// `None` = priority-arbitrated (CAN-like). The table is fixed
    /// instance data unless the objective is a TRT minimization, which
    /// turns the slots of the targeted media into decision variables.
    pub tdma_slots: Option<Vec<Time>>,
    /// Per-frame protocol overhead (ticks).
    pub frame_overhead: Time,
    /// Transmission cost per payload byte (ticks).
    pub per_byte: Time,
}

/// One message a task sends.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MsgSpec {
    /// Receiver, as an index into [`InstanceSpec::tasks`].
    pub to: usize,
    /// Payload size in bytes.
    pub size: u32,
    /// Relative message deadline (ticks).
    pub deadline: Time,
}

/// One task declaration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskSpec {
    /// Unique name.
    pub name: String,
    /// Period (ticks).
    pub period: Time,
    /// Relative deadline (ticks).
    pub deadline: Time,
    /// Per-ECU WCET as `(ecu index, ticks)`; doubles as the placement
    /// permission set.
    pub wcet: Vec<(usize, Time)>,
    /// Messages sent by this task.
    pub messages: Vec<MsgSpec>,
    /// Tasks this one must not be co-located with (indices).
    pub separation: Vec<usize>,
    /// Memory footprint in bytes.
    pub memory: u64,
    /// Release jitter (ticks).
    pub jitter: Time,
}

/// The objective, with media referenced by index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectiveSpec {
    /// Minimize the token rotation time of TDMA medium `i`.
    Trt(usize),
    /// Minimize the sum of all TDMA token rotation times.
    SumTrt,
    /// Minimize the bus load (‰) of priority medium `i`.
    BusLoad(usize),
    /// Minimize the maximum per-ECU utilization (‰).
    MaxUtil,
    /// Minimize the max−min utilization spread (‰).
    Spread,
    /// Any feasible allocation.
    Feasibility,
}

impl ObjectiveSpec {
    /// The core-layer objective this spec denotes.
    pub fn to_objective(self) -> Objective {
        match self {
            ObjectiveSpec::Trt(i) => Objective::TokenRotationTime(i.into()),
            ObjectiveSpec::SumTrt => Objective::SumTokenRotationTimes,
            ObjectiveSpec::BusLoad(i) => Objective::BusLoadPermille(i.into()),
            ObjectiveSpec::MaxUtil => Objective::MaxUtilizationPermille,
            ObjectiveSpec::Spread => Objective::UtilizationSpreadPermille,
            ObjectiveSpec::Feasibility => Objective::Feasibility,
        }
    }

    /// The medium index the objective pins, if any.
    pub fn medium(self) -> Option<usize> {
        match self {
            ObjectiveSpec::Trt(i) | ObjectiveSpec::BusLoad(i) => Some(i),
            _ => None,
        }
    }

    /// `true` for objectives whose value is a *time* (scales with the
    /// clock); permille objectives are ratios and scale-invariant.
    pub fn is_time_valued(self) -> bool {
        matches!(self, ObjectiveSpec::Trt(_) | ObjectiveSpec::SumTrt)
    }
}

/// A complete instance: architecture, task set and objective.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// ECU declarations.
    pub ecus: Vec<EcuSpec>,
    /// Medium declarations.
    pub media: Vec<MediumSpec>,
    /// Task declarations.
    pub tasks: Vec<TaskSpec>,
    /// What to minimize.
    pub objective: ObjectiveSpec,
}

impl InstanceSpec {
    /// Materializes the spec into model-layer values. The spec grammar can
    /// express invalid instances (the shrinker explores freely), so this
    /// validates both layers and returns the first error.
    pub fn build(&self) -> Result<(Architecture, TaskSet), String> {
        let mut arch = Architecture::new();
        for e in &self.ecus {
            let mut ecu = Ecu::new(&e.name);
            if let Some(m) = e.memory {
                ecu = ecu.with_memory(m);
            }
            if e.gateway_only {
                ecu = ecu.gateway_only();
            }
            arch.push_ecu(ecu);
        }
        for m in &self.media {
            let members: Vec<_> = m.members.iter().map(|&i| i.into()).collect();
            let medium = match &m.tdma_slots {
                Some(slots) => Medium::tdma(
                    &m.name,
                    members,
                    slots.clone(),
                    m.frame_overhead,
                    m.per_byte,
                ),
                None => Medium::priority(&m.name, members, m.frame_overhead, m.per_byte),
            };
            arch.push_medium(medium);
        }
        arch.validate().map_err(|e| e.to_string())?;

        let mut tasks = TaskSet::new();
        for t in &self.tasks {
            let mut task = Task::new(
                &t.name,
                t.period,
                t.deadline,
                t.wcet.iter().map(|&(e, w)| (e.into(), w)),
            );
            for m in &t.messages {
                task = task.sends(m.to.into(), m.size, m.deadline);
            }
            for &s in &t.separation {
                task = task.separated_from(s.into());
            }
            if t.memory > 0 {
                task = task.with_memory(t.memory);
            }
            if t.jitter > 0 {
                task = task.with_jitter(t.jitter);
            }
            tasks.push(task);
        }
        tasks.validate()?;
        Ok((arch, tasks))
    }

    /// `true` if any medium is TDMA.
    pub fn has_tdma(&self) -> bool {
        self.media.iter().any(|m| m.tdma_slots.is_some())
    }

    /// Drops task `i`, remapping every index that pointed past it and
    /// erasing messages/separations that pointed *at* it — mirrors the
    /// semantics of [`optalloc::InstanceDelta::RemoveTask`].
    pub fn remove_task(&self, i: usize) -> InstanceSpec {
        let mut s = self.clone();
        s.tasks.remove(i);
        for t in &mut s.tasks {
            t.messages.retain(|m| m.to != i);
            for m in &mut t.messages {
                if m.to > i {
                    m.to -= 1;
                }
            }
            t.separation.retain(|&p| p != i);
            for p in &mut t.separation {
                if *p > i {
                    *p -= 1;
                }
            }
        }
        s
    }
}

/// The solve options every relation check uses, with a per-probe conflict
/// budget so pathological instances abort as *skipped* instead of hanging
/// the campaign. `paranoid` additionally turns on the deep solver-invariant
/// walks and per-model re-verification.
pub fn base_options(paranoid: bool) -> SolveOptions {
    SolveOptions {
        max_conflicts: Some(500_000),
        paranoid,
        ..SolveOptions::default()
    }
}
