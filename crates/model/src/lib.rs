//! # optalloc-model
//!
//! The system model of *"An optimal approach to the task allocation problem
//! on hierarchical architectures"* (Metzner et al., IPPS 2006), §2 and §4:
//!
//! * [`Architecture`] — `A = (P, K, κ)`: ECUs ([`Ecu`]) connected by
//!   communication media ([`Medium`]) that are either priority-driven (CAN)
//!   or TDMA (token ring / TTP), with gateway ECUs linking media into
//!   hierarchical topologies;
//! * [`TaskSet`] — tasks `τᵢ = (tᵢ, cᵢ, γᵢ, πᵢ, δᵢ, dᵢ)` with per-ECU
//!   WCETs, placement permissions, separation (redundancy) constraints,
//!   messages and deadlines;
//! * [`Allocation`] — the decision object `(Π, Φ, Γ)`: task placement,
//!   priority ordering and message routes with per-medium deadline budgets;
//! * [`path_closures`] — the §4 path-closure construction on the media
//!   graph (Figure 1), which fixes the *order* in which a multi-hop message
//!   crosses media.
//!
//! Everything is plain data with `serde` support; the schedulability
//! analysis lives in `optalloc-analysis` and the optimizer in `optalloc`.

#![warn(missing_docs)]

mod allocation;
mod architecture;
mod ids;
mod medium;
mod paths;
mod task;
mod time;

pub use allocation::{deadline_monotonic, Allocation, MessageRoute};
pub use architecture::{ArchError, Architecture, Ecu};
pub use ids::{EcuId, MediumId, MsgId, TaskId};
pub use medium::{Medium, MediumKind};
pub use paths::{
    endpoints_valid, gateways_along, path_closures, path_exists, shortest_route, Path, PathClosure,
};
pub use task::{Message, Task, TaskSet};
pub use time::{ms_to_ticks, ticks_to_ms, Time};
