//! **§7 ablation** — learned-clause reuse across the binary-search sequence.
//!
//! The paper's conclusion reports that carrying facts learned by the SAT
//! solver from one `SOLVE` call to the next "is able to speed up the
//! optimization procedure by a factor of 2 and more". This harness runs the
//! same minimization in both modes:
//!
//! * `Fresh` — every probe re-encodes and solves from scratch,
//! * `Incremental` — one solver, bounds as assumptions, clauses retained,
//!
//! and prints the speedup. `--full` uses larger instances.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_bench::{emit, parse_cli, Row};
use optalloc_intopt::BinSearchMode;
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();
    let sizes: &[usize] = if cli.full {
        &[12, 20, 30]
    } else {
        &[7, 12, 20]
    };

    for &n in sizes {
        let w = task_scaling(n);
        let mut times = Vec::new();
        for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
            let opts = SolveOptions {
                mode,
                max_slot: 48,
                max_conflicts: if cli.full { None } else { Some(5_000_000) },
                ..Default::default()
            };
            match Optimizer::new(&w.arch, &w.tasks)
                .with_options(opts)
                .minimize(&Objective::TokenRotationTime(MediumId(0)))
            {
                Ok(r) => {
                    times.push(r.wall.as_secs_f64());
                    rows.push(Row::from_report(
                        format!("{n} tasks, {mode:?}"),
                        &r,
                        format!("TRT = {}", r.cost),
                    ));
                }
                Err(e) => rows.push(Row {
                    experiment: format!("{n} tasks, {mode:?}"),
                    result: format!("{e}"),
                    time_s: 0.0,
                    vars_k: 0.0,
                    lits_k: 0.0,
                    note: String::new(),
                }),
            }
        }
        if times.len() == 2 && times[1] > 0.0 {
            rows.push(Row {
                experiment: format!("{n} tasks: speedup"),
                result: format!("{:.2}x", times[0] / times[1]),
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: "fresh / incremental wall time".into(),
            });
        }
    }

    emit(
        "§7 ablation: fresh re-encoding vs incremental learned-clause reuse",
        &rows,
        &cli,
    );
    println!("paper: incremental reuse 'speeds up the optimization by a factor of 2 and more'");
}
