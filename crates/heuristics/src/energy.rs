//! Energy (cost) function shared by the heuristic allocators.
//!
//! Following Tindell et al. \[5\], infeasibility is folded into the energy as
//! a weighted penalty so the search can traverse infeasible regions, while
//! the objective value breaks ties among feasible states.

use optalloc_analysis::{validate, AnalysisConfig, Report};
use optalloc_model::{Allocation, Architecture, MediumId, TaskSet};

/// What the heuristic minimizes (mirrors `optalloc::Objective` without
/// depending on the optimizer crate).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeuristicObjective {
    /// Token rotation time of one TDMA medium.
    TokenRotationTime(MediumId),
    /// Sum of token rotation times over all TDMA media.
    SumTokenRotationTimes,
    /// Bus load (‰) of one priority medium.
    BusLoadPermille(MediumId),
    /// Maximum per-ECU utilization (‰).
    MaxUtilizationPermille,
    /// Max−min spread of per-ECU utilization (‰).
    UtilizationSpreadPermille,
    /// Pure feasibility search.
    Feasibility,
}

/// Weight of one constraint violation relative to one objective unit.
pub const VIOLATION_PENALTY: i64 = 100_000;

/// The energy of a candidate allocation: `penalty·violations + objective`.
pub fn energy(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    objective: &HeuristicObjective,
    config: &AnalysisConfig,
) -> (i64, Report) {
    let report = validate(arch, tasks, alloc, config);
    let obj = objective_value(arch, tasks, alloc, objective);
    let e = VIOLATION_PENALTY * report.violations.len() as i64 + obj;
    (e, report)
}

/// The raw objective value of an allocation (ignoring feasibility).
pub fn objective_value(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    objective: &HeuristicObjective,
) -> i64 {
    match objective {
        HeuristicObjective::TokenRotationTime(k) => {
            optalloc_analysis::token_rotation_time(arch, alloc, *k).unwrap_or(0) as i64
        }
        HeuristicObjective::SumTokenRotationTimes => optalloc_analysis::sum_trt(arch, alloc) as i64,
        HeuristicObjective::BusLoadPermille(k) => {
            optalloc_analysis::bus_load_permille(arch, tasks, alloc, *k) as i64
        }
        HeuristicObjective::MaxUtilizationPermille => {
            *optalloc_analysis::ecu_utilization_permille(tasks, alloc, arch.num_ecus())
                .iter()
                .max()
                .unwrap_or(&0) as i64
        }
        HeuristicObjective::UtilizationSpreadPermille => {
            optalloc_analysis::utilization_minmax_spread_permille(tasks, alloc, arch.num_ecus())
                as i64
        }
        HeuristicObjective::Feasibility => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, EcuId, Medium, Task};

    #[test]
    fn energy_penalizes_violations() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1));
        let mut tasks = TaskSet::new();
        tasks.push(Task::new("a", 10, 10, vec![(EcuId(0), 5)]));
        let mut alloc = Allocation::skeleton(&tasks);
        let config = AnalysisConfig::default();

        let (feasible_e, _) = energy(
            &arch,
            &tasks,
            &alloc,
            &HeuristicObjective::MaxUtilizationPermille,
            &config,
        );
        assert_eq!(feasible_e, 500); // 5/10 = 500‰, no violations

        // Move to a forbidden ECU.
        alloc.placement[0] = EcuId(1);
        let (bad_e, report) = energy(
            &arch,
            &tasks,
            &alloc,
            &HeuristicObjective::MaxUtilizationPermille,
            &config,
        );
        assert!(!report.is_feasible());
        assert!(bad_e >= VIOLATION_PENALTY);
    }
}
