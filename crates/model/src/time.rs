//! Time representation.
//!
//! All model quantities (periods, deadlines, WCETs, slot lengths,
//! transmission times) are integers in **ticks**. The tick length is a
//! property of the workload, not of the library; the bundled benchmark
//! workloads use 50 µs ticks so that the paper's 8.55 ms token rotation
//! time corresponds to 171 ticks.

/// A duration or instant in ticks.
pub type Time = u64;

/// Converts milliseconds to ticks at the bundled workloads' 50 µs tick.
pub const fn ms_to_ticks(ms: u64) -> Time {
    ms * 20
}

/// Converts ticks to milliseconds (as f64) at the 50 µs tick.
pub fn ticks_to_ms(t: Time) -> f64 {
    t as f64 / 20.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_conversions() {
        assert_eq!(ms_to_ticks(1), 20);
        assert_eq!(ms_to_ticks(50), 1000);
        assert!((ticks_to_ms(171) - 8.55).abs() < 1e-12);
    }
}
