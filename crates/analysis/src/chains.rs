//! End-to-end latency of task→message→task chains.
//!
//! The paper's task model activates receivers by message arrival; the
//! end-to-end latency of one hop under an allocation is bounded by
//!
//! ```text
//! r_sender  +  Σ_k d_m^k  +  serv_m  +  r_receiver
//! ```
//!
//! — the sender's worst response, the message's budgeted path latency
//! (each local deadline bounds the per-medium response, by construction of
//! the feasible allocation), the gateway service, and the receiver's worst
//! response. This module reports those bounds for inspection and
//! regression tests; it is *derived* information, not a new constraint.

use crate::holistic::AnalysisConfig;
use crate::task_rta::task_response_time;
use optalloc_model::{gateways_along, Allocation, Architecture, MsgId, TaskSet, Time};

/// End-to-end latency bound of one message hop (sender release → receiver
/// completion), or `None` if either side is unschedulable.
pub fn hop_latency_bound(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    msg: MsgId,
    config: &AnalysisConfig,
) -> Option<Time> {
    let m = tasks.message(msg);
    let sender_rt = task_response_time(tasks, alloc, msg.sender, config.task_jitter).value()?;
    let receiver_rt = task_response_time(tasks, alloc, m.to, config.task_jitter).value()?;
    let route = alloc.route(msg);
    let path_latency: Time = route.local_deadlines.iter().sum();
    let service = gateways_along(arch, &route.media).len() as Time * config.gateway_service;
    Some(sender_rt + path_latency + service + receiver_rt)
}

/// Latency bounds for every message of the task set, in message order.
pub fn all_hop_latency_bounds(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    config: &AnalysisConfig,
) -> Vec<(MsgId, Option<Time>)> {
    tasks
        .messages()
        .map(|(mid, _)| (mid, hop_latency_bound(arch, tasks, alloc, mid, config)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, EcuId, Medium, MessageRoute, Task, TaskId};

    #[test]
    fn hop_latency_adds_all_components() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_ecu(Ecu::new("gw").gateway_only());
        arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(2)], 1, 1));
        arch.push_medium(Medium::priority("k1", vec![EcuId(1), EcuId(2)], 1, 1));

        let mut ts = TaskSet::new();
        ts.push(Task::new("s", 200, 200, vec![(EcuId(0), 10)]).sends(TaskId(1), 4, 100));
        ts.push(Task::new("r", 200, 150, vec![(EcuId(1), 20)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute {
            media: vec![optalloc_model::MediumId(0), optalloc_model::MediumId(1)],
            local_deadlines: vec![30, 40],
        };

        let config = AnalysisConfig {
            gateway_service: 5,
            ..Default::default()
        };
        // sender r = 10, path = 30 + 40, 1 gateway × 5, receiver r = 20.
        assert_eq!(
            hop_latency_bound(&arch, &ts, &alloc, msg, &config),
            Some(10 + 70 + 5 + 20)
        );
        let all = all_hop_latency_bounds(&arch, &ts, &alloc, &config);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].1, Some(105));
    }

    #[test]
    fn unschedulable_side_yields_none() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
        let mut ts = TaskSet::new();
        ts.push(Task::new("s", 10, 5, vec![(EcuId(0), 9)]).sends(TaskId(1), 2, 8));
        ts.push(Task::new("r", 100, 100, vec![(EcuId(1), 5)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute::single_hop(optalloc_model::MediumId(0), 8);
        // Sender misses its deadline (9 > 5).
        assert_eq!(
            hop_latency_bound(&arch, &ts, &alloc, msg, &AnalysisConfig::default()),
            None
        );
    }
}
