//! Structured instance generator.
//!
//! Builds *valid* hierarchical instances from a seed: a chain of 1–3
//! communication media (priority/TDMA mix) joined by gateway ECUs such that
//! adjacent media share exactly one ECU (the model layer's hierarchy rule),
//! and a task set with placement restrictions, separation constraints,
//! multi-hop messages and occasional memory footprints. Everything is
//! derived from one `u64` through a self-contained xoshiro stream, so a
//! seed is a complete reproducer.

use crate::spec::{EcuSpec, InstanceSpec, MediumSpec, MsgSpec, ObjectiveSpec, TaskSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Size dials for the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Upper bound on generated tasks (lower bound is 3).
    pub max_tasks: usize,
    /// Upper bound on generated media (lower bound is 1).
    pub max_media: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_tasks: 8,
            max_media: 3,
        }
    }
}

/// Generates one instance from `seed`. The result always passes both
/// model-layer validators (checked by `debug_assert` here and re-checked by
/// every consumer through [`InstanceSpec::build`]).
pub fn gen_spec(seed: u64, cfg: &GenConfig) -> InstanceSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_media = rng.gen_range(1..=cfg.max_media.max(1));

    // Architecture: per-medium ECU groups chained by gateways. Medium `i`
    // spans its own group plus the first ECU of group `i+1`, so adjacent
    // media share exactly that one ECU and non-adjacent media share none.
    let mut ecus: Vec<EcuSpec> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for g in 0..n_media {
        // The last group carries the whole final medium, so it needs two
        // members on its own.
        let size = if g == n_media - 1 {
            2
        } else {
            rng.gen_range(1..=2)
        };
        let mut group = Vec::new();
        for _ in 0..size {
            let idx = ecus.len();
            ecus.push(EcuSpec {
                name: format!("e{idx}"),
                memory: None,
                gateway_only: false,
            });
            group.push(idx);
        }
        groups.push(group);
    }
    // Occasionally dedicate a gateway to protocol conversion only.
    for g in 1..n_media {
        if rng.gen_bool(0.3) {
            ecus[groups[g][0]].gateway_only = true;
        }
    }

    let mut media: Vec<MediumSpec> = Vec::new();
    for (g, group) in groups.iter().enumerate() {
        let mut members = group.clone();
        if g + 1 < n_media {
            members.push(groups[g + 1][0]);
        }
        let tdma = rng.gen_bool(0.5);
        let tdma_slots = tdma.then(|| {
            members
                .iter()
                .map(|_| rng.gen_range(4..=16))
                .collect::<Vec<_>>()
        });
        media.push(MediumSpec {
            name: format!("m{g}"),
            tdma_slots,
            members,
            frame_overhead: rng.gen_range(1..=3),
            per_byte: rng.gen_range(1..=2),
        });
    }

    let hosts: Vec<usize> = (0..ecus.len()).filter(|&e| !ecus[e].gateway_only).collect();

    // Tasks.
    let n_tasks = rng.gen_range(3..=cfg.max_tasks.max(3));
    let mut tasks: Vec<TaskSpec> = Vec::new();
    for t in 0..n_tasks {
        let period: u64 = rng.gen_range(20..=120);
        let n_hosts = rng.gen_range(1..=hosts.len().min(3));
        let mut allowed = hosts.clone();
        // Partial Fisher–Yates: the first `n_hosts` entries become the
        // placement permission set.
        for i in 0..n_hosts {
            let j = rng.gen_range(i..allowed.len());
            allowed.swap(i, j);
        }
        allowed.truncate(n_hosts);
        let wcet: Vec<(usize, u64)> = allowed
            .into_iter()
            .map(|e| (e, rng.gen_range(1..=12)))
            .collect();
        let max_wcet = wcet.iter().map(|&(_, w)| w).max().unwrap();
        // Deadlines between "twice the worst WCET" and the period keep most
        // instances feasible-but-tight; infeasible ones are still legal.
        let deadline = rng.gen_range((max_wcet * 2).min(period)..=period);
        tasks.push(TaskSpec {
            name: format!("t{t}"),
            period,
            deadline,
            wcet,
            messages: Vec::new(),
            separation: Vec::new(),
            memory: if rng.gen_bool(0.25) {
                rng.gen_range(1..=8)
            } else {
                0
            },
            jitter: 0,
        });
    }
    // Messages (possibly multi-hop across the gateway chain) and
    // separation constraints, added after all receivers exist.
    for (t, task) in tasks.iter_mut().enumerate() {
        if rng.gen_bool(0.4) {
            let to = rng.gen_range(0..n_tasks - 1);
            let to = if to >= t { to + 1 } else { to };
            task.messages.push(MsgSpec {
                to,
                size: rng.gen_range(1..=6),
                deadline: rng.gen_range(15..=60),
            });
        }
        if rng.gen_bool(0.2) {
            let other = rng.gen_range(0..n_tasks - 1);
            let other = if other >= t { other + 1 } else { other };
            if !task.separation.contains(&other) {
                task.separation.push(other);
            }
        }
    }
    // Occasionally cap one hosting ECU's memory generously enough to stay
    // mostly satisfiable.
    if rng.gen_bool(0.2) {
        let e = hosts[rng.gen_range(0..hosts.len())];
        ecus[e].memory = Some(rng.gen_range(16..=64));
    }

    // Objective: pick one the generated media mix supports.
    let tdma_media: Vec<usize> = (0..media.len())
        .filter(|&i| media[i].tdma_slots.is_some())
        .collect();
    let prio_media: Vec<usize> = (0..media.len())
        .filter(|&i| media[i].tdma_slots.is_none())
        .collect();
    let mut candidates = vec![
        ObjectiveSpec::MaxUtil,
        ObjectiveSpec::Spread,
        ObjectiveSpec::Feasibility,
    ];
    if let Some(&m) = tdma_media.first() {
        candidates.push(ObjectiveSpec::Trt(m));
        candidates.push(ObjectiveSpec::SumTrt);
    }
    if let Some(&m) = prio_media.first() {
        candidates.push(ObjectiveSpec::BusLoad(m));
    }
    let objective = candidates[rng.gen_range(0..candidates.len())];

    let spec = InstanceSpec {
        ecus,
        media,
        tasks,
        objective,
    };
    debug_assert!(spec.build().is_ok(), "generator produced invalid spec");
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_seeds_build_valid_instances() {
        let cfg = GenConfig::default();
        for seed in 0..100 {
            let spec = gen_spec(seed, &cfg);
            let (arch, tasks) = spec.build().expect("generated spec must build");
            assert!(arch.num_ecus() >= 2);
            assert!(tasks.len() >= 3);
            // Objective media references must exist and match the kind.
            if let Some(m) = spec.objective.medium() {
                let is_tdma = spec.media[m].tdma_slots.is_some();
                match spec.objective {
                    ObjectiveSpec::Trt(_) => assert!(is_tdma),
                    ObjectiveSpec::BusLoad(_) => assert!(!is_tdma),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = GenConfig::default();
        assert_eq!(gen_spec(42, &cfg), gen_spec(42, &cfg));
        assert_ne!(gen_spec(42, &cfg), gen_spec(43, &cfg));
    }
}
