//! **Service ablation** — what the long-running service buys over
//! one-shot solving: result caching and delta-driven warm re-solves.
//!
//! On `table3-t20` (the paper's task-scaling family) this harness runs,
//! through one `optalloc_service::Service`:
//!
//! 1. **cold** — first submission, nothing to reuse;
//! 2. **cache** — the identical instance again: must answer with ZERO
//!    SAT calls and the identical optimum (asserted);
//! 3. **warm** — a single-WCET delta re-solve, seeded from the previous
//!    certificate's bounds;
//! 4. **cold-mutated** — the mutated instance solved from scratch as the
//!    baseline: the warm re-solve must reach the SAME optimum with fewer
//!    conflicts in less time (asserted).
//!
//! `--full` drops the quick-mode conflict bound and adds `table3-t30`.

use optalloc::{InstanceDelta, Objective, Optimizer};
use optalloc_bench::{emit, parse_cli, solve_options, Row};
use optalloc_service::protocol::{Instance, JobOutcome, JobResult, Request, Response, WarmLabel};
use optalloc_service::{Service, ServiceConfig};
use optalloc_workloads::task_scaling;

fn result_of(response: Response) -> JobResult {
    match response {
        Response::Result(r) => r,
        other => panic!("service refused the job: {other:?}"),
    }
}

fn cost_of(result: &JobResult) -> i64 {
    match &result.outcome {
        JobOutcome::Optimal { cost, .. } => *cost,
        other => panic!("expected an optimum, got {other:?}"),
    }
}

fn row(label: String, r: &JobResult, note: String) -> Row {
    Row {
        experiment: label,
        result: format!("optimum {}", cost_of(r)),
        time_s: r.solve_ms as f64 / 1000.0,
        vars_k: 0.0,
        lits_k: 0.0,
        note: format!(
            "{} SOLVE calls, {} conflicts{}{}",
            r.solve_calls,
            r.conflicts,
            if r.cached { ", cache hit" } else { "" },
            if note.is_empty() {
                String::new()
            } else {
                format!("; {note}")
            }
        ),
    }
}

fn main() {
    let cli = parse_cli();
    let sizes: &[usize] = if cli.full { &[20, 30] } else { &[20] };
    let mut rows = Vec::new();

    for &n in sizes {
        let w = task_scaling(n);
        let instance = Instance {
            arch: w.arch.clone(),
            tasks: w.tasks.clone(),
        };
        let objective = Objective::MaxUtilizationPermille;
        let opts = solve_options(cli.full);
        let service = Service::new(ServiceConfig {
            solve: opts.clone(),
            ..ServiceConfig::default()
        });
        let solve = |i: Instance| {
            result_of(service.handle(Request::Solve {
                instance: i,
                objective: objective.clone(),
                timeout_ms: None,
            }))
        };

        // 1. Cold: first contact with the instance.
        let cold = solve(instance.clone());
        rows.push(row(format!("t{n} cold solve"), &cold, String::new()));

        // 2. Cache: the same instance must not touch the SAT layer.
        let cached = solve(instance.clone());
        assert!(
            cached.cached,
            "t{n}: identical resubmission must hit the cache"
        );
        assert_eq!(
            cached.solve_calls, 0,
            "t{n}: a cache hit must issue zero SAT calls"
        );
        assert_eq!(cached.conflicts, 0, "t{n}: a cache hit spends no conflicts");
        assert_eq!(
            cost_of(&cached),
            cost_of(&cold),
            "t{n}: cache must return the original optimum"
        );
        rows.push(row(format!("t{n} cache hit"), &cached, String::new()));

        // 3. Warm: lower one task's largest WCET by a tick and re-solve
        // through the delta path.
        let (task, ecu, wcet) = w
            .tasks
            .iter()
            .flat_map(|(_, t)| {
                t.wcet
                    .iter()
                    .map(|(&e, &c)| (t.name.clone(), w.arch.ecu(e).name.clone(), c))
            })
            .max_by_key(|&(_, _, c)| c)
            .expect("non-empty task set");
        assert!(wcet > 1, "t{n}: generated WCETs leave room to shrink");
        let ops = vec![InstanceDelta::SetWcet {
            task,
            ecu,
            wcet: wcet - 1,
        }];
        let warm = result_of(service.handle(Request::Delta {
            base: Some(cold.fingerprint.clone()),
            ops: ops.clone(),
            objective: None,
            timeout_ms: None,
        }));
        assert!(
            matches!(warm.warm, WarmLabel::Seeded | WarmLabel::Reused),
            "t{n}: a WCET delta must re-solve warm, got {:?}",
            warm.warm
        );

        // 4. Baseline: the mutated instance from scratch.
        let mut mutated = instance.clone();
        optalloc::apply_deltas(&mutated.arch, &mut mutated.tasks, &ops).expect("delta applies");
        let baseline = Optimizer::new(&mutated.arch, &mutated.tasks)
            .with_options(opts.clone())
            .minimize(&objective)
            .expect("mutated instance stays feasible");

        assert_eq!(
            cost_of(&warm),
            baseline.cost,
            "t{n}: warm and cold optima must be identical"
        );
        assert!(
            warm.conflicts < baseline.stats.conflicts,
            "t{n}: warm re-solve must spend fewer conflicts \
             (warm {} vs cold {})",
            warm.conflicts,
            baseline.stats.conflicts
        );
        let baseline_ms = baseline.wall.as_millis() as u64;
        assert!(
            warm.solve_ms < baseline_ms.max(1),
            "t{n}: warm re-solve must be faster (warm {} ms vs cold {} ms)",
            warm.solve_ms,
            baseline_ms
        );
        rows.push(row(
            format!("t{n} warm delta ({:?})", warm.warm),
            &warm,
            format!(
                "vs cold re-solve: {} conflicts, {} ms",
                baseline.stats.conflicts, baseline_ms
            ),
        ));
        rows.push(Row {
            experiment: format!("t{n} warm/cold ratio"),
            result: format!(
                "{:.2}x conflicts",
                baseline.stats.conflicts.max(1) as f64 / warm.conflicts.max(1) as f64
            ),
            time_s: 0.0,
            vars_k: 0.0,
            lits_k: 0.0,
            note: format!(
                "time {:.2}x",
                baseline_ms.max(1) as f64 / warm.solve_ms.max(1) as f64
            ),
        });
        service.shutdown();
    }

    emit(
        "service ablation: result cache + delta warm re-solve vs cold solving",
        &rows,
        &cli,
    );
    println!("all in-binary assertions passed: cache hits issue zero SAT calls; warm re-solves match cold optima with fewer conflicts");
}
