//! Greedy first-fit baseline: place tasks in decreasing-utilization order on
//! the permitted ECU with the lowest resulting utilization, preferring
//! co-location with already-placed communication partners.

use crate::energy::{energy, HeuristicObjective};
use optalloc_analysis::AnalysisConfig;
use optalloc_model::{Allocation, Architecture, EcuId, TaskId, TaskSet};

/// Result of the greedy allocator.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// The constructed allocation.
    pub allocation: Allocation,
    /// Whether it passes full validation.
    pub feasible: bool,
    /// Its objective value.
    pub objective: i64,
}

/// Response-time check for one ECU: every task currently placed on `ecu`
/// plus `extra` stays within its deadline under deadline-monotonic order.
fn ecu_schedulable(tasks: &TaskSet, placed: &[Option<EcuId>], extra: TaskId, ecu: EcuId) -> bool {
    let mut local: Vec<TaskId> = placed
        .iter()
        .enumerate()
        .filter(|&(_, p)| *p == Some(ecu))
        .map(|(i, _)| TaskId(i as u32))
        .collect();
    local.push(extra);
    // Deadline-monotonic order (ties by id), highest priority first.
    local.sort_by_key(|&tid| (tasks.task(tid).deadline, tid));
    for (idx, &tid) in local.iter().enumerate() {
        let t = tasks.task(tid);
        let c = match t.wcet_on(ecu) {
            Some(c) => c,
            None => return false,
        };
        let mut r = c;
        'fixpoint: loop {
            let mut next = c;
            for &hp in &local[..idx] {
                let h = tasks.task(hp);
                next += r.div_ceil(h.period) * h.wcet_on(ecu).unwrap();
            }
            if next > t.deadline {
                return false;
            }
            if next == r {
                break 'fixpoint;
            }
            r = next;
        }
    }
    true
}

/// Runs the greedy allocator.
pub fn greedy(
    arch: &Architecture,
    tasks: &TaskSet,
    objective: &HeuristicObjective,
) -> GreedyResult {
    // Order: heaviest tasks first.
    let mut order: Vec<TaskId> = (0..tasks.len()).map(|i| TaskId(i as u32)).collect();
    order.sort_by(|&a, &b| {
        tasks
            .task(b)
            .max_utilization()
            .partial_cmp(&tasks.task(a).max_utilization())
            .unwrap()
    });

    let mut util = vec![0f64; arch.num_ecus()];
    let mut placed: Vec<Option<EcuId>> = vec![None; tasks.len()];
    for tid in order {
        let t = tasks.task(tid);
        // Communication partners already placed.
        let partners: Vec<EcuId> = tasks
            .messages()
            .filter_map(|(mid, m)| {
                if mid.sender == tid {
                    placed[m.to.index()]
                } else if m.to == tid {
                    placed[mid.sender.index()]
                } else {
                    None
                }
            })
            .collect();
        let mut candidates: Vec<EcuId> = t
            .allowed_ecus()
            .filter(|&p| arch.ecu(p).hosts_tasks)
            .filter(|&p| {
                // Respect separation against already-placed partners.
                !t.separation
                    .iter()
                    .any(|&other| placed[other.index()] == Some(p))
            })
            .collect();
        candidates.sort_by(|&a, &b| {
            let score = |p: EcuId| {
                let u = util[p.index()] + t.wcet_on(p).unwrap() as f64 / t.period as f64;
                let coloc_bonus = if partners.contains(&p) { -0.5 } else { 0.0 };
                u + coloc_bonus
            };
            score(a).partial_cmp(&score(b)).unwrap()
        });
        // First fit: prefer the best-scored ECU on which every task placed
        // there (including this one) stays schedulable.
        let best = candidates
            .iter()
            .copied()
            .find(|&p| ecu_schedulable(tasks, &placed, tid, p))
            .or(candidates.first().copied());
        let p = match best {
            Some(p) => p,
            // Separation made every ECU illegal; fall back to any allowed.
            None => t
                .allowed_ecus()
                .find(|&p| arch.ecu(p).hosts_tasks)
                .expect("validated task sets always have a legal ECU"),
        };
        placed[tid.index()] = Some(p);
        util[p.index()] += t.wcet_on(p).unwrap() as f64 / t.period as f64;
    }

    let mut alloc = Allocation::skeleton(tasks);
    alloc.placement = placed.into_iter().map(Option::unwrap).collect();
    crate::annealing::derive_routes(arch, tasks, &mut alloc);
    crate::annealing::derive_min_slots(arch, tasks, &mut alloc);

    let config = AnalysisConfig::default();
    let (_, report) = energy(arch, tasks, &alloc, objective, &config);
    GreedyResult {
        feasible: report.is_feasible(),
        objective: crate::energy::objective_value(arch, tasks, &alloc, objective),
        allocation: alloc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium, Task};

    #[test]
    fn greedy_balances_load() {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
        let mut tasks = TaskSet::new();
        for i in 0..4 {
            tasks.push(Task::new(
                format!("t{i}"),
                100,
                90 + i,
                vec![(p0, 30), (p1, 30)],
            ));
        }
        let result = greedy(&arch, &tasks, &HeuristicObjective::MaxUtilizationPermille);
        assert!(result.feasible);
        // Two tasks per ECU → 60% each.
        assert_eq!(result.objective, 600);
    }

    #[test]
    fn greedy_prefers_colocation_of_chains() {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
        let mut tasks = TaskSet::new();
        tasks.push(Task::new("src", 100, 80, vec![(p0, 10), (p1, 10)]).sends(TaskId(1), 4, 50));
        tasks.push(Task::new("dst", 100, 90, vec![(p0, 10), (p1, 10)]));
        let result = greedy(
            &arch,
            &tasks,
            &HeuristicObjective::BusLoadPermille(optalloc_model::MediumId(0)),
        );
        assert!(result.feasible);
        assert_eq!(
            result.allocation.ecu_of(TaskId(0)),
            result.allocation.ecu_of(TaskId(1)),
            "chain should co-locate"
        );
        assert_eq!(result.objective, 0);
    }

    #[test]
    fn greedy_respects_separation() {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
        let mut tasks = TaskSet::new();
        tasks.push(Task::new("a", 100, 80, vec![(p0, 10), (p1, 10)]).separated_from(TaskId(1)));
        tasks.push(Task::new("b", 100, 90, vec![(p0, 10), (p1, 10)]).separated_from(TaskId(0)));
        let result = greedy(&arch, &tasks, &HeuristicObjective::Feasibility);
        assert!(result.feasible);
        assert_ne!(
            result.allocation.ecu_of(TaskId(0)),
            result.allocation.ecu_of(TaskId(1))
        );
    }
}
