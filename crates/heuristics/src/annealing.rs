//! Simulated annealing allocator in the style of Tindell, Burns & Wellings
//! \[5\] — the heuristic baseline the paper's Table 1 compares against.
//!
//! The state is a task placement plus TDMA slot tables; message routes and
//! per-hop deadline budgets are derived (shortest media path, even split),
//! and priorities are deadline-monotonic. Moves:
//!
//! * move one task to another permitted ECU,
//! * swap two tasks whose permission sets allow it,
//! * grow or shrink one TDMA slot (when slots are part of the objective).
//!
//! Infeasibility contributes a large per-violation penalty to the energy,
//! so the chain can traverse infeasible regions (the classic \[5\] trick).
//! Multiple independent chains run in parallel (rayon); the best final
//! state wins.

use crate::energy::{energy, HeuristicObjective};
use optalloc_analysis::AnalysisConfig;
use optalloc_model::{
    deadline_monotonic, shortest_route, Allocation, Architecture, EcuId, MediumId, MediumKind,
    TaskId, TaskSet, Time,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Annealing schedule and search parameters.
#[derive(Clone, Debug)]
pub struct SaParams {
    /// RNG seed (chains use `seed + chain_index`).
    pub seed: u64,
    /// Number of independent parallel chains.
    pub restarts: usize,
    /// Moves attempted per temperature stage.
    pub iters_per_stage: usize,
    /// Geometric cooling factor per stage.
    pub alpha: f64,
    /// Number of cooling stages.
    pub stages: usize,
    /// Upper bound for slot-table moves.
    pub max_slot: Time,
}

impl Default for SaParams {
    fn default() -> SaParams {
        SaParams {
            seed: 0x5eed_5a11,
            restarts: 4,
            iters_per_stage: 400,
            alpha: 0.92,
            stages: 60,
            max_slot: 64,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Clone, Debug)]
pub struct SaResult {
    /// Best allocation found.
    pub allocation: Allocation,
    /// Its energy (`0 violations` ⇔ `energy == objective`).
    pub energy: i64,
    /// Whether the best allocation is feasible.
    pub feasible: bool,
    /// Objective value of the best allocation (meaningful when feasible).
    pub objective: i64,
    /// Total number of energy evaluations across all chains.
    pub evaluations: u64,
}

/// Derives routes (shortest media path, even deadline split) and DM
/// priorities for a placement, in place.
pub fn derive_routes(arch: &Architecture, tasks: &TaskSet, alloc: &mut Allocation) {
    alloc.priorities = deadline_monotonic(tasks);
    for (mid, m) in tasks.messages() {
        let s = alloc.placement[mid.sender.index()];
        let r = alloc.placement[m.to.index()];
        *alloc.route_mut(mid) = shortest_route(arch, s, r, m.deadline);
    }
}

/// Minimal feasible slot tables: each member's slot must fit the largest
/// frame it forwards (or 1 when it forwards nothing).
pub fn derive_min_slots(arch: &Architecture, tasks: &TaskSet, alloc: &mut Allocation) {
    for (k, med) in arch.iter_media() {
        if !matches!(med.kind, MediumKind::Tdma { .. }) {
            continue;
        }
        let mut slots: Vec<Time> = vec![1; med.members.len()];
        for (mid, m) in tasks.messages() {
            let route = alloc.routes[mid.sender.index()][mid.index as usize].clone();
            for (pos, &rk) in route.media.iter().enumerate() {
                if rk != k {
                    continue;
                }
                let fwd = if pos == 0 {
                    alloc.placement[mid.sender.index()]
                } else {
                    match arch.gateway_between(route.media[pos - 1], rk) {
                        Some(g) => g,
                        None => continue,
                    }
                };
                if let Some(i) = med.members.iter().position(|&p| p == fwd) {
                    slots[i] = slots[i].max(med.transmission_time(m.size));
                }
            }
        }
        alloc.slot_overrides.insert(k, slots);
    }
}

fn random_placement(tasks: &TaskSet, arch: &Architecture, rng: &mut SmallRng) -> Vec<EcuId> {
    tasks
        .iter()
        .map(|(_, t)| {
            let allowed: Vec<EcuId> = t
                .allowed_ecus()
                .filter(|&p| arch.ecu(p).hosts_tasks)
                .collect();
            allowed[rng.gen_range(0..allowed.len().max(1))]
        })
        .collect()
}

/// Runs simulated annealing; deterministic for a fixed seed and parameter
/// set (chains are independent and merged by minimum energy).
pub fn anneal(
    arch: &Architecture,
    tasks: &TaskSet,
    objective: &HeuristicObjective,
    params: &SaParams,
) -> SaResult {
    let config = AnalysisConfig::default();
    let chains: Vec<SaResult> = (0..params.restarts)
        .into_par_iter()
        .map(|chain| run_chain(arch, tasks, objective, params, &config, chain as u64))
        .collect();
    let evaluations = chains.iter().map(|c| c.evaluations).sum();
    let mut best = chains
        .into_iter()
        .min_by_key(|c| c.energy)
        .expect("at least one chain");
    best.evaluations = evaluations;
    best
}

fn run_chain(
    arch: &Architecture,
    tasks: &TaskSet,
    objective: &HeuristicObjective,
    params: &SaParams,
    config: &AnalysisConfig,
    chain: u64,
) -> SaResult {
    let mut rng = SmallRng::seed_from_u64(params.seed.wrapping_add(chain));
    let slots_matter = matches!(
        objective,
        HeuristicObjective::TokenRotationTime(_) | HeuristicObjective::SumTokenRotationTimes
    );

    let mut current = Allocation::skeleton(tasks);
    current.placement = random_placement(tasks, arch, &mut rng);
    derive_routes(arch, tasks, &mut current);
    derive_min_slots(arch, tasks, &mut current);

    let mut evaluations = 0u64;
    let eval = |alloc: &Allocation, evals: &mut u64| -> i64 {
        *evals += 1;
        energy(arch, tasks, alloc, objective, config).0
    };
    let mut cur_e = eval(&current, &mut evaluations);
    let mut best = current.clone();
    let mut best_e = cur_e;

    // Initial temperature from a short random walk's energy spread.
    let mut temp = {
        let mut spread = 0f64;
        let mut probe = current.clone();
        for _ in 0..20 {
            mutate(arch, tasks, &mut probe, params, slots_matter, &mut rng);
            let e = eval(&probe, &mut evaluations);
            spread += (e - cur_e).abs() as f64;
        }
        (spread / 20.0).max(1.0)
    };

    for _ in 0..params.stages {
        for _ in 0..params.iters_per_stage {
            let mut cand = current.clone();
            mutate(arch, tasks, &mut cand, params, slots_matter, &mut rng);
            let e = eval(&cand, &mut evaluations);
            let accept =
                e <= cur_e || rng.gen_bool((-((e - cur_e) as f64) / temp).exp().clamp(0.0, 1.0));
            if accept {
                current = cand;
                cur_e = e;
                if e < best_e {
                    best = current.clone();
                    best_e = e;
                }
            }
        }
        temp *= params.alpha;
        if temp < 1e-3 {
            break;
        }
    }

    let (final_e, report) = energy(arch, tasks, &best, objective, config);
    SaResult {
        feasible: report.is_feasible(),
        objective: crate::energy::objective_value(arch, tasks, &best, objective),
        allocation: best,
        energy: final_e,
        evaluations,
    }
}

fn mutate(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &mut Allocation,
    params: &SaParams,
    slots_matter: bool,
    rng: &mut SmallRng,
) {
    let n = tasks.len();
    let kind = rng.gen_range(0..if slots_matter { 4 } else { 2 });
    match kind {
        0 => {
            // Move one task.
            let i = rng.gen_range(0..n);
            let allowed: Vec<EcuId> = tasks
                .task(TaskId(i as u32))
                .allowed_ecus()
                .filter(|&p| arch.ecu(p).hosts_tasks)
                .collect();
            alloc.placement[i] = allowed[rng.gen_range(0..allowed.len())];
            derive_routes(arch, tasks, alloc);
            derive_min_slots_if(arch, tasks, alloc, slots_matter);
        }
        1 => {
            // Swap two tasks if permissions allow.
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            let (pi, pj) = (alloc.placement[i], alloc.placement[j]);
            let ti = tasks.task(TaskId(i as u32));
            let tj = tasks.task(TaskId(j as u32));
            if ti.may_run_on(pj) && tj.may_run_on(pi) {
                alloc.placement.swap(i, j);
                derive_routes(arch, tasks, alloc);
                derive_min_slots_if(arch, tasks, alloc, slots_matter);
            }
        }
        2 => {
            // Grow one slot (can fix blocking-induced misses).
            bump_slot(arch, alloc, params, rng, 1);
        }
        _ => {
            // Shrink one slot toward the minimum.
            bump_slot(arch, alloc, params, rng, -1);
        }
    }
}

fn derive_min_slots_if(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &mut Allocation,
    slots_matter: bool,
) {
    if slots_matter {
        derive_min_slots(arch, tasks, alloc);
    }
}

fn bump_slot(
    arch: &Architecture,
    alloc: &mut Allocation,
    params: &SaParams,
    rng: &mut SmallRng,
    dir: i64,
) {
    let tdma: Vec<MediumId> = arch
        .iter_media()
        .filter(|(_, m)| m.is_tdma())
        .map(|(k, _)| k)
        .collect();
    if tdma.is_empty() {
        return;
    }
    let k = tdma[rng.gen_range(0..tdma.len())];
    let members = arch.medium(k).members.len();
    let entry = alloc
        .slot_overrides
        .entry(k)
        .or_insert_with(|| vec![1; members]);
    let i = rng.gen_range(0..entry.len());
    let new = (entry[i] as i64 + dir).clamp(1, params.max_slot as i64);
    entry[i] = new as Time;
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium, Task};

    fn small_system() -> (Architecture, TaskSet) {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::tdma("ring", vec![p0, p1], vec![8, 8], 1, 1));
        let mut tasks = TaskSet::new();
        tasks.push(Task::new("a", 100, 80, vec![(p0, 10), (p1, 10)]).sends(TaskId(1), 4, 60));
        tasks.push(Task::new("b", 100, 70, vec![(p0, 12), (p1, 12)]));
        tasks.push(Task::new("c", 200, 150, vec![(p0, 30), (p1, 30)]));
        (arch, tasks)
    }

    fn quick_params() -> SaParams {
        SaParams {
            restarts: 2,
            iters_per_stage: 60,
            stages: 20,
            ..Default::default()
        }
    }

    #[test]
    fn finds_feasible_allocation() {
        let (arch, tasks) = small_system();
        let result = anneal(
            &arch,
            &tasks,
            &HeuristicObjective::Feasibility,
            &quick_params(),
        );
        assert!(result.feasible, "energy {}", result.energy);
    }

    #[test]
    fn trt_objective_produces_small_rounds() {
        let (arch, tasks) = small_system();
        let result = anneal(
            &arch,
            &tasks,
            &HeuristicObjective::TokenRotationTime(MediumId(0)),
            &quick_params(),
        );
        assert!(result.feasible);
        // Either co-located (slots 1+1=2) or crossing with a 5-tick frame.
        assert!(result.objective <= 8, "TRT {}", result.objective);
    }

    #[test]
    fn is_deterministic_for_fixed_seed() {
        let (arch, tasks) = small_system();
        let a = anneal(
            &arch,
            &tasks,
            &HeuristicObjective::Feasibility,
            &quick_params(),
        );
        let b = anneal(
            &arch,
            &tasks,
            &HeuristicObjective::Feasibility,
            &quick_params(),
        );
        assert_eq!(a.energy, b.energy);
        assert_eq!(a.allocation, b.allocation);
    }

    #[test]
    fn derive_min_slots_fits_frames() {
        let (arch, tasks) = small_system();
        let mut alloc = Allocation::skeleton(&tasks);
        alloc.placement = vec![EcuId(0), EcuId(1), EcuId(0)];
        derive_routes(&arch, &tasks, &mut alloc);
        derive_min_slots(&arch, &tasks, &mut alloc);
        let slots = &alloc.slot_overrides[&MediumId(0)];
        // The message (size 4, ρ = 5) is sent from p0.
        assert_eq!(slots[0], 5);
        assert_eq!(slots[1], 1);
    }
}
