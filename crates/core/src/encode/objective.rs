//! Construction of the cost variable for each [`Objective`].

use super::Encoding;
use crate::options::Objective;
use optalloc_intopt::{IntExpr, IntVar};
use optalloc_model::{MediumId, MediumKind};

/// Errors raised while building the objective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjectiveError {
    /// The referenced medium is not TDMA (no rotation time exists).
    NotTdma(MediumId),
    /// The referenced medium is not priority-driven (no bus load objective).
    NotPriority(MediumId),
    /// The architecture has no TDMA medium at all.
    NoTdmaMedia,
}

impl std::fmt::Display for ObjectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObjectiveError::NotTdma(k) => write!(f, "{k} is not a TDMA medium"),
            ObjectiveError::NotPriority(k) => write!(f, "{k} is not a priority medium"),
            ObjectiveError::NoTdmaMedia => write!(f, "architecture has no TDMA media"),
        }
    }
}

impl std::error::Error for ObjectiveError {}

/// The TDMA media whose slot tables become decision variables under the
/// given objective.
pub(crate) fn variable_slot_media(
    arch: &optalloc_model::Architecture,
    objective: &Objective,
) -> Result<Vec<MediumId>, ObjectiveError> {
    match objective {
        Objective::TokenRotationTime(k) => {
            if !arch.medium(*k).is_tdma() {
                return Err(ObjectiveError::NotTdma(*k));
            }
            Ok(vec![*k])
        }
        Objective::SumTokenRotationTimes => {
            let media: Vec<MediumId> = arch
                .iter_media()
                .filter(|(_, m)| m.is_tdma())
                .map(|(k, _)| k)
                .collect();
            if media.is_empty() {
                return Err(ObjectiveError::NoTdmaMedia);
            }
            Ok(media)
        }
        Objective::BusLoadPermille(k) => {
            if arch.medium(*k).is_tdma() {
                return Err(ObjectiveError::NotTdma(*k)); // misuse either way
            }
            Ok(Vec::new())
        }
        Objective::MaxUtilizationPermille
        | Objective::UtilizationSpreadPermille
        | Objective::Feasibility => Ok(Vec::new()),
    }
}

impl Encoding<'_> {
    /// Per-ECU utilization expressions `(Σ ⟦aᵢ=p⟧·⌈1000·cᵢ(p)/tᵢ⌉, upper)`,
    /// one entry per ECU that can host at least one task.
    fn utilization_exprs(&mut self) -> Vec<(IntExpr, i64)> {
        let mut per_ecu: Vec<(IntExpr, i64)> = Vec::new();
        for (pid, _) in self.arch.iter_ecus() {
            let mut terms = Vec::new();
            let mut hi = 0i64;
            for (tid, t) in self.tasks.iter() {
                if let Some(var) = self.alloc[tid.index()].get(&pid) {
                    let coef = (t.wcet_on(pid).unwrap() * 1000).div_ceil(t.period) as i64;
                    hi += coef;
                    let bit = self.b2i(&var.expr());
                    terms.push(bit * coef);
                }
            }
            if !terms.is_empty() {
                per_ecu.push((IntExpr::sum(terms), hi));
            }
        }
        per_ecu
    }

    /// Declares the cost variable and ties it to the objective expression.
    /// Returns `None` for [`Objective::Feasibility`].
    pub(crate) fn encode_objective(
        &mut self,
        objective: &Objective,
    ) -> Result<Option<IntVar>, ObjectiveError> {
        match objective {
            Objective::Feasibility => Ok(None),
            Objective::TokenRotationTime(k) => {
                let (round, lo, hi) = self.round_expr(*k);
                let cost = self.problem.int_var(lo, hi);
                self.problem.assert(cost.expr().eq(round));
                Ok(Some(cost))
            }
            Objective::SumTokenRotationTimes => {
                let media: Vec<MediumId> = self.slot_vars.keys().copied().collect();
                if media.is_empty() {
                    return Err(ObjectiveError::NoTdmaMedia);
                }
                let mut lo = 0i64;
                let mut hi = 0i64;
                let mut terms = Vec::new();
                for k in media {
                    let (round, rlo, rhi) = self.round_expr(k);
                    lo += rlo;
                    hi += rhi;
                    terms.push(round);
                }
                let cost = self.problem.int_var(lo, hi);
                self.problem.assert(cost.expr().eq(IntExpr::sum(terms)));
                Ok(Some(cost))
            }
            Objective::BusLoadPermille(k) => {
                match self.arch.medium(*k).kind {
                    MediumKind::Priority => {}
                    MediumKind::Tdma { .. } => return Err(ObjectiveError::NotPriority(*k)),
                }
                let med = self.arch.medium(*k).clone();
                let mut terms = Vec::new();
                let mut hi = 0i64;
                for idx in 0..self.msgs.len() {
                    if !self.msgs[idx].media.contains(k) {
                        continue;
                    }
                    let mid = self.msgs[idx].id;
                    let m = self.tasks.message(mid);
                    let period = self.tasks.task(mid.sender).period;
                    let coef = (med.transmission_time(m.size) * 1000).div_ceil(period) as i64;
                    hi += coef;
                    let used = self.msgs[idx].k_used_int[k].clone();
                    terms.push(used * coef);
                }
                let cost = self.problem.int_var(0, hi.max(0));
                self.problem.assert(cost.expr().eq(IntExpr::sum(terms)));
                Ok(Some(cost))
            }
            Objective::MaxUtilizationPermille => {
                // cost ≥ utilization of every ECU; minimization drives it to
                // the maximum.
                let per_ecu = self.utilization_exprs();
                let hi = per_ecu.iter().map(|&(_, h)| h).max().unwrap_or(0);
                let cost = self.problem.int_var(0, hi.max(1));
                for (util, _) in per_ecu {
                    self.problem.assert(cost.expr().ge(util));
                }
                Ok(Some(cost))
            }
            Objective::UtilizationSpreadPermille => {
                // cost = umax − umin with umax ≥ u_p ≥ umin for all p;
                // minimization tightens both auxiliaries onto the actual
                // extremes. ECUs hosting no eligible task contribute the
                // constant utilization 0.
                let mut per_ecu = self.utilization_exprs();
                // Include empty ECUs as constant-zero utilizations so the
                // spread matches `utilization_minmax_spread_permille`.
                let covered = per_ecu.len();
                if covered < self.arch.num_ecus() {
                    per_ecu.push((IntExpr::constant(0), 0));
                }
                let hi = per_ecu.iter().map(|&(_, h)| h).max().unwrap_or(0).max(1);
                let umax = self.problem.int_var(0, hi);
                let umin = self.problem.int_var(0, hi);
                for (util, _) in &per_ecu {
                    self.problem.assert(umax.expr().ge(util.clone()));
                    self.problem.assert(umin.expr().le(util.clone()));
                }
                let cost = self.problem.int_var(0, hi);
                self.problem
                    .assert(cost.expr().eq(umax.expr() - umin.expr()));
                Ok(Some(cost))
            }
        }
    }
}
