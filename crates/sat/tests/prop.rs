//! Property-based cross-validation of the CDCL(PB) solver against a
//! brute-force model enumerator on random small instances.

use optalloc_sat::{PbOp, PbTerm, SolveResult, Solver, Var};
use proptest::prelude::*;

/// A random problem over `n_vars` variables: clauses plus PB constraints in
/// a plain data form that both the solver and the brute-forcer consume.
#[derive(Debug, Clone)]
struct Problem {
    n_vars: usize,
    /// Clauses as signed var indices (1-based, negative = negated).
    clauses: Vec<Vec<i32>>,
    /// PB constraints: (terms of (signed var, coef), op, bound).
    pbs: Vec<PbSpec>,
}

/// One PB constraint in plain data form.
type PbSpec = (Vec<(i32, i64)>, PbOp, i64);

fn lit_of(vars: &[Var], signed: i32) -> optalloc_sat::Lit {
    let v = vars[signed.unsigned_abs() as usize - 1];
    v.lit(signed > 0)
}

/// Evaluates the problem under the assignment given by bitmask `m`.
fn eval(p: &Problem, m: u32) -> bool {
    let val = |signed: i32| -> bool {
        let bit = m >> (signed.unsigned_abs() - 1) & 1 == 1;
        if signed > 0 {
            bit
        } else {
            !bit
        }
    };
    for c in &p.clauses {
        if !c.iter().any(|&l| val(l)) {
            return false;
        }
    }
    for (terms, op, bound) in &p.pbs {
        let sum: i64 = terms.iter().map(|&(l, a)| if val(l) { a } else { 0 }).sum();
        let ok = match op {
            PbOp::Ge => sum >= *bound,
            PbOp::Le => sum <= *bound,
            PbOp::Eq => sum == *bound,
        };
        if !ok {
            return false;
        }
    }
    true
}

fn brute_force(p: &Problem) -> Option<u32> {
    (0u32..1 << p.n_vars).find(|&m| eval(p, m))
}

fn build_solver(p: &Problem) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..p.n_vars).map(|_| s.new_var()).collect();
    for c in &p.clauses {
        let lits: Vec<_> = c.iter().map(|&l| lit_of(&vars, l)).collect();
        if !s.add_clause(&lits) {
            break;
        }
    }
    for (terms, op, bound) in &p.pbs {
        let ts: Vec<PbTerm> = terms
            .iter()
            .map(|&(l, a)| PbTerm::new(lit_of(&vars, l), a))
            .collect();
        if !s.add_pb(&ts, *op, *bound) {
            break;
        }
    }
    (s, vars)
}

fn signed_var(n_vars: usize) -> impl Strategy<Value = i32> {
    (1..=n_vars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)])
}

fn arb_problem() -> impl Strategy<Value = Problem> {
    (3usize..=8).prop_flat_map(|n_vars| {
        let clause = proptest::collection::vec(signed_var(n_vars), 1..=4);
        let clauses = proptest::collection::vec(clause, 0..12);
        let term = (signed_var(n_vars), -4i64..=4);
        let pb = (
            proptest::collection::vec(term, 1..=4),
            prop_oneof![Just(PbOp::Ge), Just(PbOp::Le), Just(PbOp::Eq)],
            -6i64..=6,
        );
        let pbs = proptest::collection::vec(pb, 0..6);
        (Just(n_vars), clauses, pbs).prop_map(|(n_vars, clauses, pbs)| Problem {
            n_vars,
            clauses,
            pbs,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The solver's verdict matches brute-force enumeration, and any model
    /// it returns actually satisfies every constraint.
    #[test]
    fn verdict_matches_brute_force(p in arb_problem()) {
        let expected_sat = brute_force(&p).is_some();
        let (mut s, vars) = build_solver(&p);
        let verdict = s.solve(&[]);
        prop_assert_eq!(verdict, if expected_sat { SolveResult::Sat } else { SolveResult::Unsat });
        if verdict == SolveResult::Sat {
            let mut mask = 0u32;
            for (i, v) in vars.iter().enumerate() {
                if s.model_value(v.positive()) {
                    mask |= 1 << i;
                }
            }
            prop_assert!(eval(&p, mask), "returned model violates a constraint");
        }
    }

    /// Solving under assumptions equals brute force restricted to those
    /// assumptions, and does not corrupt later unassumed solving.
    #[test]
    fn assumptions_match_restricted_brute_force(
        p in arb_problem(),
        pattern in any::<u32>(),
    ) {
        // Assume the first min(2, n) variables to values from `pattern`.
        let n_assumed = p.n_vars.min(2);
        let (mut s, vars) = build_solver(&p);
        let assumptions: Vec<_> = (0..n_assumed)
            .map(|i| vars[i].lit(pattern >> i & 1 == 1))
            .collect();

        let expected = (0u32..1 << p.n_vars).any(|m| {
            (0..n_assumed).all(|i| (m >> i & 1 == 1) == (pattern >> i & 1 == 1)) && eval(&p, m)
        });
        let verdict = s.solve(&assumptions);
        prop_assert_eq!(
            verdict,
            if expected { SolveResult::Sat } else { SolveResult::Unsat }
        );

        // Incremental reuse: the unrestricted problem must still be decided
        // correctly afterwards.
        let expected_free = brute_force(&p).is_some();
        let verdict_free = s.solve(&[]);
        prop_assert_eq!(
            verdict_free,
            if expected_free { SolveResult::Sat } else { SolveResult::Unsat }
        );
    }

    /// Re-solving the same formula many times under alternating assumptions
    /// (as the binary-search optimizer does) stays consistent.
    #[test]
    fn repeated_incremental_solves_stay_consistent(p in arb_problem()) {
        let (mut s, vars) = build_solver(&p);
        for round in 0..4u32 {
            let a = vars[0].lit(round % 2 == 0);
            let expected = (0u32..1 << p.n_vars).any(|m| {
                ((m & 1 == 1) == (round % 2 == 0)) && eval(&p, m)
            });
            let verdict = s.solve(&[a]);
            prop_assert_eq!(
                verdict,
                if expected { SolveResult::Sat } else { SolveResult::Unsat },
                "round {}", round
            );
        }
    }
}
