//! Objective functions of the paper's evaluation (§6).
//!
//! * **Token rotation time** (TRT) of a TDMA medium — the round length Λ
//!   under the allocation's slot choice; Table 1 and Table 4 minimize it
//!   (respectively its sum over all media).
//! * **CAN bus load** `U_CAN = Σ ρₘ / tₘ` over the messages routed across a
//!   priority bus; the Table 1 CAN variant minimizes it. Reported in
//!   per-mille so the optimizer can treat it as an integer.
//! * **Utilization spread** — distance of per-ECU utilization from the
//!   mean, the "utilization optimization" §4 closes with.

use optalloc_model::{Allocation, Architecture, MediumId, MediumKind, TaskSet, Time};

/// Token rotation time (round length Λ) of a TDMA medium under `alloc`'s
/// slot overrides. `None` for priority media.
pub fn token_rotation_time(
    arch: &Architecture,
    alloc: &Allocation,
    medium: MediumId,
) -> Option<Time> {
    match &arch.medium(medium).kind {
        MediumKind::Tdma { slots } => Some(alloc.effective_slots(medium, slots).iter().sum()),
        MediumKind::Priority => None,
    }
}

/// Sum of token rotation times over all TDMA media (Table 4's objective).
pub fn sum_trt(arch: &Architecture, alloc: &Allocation) -> Time {
    arch.iter_media()
        .filter_map(|(k, _)| token_rotation_time(arch, alloc, k))
        .sum()
}

/// Bus load of a medium: `Σ ρₘ / tₘ` over messages routed across it.
pub fn bus_load(arch: &Architecture, tasks: &TaskSet, alloc: &Allocation, medium: MediumId) -> f64 {
    let med = arch.medium(medium);
    tasks
        .messages()
        .filter(|(id, _)| alloc.route(*id).media.contains(&medium))
        .map(|(id, m)| med.transmission_time(m.size) as f64 / tasks.task(id.sender).period as f64)
        .sum()
}

/// Bus load in integer per-mille (‰), the unit the optimizer minimizes.
pub fn bus_load_permille(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    medium: MediumId,
) -> u64 {
    let med = arch.medium(medium);
    tasks
        .messages()
        .filter(|(id, _)| alloc.route(*id).media.contains(&medium))
        .map(|(id, m)| {
            (med.transmission_time(m.size) * 1000).div_ceil(tasks.task(id.sender).period)
        })
        .sum()
}

/// Per-ECU processor utilization in per-mille, using placed WCETs.
pub fn ecu_utilization_permille(tasks: &TaskSet, alloc: &Allocation, ecus: usize) -> Vec<u64> {
    let mut u = vec![0u64; ecus];
    for (tid, t) in tasks.iter() {
        let p = alloc.ecu_of(tid);
        if let Some(c) = t.wcet_on(p) {
            u[p.index()] += (c * 1000).div_ceil(t.period);
        }
    }
    u
}

/// Spread between the most and least utilized ECU (per-mille) — the
/// balance objective the optimizer supports directly.
pub fn utilization_minmax_spread_permille(tasks: &TaskSet, alloc: &Allocation, ecus: usize) -> u64 {
    let u = ecu_utilization_permille(tasks, alloc, ecus);
    match (u.iter().max(), u.iter().min()) {
        (Some(&hi), Some(&lo)) => hi - lo,
        _ => 0,
    }
}

/// Maximum deviation of per-ECU utilization from the mean (per-mille) —
/// the balance objective.
pub fn utilization_spread_permille(tasks: &TaskSet, alloc: &Allocation, ecus: usize) -> u64 {
    let u = ecu_utilization_permille(tasks, alloc, ecus);
    if u.is_empty() {
        return 0;
    }
    let mean = u.iter().sum::<u64>() / u.len() as u64;
    u.iter().map(|&x| x.abs_diff(mean)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Allocation, Ecu, EcuId, Medium, MessageRoute, MsgId, Task, TaskId};

    fn system() -> (Architecture, TaskSet, Allocation) {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::tdma(
            "ring",
            vec![EcuId(0), EcuId(1)],
            vec![10, 15],
            1,
            1,
        ));
        arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 2, 1));

        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 100, 100, vec![(EcuId(0), 10)]).sends(TaskId(1), 8, 50));
        ts.push(Task::new("b", 50, 50, vec![(EcuId(1), 10)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        *alloc.route_mut(MsgId {
            sender: TaskId(0),
            index: 0,
        }) = MessageRoute::single_hop(MediumId(1), 50);
        (arch, ts, alloc)
    }

    #[test]
    fn trt_reads_effective_slots() {
        let (arch, _, mut alloc) = system();
        assert_eq!(token_rotation_time(&arch, &alloc, MediumId(0)), Some(25));
        assert_eq!(token_rotation_time(&arch, &alloc, MediumId(1)), None);
        alloc.slot_overrides.insert(MediumId(0), vec![4, 6]);
        assert_eq!(token_rotation_time(&arch, &alloc, MediumId(0)), Some(10));
        assert_eq!(sum_trt(&arch, &alloc), 10);
    }

    #[test]
    fn bus_load_counts_routed_messages() {
        let (arch, ts, alloc) = system();
        // ρ = 2 + 8 = 10; period 100 ⇒ 0.1 ⇒ 100‰.
        assert!((bus_load(&arch, &ts, &alloc, MediumId(1)) - 0.1).abs() < 1e-12);
        assert_eq!(bus_load_permille(&arch, &ts, &alloc, MediumId(1)), 100);
        // Nothing routed over the ring.
        assert_eq!(bus_load_permille(&arch, &ts, &alloc, MediumId(0)), 0);
    }

    #[test]
    fn utilization_spread() {
        let (_, ts, alloc) = system();
        // u0 = 10/100 = 100‰, u1 = 10/50 = 200‰; mean 150 ⇒ spread 50.
        let u = ecu_utilization_permille(&ts, &alloc, 2);
        assert_eq!(u, vec![100, 200]);
        assert_eq!(utilization_spread_permille(&ts, &alloc, 2), 50);
        assert_eq!(utilization_minmax_spread_permille(&ts, &alloc, 2), 100);
    }
}
