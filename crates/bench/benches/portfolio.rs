//! Criterion benchmarks of the portfolio strategy: plain single search vs
//! racing and deterministic portfolios on a small end-to-end instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn params() -> GenParams {
    GenParams {
        name: "bench-portfolio".into(),
        n_tasks: 9,
        n_chains: 3,
        n_ecus: 3,
        seed: 0xbe9c_f011,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: true,
        deadline_slack: 1.5,
    }
}

fn bench_portfolio(c: &mut Criterion) {
    let mut group = c.benchmark_group("portfolio");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));

    let w = generate(&params());
    let configs = [
        ("single", Strategy::Single),
        (
            "racing",
            Strategy::Portfolio {
                workers: 4,
                deterministic: false,
            },
        ),
        (
            "deterministic",
            Strategy::Portfolio {
                workers: 4,
                deterministic: true,
            },
        ),
    ];
    for (label, strategy) in configs {
        group.bench_with_input(BenchmarkId::new("trt", label), &strategy, |b, s| {
            b.iter(|| {
                let r = Optimizer::new(&w.arch, &w.tasks)
                    .with_options(SolveOptions {
                        max_slot: 16,
                        strategy: s.clone(),
                        ..Default::default()
                    })
                    .minimize(&Objective::TokenRotationTime(MediumId(0)))
                    .expect("feasible by construction");
                r.cost
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_portfolio);
criterion_main!(benches);
