//! Property tests: the analytical response-time fixed point (eq. 1) must
//! equal the first-job completion time of an exact discrete-event
//! simulation from the critical instant, on random task sets and random
//! placements.

use optalloc_analysis::{all_task_response_times, simulate_critical_instant};
use optalloc_model::{deadline_monotonic, Allocation, EcuId, Task, TaskId, TaskSet};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TaskSpec {
    period: u64,
    wcet: u64,
    ecu: u8,
}

fn arb_tasks() -> impl Strategy<Value = Vec<TaskSpec>> {
    proptest::collection::vec(
        (2u64..=40, 1u64..=6, 0u8..3).prop_map(|(period, wcet, ecu)| TaskSpec {
            period,
            wcet: wcet.min(period),
            ecu,
        }),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// RTA fixed point == simulated first-job completion wherever RTA
    /// converges; where RTA reports a deadline miss, the simulation must
    /// not finish the job by the deadline either.
    #[test]
    fn rta_equals_simulation(specs in arb_tasks()) {
        let mut ts = TaskSet::new();
        for (i, s) in specs.iter().enumerate() {
            // Deadline = period (implicit-deadline), all ECUs allowed.
            let wcet_table: Vec<(EcuId, u64)> =
                (0..3).map(|p| (EcuId(p), s.wcet)).collect();
            ts.push(Task::new(format!("t{i}"), s.period, s.period, wcet_table));
        }
        let mut alloc = Allocation::skeleton(&ts);
        alloc.priorities = deadline_monotonic(&ts);
        alloc.placement = specs.iter().map(|s| EcuId(s.ecu as u32)).collect();

        let rta = all_task_response_times(&ts, &alloc, false);
        for ecu in 0..3u32 {
            let horizon = 10_000;
            let sim = simulate_critical_instant(&ts, &alloc, EcuId(ecu), horizon);
            for (i, s) in specs.iter().enumerate() {
                if s.ecu as u32 != ecu {
                    continue;
                }
                let tid = TaskId(i as u32);
                match rta[tid.index()] {
                    Some(r) => prop_assert_eq!(
                        sim[tid.index()], Some(r),
                        "task {} on p{}: rta {:?} vs sim {:?}", i, ecu,
                        rta[tid.index()], sim[tid.index()]
                    ),
                    None => {
                        // Deadline miss: simulation must not complete the
                        // first job within the deadline.
                        if let Some(done) = sim[tid.index()] {
                            prop_assert!(done > ts.task(tid).deadline,
                                "task {i}: RTA says miss but sim finished at {done}");
                        }
                    }
                }
            }
        }
    }
}
