//! `obs-check` — validate an optalloc trace file and cross-check it
//! against a solver result.
//!
//! ```text
//! obs-check <trace-file> [--result <result.json>]
//! ```
//!
//! The trace may be either export format (JSONL or Chrome `trace_event`;
//! see `docs/OBSERVABILITY.md`). Validation checks the schema, the span
//! tree (every `parent` reference resolves, durations are finite and
//! non-negative, phases are known), then prints per-phase totals.
//!
//! With `--result`, the file must hold the one-line JSON `JobResult`
//! printed by `optalloc-cli solve --json`. The summed `encode` /
//! `search` / `certify` span durations must equal the result's
//! `phases.encode_ms` / `phases.search_ms` / `phases.certify_ms`
//! **bit-exactly**: both sides accumulate the same f64 values in the same
//! (chronological, single-threaded) order, so any difference means a
//! timing site bypassed the span layer. Exit code 0 on success, 1 on any
//! validation or cross-check failure, 2 on usage errors.

use optalloc_obs::{parse_trace, Phase, SpanRecord};
use optalloc_service::protocol::JobResult;
use std::collections::HashSet;
use std::process::ExitCode;

/// The documented span names (`Phase::label`); anything else in a trace
/// means a producer drifted from `docs/OBSERVABILITY.md`.
const KNOWN_PHASES: &[&str] = &[
    "encode",
    "preprocess",
    "search",
    "bisect-window",
    "certify",
    "relation",
];

fn validate(spans: &[SpanRecord]) -> Result<(), String> {
    if spans.is_empty() {
        return Err("trace contains no spans".into());
    }
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    if ids.len() != spans.len() {
        return Err("duplicate span ids".into());
    }
    for s in spans {
        if !KNOWN_PHASES.contains(&s.phase.as_str()) {
            return Err(format!("span {}: unknown phase `{}`", s.id, s.phase));
        }
        if !s.dur_ms.is_finite() || s.dur_ms < 0.0 {
            return Err(format!("span {}: bad duration {}", s.id, s.dur_ms));
        }
        if let Some(p) = s.parent {
            if !ids.contains(&p) {
                return Err(format!("span {}: dangling parent {p}", s.id));
            }
            if p == s.id {
                return Err(format!("span {}: is its own parent", s.id));
            }
        }
    }
    Ok(())
}

/// Sums `dur_ms` over spans of `phase`, in record order — the same order
/// the solver accumulated its stat fields in, so the f64 sum is identical.
fn total(spans: &[SpanRecord], phase: Phase) -> f64 {
    spans
        .iter()
        .filter(|s| s.phase == phase.label())
        .map(|s| s.dur_ms)
        // fold, not sum(): an empty Sum<f64> is -0.0, which prints as "-0"
        .fold(0.0, |acc, d| acc + d)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (trace_path, result_path) = match args.get(1..) {
        Some([t]) => (t, None),
        Some([t, flag, r]) if flag == "--result" => (t, Some(r)),
        _ => {
            eprintln!("usage: obs-check <trace-file> [--result <result.json>]");
            return ExitCode::from(2);
        }
    };

    let text = match std::fs::read_to_string(trace_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {trace_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let spans = match parse_trace(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("INVALID {trace_path}: {e}");
            return ExitCode::from(1);
        }
    };
    if let Err(e) = validate(&spans) {
        eprintln!("INVALID {trace_path}: {e}");
        return ExitCode::from(1);
    }

    let encode = total(&spans, Phase::Encode);
    let search = total(&spans, Phase::Search);
    let certify = total(&spans, Phase::Certify);
    println!(
        "{} spans ok: encode {encode} ms, search {search} ms, certify {certify} ms",
        spans.len()
    );

    let Some(result_path) = result_path else {
        return ExitCode::SUCCESS;
    };
    let result_text = match std::fs::read_to_string(result_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {result_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let result: JobResult = match serde_json::from_str(result_text.trim()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bad result file {result_path}: {e}");
            return ExitCode::from(2);
        }
    };

    let mut ok = true;
    for (name, from_trace, from_result) in [
        ("encode_ms", encode, result.phases.encode_ms),
        ("search_ms", search, result.phases.search_ms),
        ("certify_ms", certify, result.phases.certify_ms),
    ] {
        // Bit-exact by construction; see the module docs.
        if from_trace != from_result {
            eprintln!("MISMATCH {name}: trace sums to {from_trace}, result reports {from_result}");
            ok = false;
        }
    }
    if ok {
        println!("trace totals match result phases exactly");
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
