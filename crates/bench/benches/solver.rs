//! Criterion micro-benchmarks of the CDCL(PB) solver substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optalloc_sat::{PbOp, PbTerm, SolveResult, Solver, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pigeonhole principle instance PHP(n+1, n) in clauses — classic UNSAT
/// stress for clause learning.
fn pigeonhole_clauses(n: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n + 1)
        .map(|_| (0..n).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<_> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
    for hole in 0..n {
        for i in 0..n + 1 {
            for j in (i + 1)..n + 1 {
                s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
            }
        }
    }
    s
}

/// The same pigeonhole with PB cardinality constraints (the paper's point:
/// PB keeps cardinality compact).
fn pigeonhole_pb(n: usize) -> Solver {
    let mut s = Solver::new();
    let p: Vec<Vec<Var>> = (0..n + 1)
        .map(|_| (0..n).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let terms: Vec<_> = row.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
        s.add_pb(&terms, PbOp::Ge, 1);
    }
    for hole in 0..n {
        let terms: Vec<_> = p
            .iter()
            .map(|row| PbTerm::new(row[hole].positive(), 1))
            .collect();
        s.add_pb(&terms, PbOp::Le, 1);
    }
    s
}

/// Random 3-SAT near the phase transition (ratio 4.2).
fn random_3sat(n_vars: usize, seed: u64) -> Solver {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
    let n_clauses = (n_vars as f64 * 4.2) as usize;
    for _ in 0..n_clauses {
        let mut lits = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = vars[rng.gen_range(0..n_vars)];
            lits.push(v.lit(rng.gen_bool(0.5)));
        }
        s.add_clause(&lits);
    }
    s
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    for n in [6usize, 7, 8] {
        group.bench_with_input(BenchmarkId::new("pigeonhole_cnf", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole_clauses(n);
                assert_eq!(s.solve(&[]), SolveResult::Unsat);
            })
        });
        group.bench_with_input(BenchmarkId::new("pigeonhole_pb", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = pigeonhole_pb(n);
                assert_eq!(s.solve(&[]), SolveResult::Unsat);
            })
        });
    }
    group.bench_function("random_3sat_150", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut s = random_3sat(150, seed);
            let _ = s.solve(&[]);
        })
    });
    group.bench_function("incremental_assumption_flips", |b| {
        // Reuse one solver across many assumption probes (the binary-search
        // access pattern).
        let mut s = random_3sat(120, 42);
        let flip = Var::from_index(0);
        b.iter(|| {
            let _ = s.solve(&[flip.positive()]);
            let _ = s.solve(&[flip.negative()]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solver);
criterion_main!(benches);
