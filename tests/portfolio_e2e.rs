//! End-to-end portfolio strategy tests: the diversified workers must agree
//! with the single search on the optimal cost, every portfolio winner must
//! pass the independent analysis re-validation, and the SA-incumbent warm
//! start must compose with the portfolio.

use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_heuristics::{anneal, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};

fn small(seed: u64) -> GenParams {
    GenParams {
        name: format!("pf-{seed}"),
        n_tasks: 9,
        n_chains: 3,
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.2,
        redundant_pairs: 1,
        token_ring: true,
        deadline_slack: 1.5,
    }
}

fn options(strategy: Strategy) -> SolveOptions {
    SolveOptions {
        max_slot: 16,
        strategy,
        ..Default::default()
    }
}

#[test]
fn portfolio_agrees_with_single_and_revalidates() {
    let ring = MediumId(0);
    for seed in [1u64, 2, 3] {
        let w = generate(&small(seed));
        let single = Optimizer::new(&w.arch, &w.tasks)
            .with_options(options(Strategy::Single))
            .minimize(&Objective::TokenRotationTime(ring))
            .unwrap_or_else(|e| panic!("seed {seed} single: {e}"));

        for deterministic in [true, false] {
            let portfolio = Optimizer::new(&w.arch, &w.tasks)
                .with_options(options(Strategy::Portfolio {
                    workers: 4,
                    deterministic,
                }))
                .minimize(&Objective::TokenRotationTime(ring))
                .unwrap_or_else(|e| panic!("seed {seed} det={deterministic}: {e}"));

            // Same proven optimum, and the winner's allocation passed the
            // optimizer's built-in re-validation (minimize errors out with
            // ValidationFailed otherwise) — assert feasibility anyway.
            assert_eq!(
                portfolio.cost, single.cost,
                "seed {seed} det={deterministic}: portfolio disagrees with single"
            );
            assert!(
                portfolio.solution.report.is_feasible(),
                "seed {seed} det={deterministic}"
            );
            assert_eq!(portfolio.workers.len(), 4);
            assert_eq!(
                portfolio.workers.iter().filter(|w| w.winner).count(),
                1,
                "seed {seed} det={deterministic}: expected exactly one winner"
            );
        }
    }
}

#[test]
fn deterministic_portfolio_reports_are_stable() {
    let ring = MediumId(0);
    let w = generate(&small(7));
    let opts = options(Strategy::Portfolio {
        workers: 3,
        deterministic: true,
    });
    let a = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts.clone())
        .minimize(&Objective::TokenRotationTime(ring))
        .expect("feasible");
    let b = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts)
        .minimize(&Objective::TokenRotationTime(ring))
        .expect("feasible");
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.solve_calls, b.solve_calls);
    assert_eq!(a.stats.conflicts, b.stats.conflicts);
    assert_eq!(
        a.solution.allocation.placement, b.solution.allocation.placement,
        "deterministic portfolio returned different allocations"
    );
}

#[test]
fn sa_warm_start_composes_with_portfolio() {
    let ring = MediumId(0);
    let w = generate(&small(4));
    let sa = anneal(
        &w.arch,
        &w.tasks,
        &HeuristicObjective::TokenRotationTime(ring),
        &SaParams {
            restarts: 2,
            iters_per_stage: 150,
            stages: 30,
            max_slot: 16,
            ..Default::default()
        },
    );
    let mut opts = options(Strategy::Portfolio {
        workers: 4,
        deterministic: false,
    });
    if sa.feasible {
        opts.initial_upper = Some(sa.objective);
    }
    let result = Optimizer::new(&w.arch, &w.tasks)
        .with_options(opts)
        .minimize(&Objective::TokenRotationTime(ring))
        .expect("feasible");
    assert!(result.solution.report.is_feasible());
    if sa.feasible {
        assert!(
            result.cost <= sa.objective,
            "optimum {} worse than SA incumbent {}",
            result.cost,
            sa.objective
        );
    }
}
