#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`) with a simple timing loop:
//! one warm-up run, then `sample_size` timed iterations, reporting the
//! median per-iteration wall time. No statistics, plots, or baselines —
//! just enough to run `cargo bench` offline and compare numbers by eye.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-exported `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Passed to the closure under test; drives the timing loop.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Times `f`, running one warm-up plus `sample_size` measured samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

fn report(id: &str, b: &Bencher) {
    match b.last {
        Some(t) => println!(
            "bench: {id:<44} {:>12.3?} /iter (median of {})",
            t, b.samples
        ),
        None => println!("bench: {id:<44} (no measurement)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stub ignores the target time.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last: None,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: 10,
            last: None,
        };
        f(&mut b);
        report(&id.id, &b);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
