//! Allocations: the decision objects `(Π, Φ, Γ)` of paper §2.
//!
//! `Π` places each task on an ECU, `Φ` orders task priorities, and `Γ`
//! routes each message over an ordered sequence of media (with the local
//! per-medium deadlines of §4). Allocations are produced by the SAT
//! optimizer or by the heuristic baselines and consumed by the analysis.

use crate::ids::{EcuId, MediumId, MsgId, TaskId};
use crate::paths::Path;
use crate::task::TaskSet;
use crate::time::Time;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The route `Γ(m)` of one message: the media it crosses, in order, plus
/// the local deadline budget `d_m^k` granted on each medium (§4). An empty
/// route means sender and receiver are co-located.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRoute {
    /// Media crossed, in transmission order.
    pub media: Path,
    /// Per-medium deadline budgets, aligned with `media`. Their sum plus
    /// gateway service cost must not exceed the message's deadline Δ.
    pub local_deadlines: Vec<Time>,
}

impl MessageRoute {
    /// A route for co-located endpoints (no bus crossing).
    pub fn colocated() -> MessageRoute {
        MessageRoute::default()
    }

    /// A single-hop route with the whole deadline budget on one medium.
    pub fn single_hop(medium: MediumId, deadline: Time) -> MessageRoute {
        MessageRoute {
            media: vec![medium],
            local_deadlines: vec![deadline],
        }
    }

    /// `true` when no medium is crossed.
    pub fn is_colocated(&self) -> bool {
        self.media.is_empty()
    }

    /// Number of hops (media crossed).
    pub fn hops(&self) -> usize {
        self.media.len()
    }

    /// Local deadline on `medium`, if the route crosses it.
    pub fn deadline_on(&self, medium: MediumId) -> Option<Time> {
        self.media
            .iter()
            .position(|&m| m == medium)
            .map(|i| self.local_deadlines[i])
    }
}

/// A complete allocation decision.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Allocation {
    /// `Π`: ECU per task.
    pub placement: Vec<EcuId>,
    /// `Φ`: priority per task; **lower value = higher priority** (0 is the
    /// highest). Values must be unique.
    pub priorities: Vec<u32>,
    /// `Γ`: routes, indexed `[task][message index]`.
    pub routes: Vec<Vec<MessageRoute>>,
    /// TDMA slot tables chosen by the optimizer, overriding the medium
    /// defaults (used when minimizing token rotation times).
    pub slot_overrides: BTreeMap<MediumId, Vec<Time>>,
}

impl Allocation {
    /// An allocation skeleton for `tasks`: everything placed on `EcuId(0)`,
    /// deadline-monotonic priorities, all routes co-located.
    pub fn skeleton(tasks: &TaskSet) -> Allocation {
        Allocation {
            placement: vec![EcuId(0); tasks.len()],
            priorities: deadline_monotonic(tasks),
            routes: tasks
                .tasks
                .iter()
                .map(|t| vec![MessageRoute::colocated(); t.messages.len()])
                .collect(),
            slot_overrides: BTreeMap::new(),
        }
    }

    /// Placement of a task.
    pub fn ecu_of(&self, task: TaskId) -> EcuId {
        self.placement[task.index()]
    }

    /// Route of a message.
    pub fn route(&self, msg: MsgId) -> &MessageRoute {
        &self.routes[msg.sender.index()][msg.index as usize]
    }

    /// Mutable route of a message.
    pub fn route_mut(&mut self, msg: MsgId) -> &mut MessageRoute {
        &mut self.routes[msg.sender.index()][msg.index as usize]
    }

    /// `true` if `a` has higher priority than `b` (the paper's `p_a^b = 1`).
    pub fn outranks(&self, a: TaskId, b: TaskId) -> bool {
        self.priorities[a.index()] < self.priorities[b.index()]
    }

    /// Tasks placed on `ecu`, in priority order (highest first).
    pub fn tasks_on(&self, ecu: EcuId) -> Vec<TaskId> {
        let mut ids: Vec<TaskId> = (0..self.placement.len())
            .map(|i| TaskId(i as u32))
            .filter(|t| self.ecu_of(*t) == ecu)
            .collect();
        ids.sort_by_key(|t| self.priorities[t.index()]);
        ids
    }

    /// Effective TDMA slot table of `medium`: the override if present,
    /// otherwise `default_slots`.
    pub fn effective_slots<'a>(
        &'a self,
        medium: MediumId,
        default_slots: &'a [Time],
    ) -> &'a [Time] {
        self.slot_overrides
            .get(&medium)
            .map(Vec::as_slice)
            .unwrap_or(default_slots)
    }

    /// Basic shape checks against a task set (lengths, unique priorities).
    pub fn validate_shape(&self, tasks: &TaskSet) -> Result<(), String> {
        if self.placement.len() != tasks.len() {
            return Err(format!(
                "placement covers {} tasks, task set has {}",
                self.placement.len(),
                tasks.len()
            ));
        }
        if self.priorities.len() != tasks.len() {
            return Err("priority vector length mismatch".into());
        }
        let mut seen = vec![false; tasks.len()];
        for &p in &self.priorities {
            let idx = p as usize;
            if idx >= tasks.len() || seen[idx] {
                return Err(format!("priorities are not a permutation: {p}"));
            }
            seen[idx] = true;
        }
        if self.routes.len() != tasks.len() {
            return Err("route table length mismatch".into());
        }
        for (tid, t) in tasks.iter() {
            if self.routes[tid.index()].len() != t.messages.len() {
                return Err(format!("route count mismatch for {tid}"));
            }
            for (mi, r) in self.routes[tid.index()].iter().enumerate() {
                if r.media.len() != r.local_deadlines.len() {
                    return Err(format!(
                        "route {tid}.{mi}: {} media but {} local deadlines",
                        r.media.len(),
                        r.local_deadlines.len()
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Deadline-monotonic priorities (paper eq. 10): shorter deadline ⇒ higher
/// priority; equal deadlines broken by task id, which is one of the
/// "arbitrary but consistent" assignments eq. 9 permits.
pub fn deadline_monotonic(tasks: &TaskSet) -> Vec<u32> {
    let mut order: Vec<TaskId> = (0..tasks.len()).map(|i| TaskId(i as u32)).collect();
    order.sort_by_key(|&t| (tasks.task(t).deadline, t));
    let mut prio = vec![0u32; tasks.len()];
    for (rank, t) in order.into_iter().enumerate() {
        prio[t.index()] = rank as u32;
    }
    prio
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn small_set() -> TaskSet {
        let mut ts = TaskSet::new();
        let wcet = |c| vec![(EcuId(0), c), (EcuId(1), c)];
        let a = ts.push(Task::new("a", 100, 50, wcet(5)));
        ts.push(Task::new("b", 100, 20, wcet(5)).sends(a, 4, 30));
        ts.push(Task::new("c", 100, 20, wcet(5)));
        ts
    }

    #[test]
    fn deadline_monotonic_orders_by_deadline_then_id() {
        let ts = small_set();
        let prio = deadline_monotonic(&ts);
        // b (d=20, id 1) and c (d=20, id 2) outrank a (d=50); tie → id order.
        assert_eq!(prio[1], 0);
        assert_eq!(prio[2], 1);
        assert_eq!(prio[0], 2);
    }

    #[test]
    fn skeleton_is_shape_valid() {
        let ts = small_set();
        let alloc = Allocation::skeleton(&ts);
        assert!(alloc.validate_shape(&ts).is_ok());
        assert!(alloc
            .route(MsgId {
                sender: TaskId(1),
                index: 0
            })
            .is_colocated());
    }

    #[test]
    fn outranks_uses_lower_is_higher() {
        let ts = small_set();
        let alloc = Allocation::skeleton(&ts);
        assert!(alloc.outranks(TaskId(1), TaskId(0)));
        assert!(!alloc.outranks(TaskId(0), TaskId(1)));
    }

    #[test]
    fn tasks_on_filters_and_sorts() {
        let ts = small_set();
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1), EcuId(0)];
        assert_eq!(alloc.tasks_on(EcuId(0)), vec![TaskId(2), TaskId(0)]);
        assert_eq!(alloc.tasks_on(EcuId(1)), vec![TaskId(1)]);
    }

    #[test]
    fn validate_shape_rejects_bad_priorities() {
        let ts = small_set();
        let mut alloc = Allocation::skeleton(&ts);
        alloc.priorities = vec![0, 0, 1];
        assert!(alloc
            .validate_shape(&ts)
            .unwrap_err()
            .contains("permutation"));
    }

    #[test]
    fn validate_shape_rejects_route_mismatch() {
        let ts = small_set();
        let mut alloc = Allocation::skeleton(&ts);
        alloc.routes[1].clear();
        assert!(alloc
            .validate_shape(&ts)
            .unwrap_err()
            .contains("route count"));
    }

    #[test]
    fn route_accessors_and_slot_overrides() {
        let ts = small_set();
        let mut alloc = Allocation::skeleton(&ts);
        let msg = MsgId {
            sender: TaskId(1),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute::single_hop(MediumId(0), 30);
        assert_eq!(alloc.route(msg).hops(), 1);
        assert_eq!(alloc.route(msg).deadline_on(MediumId(0)), Some(30));
        assert_eq!(alloc.route(msg).deadline_on(MediumId(1)), None);

        alloc.slot_overrides.insert(MediumId(0), vec![7, 9]);
        let defaults = [5, 5];
        assert_eq!(alloc.effective_slots(MediumId(0), &defaults), &[7, 9]);
        assert_eq!(alloc.effective_slots(MediumId(1), &defaults), &[5, 5]);
    }
}
