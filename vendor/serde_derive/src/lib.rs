#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `serde_derive`.
//!
//! Derives the vendored `serde` stub's `Serialize` / `Deserialize` traits
//! (which convert through `serde::Value`). Because the build environment is
//! offline, this macro parses the item's `TokenStream` by hand instead of
//! using `syn`, and emits the impl as source text.
//!
//! Supported item shapes (everything this workspace derives):
//! - structs with named fields
//! - tuple structs (arity 1 serializes transparently, like serde newtypes)
//! - unit structs
//! - enums with unit, tuple, and struct variants (externally tagged)
//! - the `#[serde(default)]` field attribute on named fields (absent
//!   fields deserialize to `Default::default()`)
//!
//! Not supported: generics, other `#[serde(...)]` attributes, unions.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// A named field plus the attributes the stub understands.
struct NamedField {
    name: String,
    /// `#[serde(default)]`: an absent field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

/// A parsed field list.
enum Fields {
    Unit,
    /// Tuple fields; the arity.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<NamedField>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips leading `#[...]` attribute groups starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// `true` when the bracket-group body of an attribute is `serde(default)`.
fn attr_is_serde_default(body: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    match tokens.as_slice() {
        [TokenTree::Ident(id), TokenTree::Group(args)]
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "default"))
        }
        _ => false,
    }
}

/// Like [`skip_attrs`], but reports whether any skipped attribute was
/// `#[serde(default)]`.
fn skip_attrs_noting_default(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                default |= attr_is_serde_default(g.stream());
                i += 2;
            }
            _ => break,
        }
    }
    (i, default)
}

/// Skips a `pub` / `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
            i += 1;
        }
    }
    i
}

/// Advances past one type (or expression) to the next top-level `,`,
/// tracking `<`/`>` nesting. Bracketed groups are single token trees, so
/// only angle brackets need explicit depth counting. Returns the index of
/// the `,` (or `tokens.len()`).
fn skip_to_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parses a brace-group body of named fields into their identifiers and
/// recognized attributes.
fn parse_named_fields(group: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (after_attrs, default) = skip_attrs_noting_default(&tokens, i);
        i = skip_vis(&tokens, after_attrs);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected field name, got {:?}",
                tokens[i]
            );
        };
        fields.push(NamedField {
            name: name.to_string(),
            default,
        });
        i += 1; // name
        assert!(
            matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ':'),
            "serde_derive stub: expected `:` after field name"
        );
        i = skip_to_comma(&tokens, i + 1) + 1;
    }
    fields
}

/// Counts the fields of a paren-group (tuple struct / tuple variant) body.
fn tuple_arity(group: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break; // trailing comma
        }
        arity += 1;
        i = skip_to_comma(&tokens, i) + 1;
    }
    arity
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[i] else {
            panic!(
                "serde_derive stub: expected variant name, got {:?}",
                tokens[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(tuple_arity(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        i = skip_to_comma(&tokens, i) + 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic items are not supported (derive on `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive stub: unsupported struct body {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive stub: unsupported enum body {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

/// `Value::Array(vec![to_value(f0), ...])` for bound tuple fields, or the
/// inner value directly for arity 1 (newtype transparency).
fn ser_tuple_bindings(arity: usize) -> String {
    if arity == 1 {
        return "serde::Serialize::to_value(f0)".to_string();
    }
    let items: Vec<String> = (0..arity)
        .map(|k| format!("serde::Serialize::to_value(f{k})"))
        .collect();
    format!("serde::Value::Array(vec![{}])", items.join(", "))
}

fn ser_named_bindings(fields: &[NamedField]) -> String {
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            let f = &f.name;
            format!("({f:?}.to_string(), serde::Serialize::to_value({f}))")
        })
        .collect();
    format!("serde::Value::Object(vec![{}])", items.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                        .collect();
                    format!("serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            let f = &f.name;
                            format!("({f:?}.to_string(), serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("serde::Value::Object(vec![{}])", items.join(", "))
                }
            };
            write!(
                out,
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{ {body} }}\n}}\n"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => write!(
                        arms,
                        "{name}::{vn} => serde::Value::Str({vn:?}.to_string()),\n"
                    )
                    .unwrap(),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let inner = ser_tuple_bindings(*n);
                        write!(
                            arms,
                            "{name}::{vn}({}) => serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),\n",
                            binds.join(", ")
                        )
                        .unwrap();
                    }
                    Fields::Named(fields) => {
                        let inner = ser_named_bindings(fields);
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        write!(
                            arms,
                            "{name}::{vn} {{ {} }} => serde::Value::Object(vec![({vn:?}.to_string(), {inner})]),\n",
                            binds.join(", ")
                        )
                        .unwrap();
                    }
                }
            }
            write!(
                out,
                "impl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n        match self {{\n{arms}        }}\n    }}\n}}\n"
            )
            .unwrap();
        }
    }
    out
}

/// Deserialization expression for an `arity`-tuple from the value expr `$v`.
fn de_tuple(ctor: &str, arity: usize, v: &str) -> String {
    if arity == 1 {
        return format!("return Ok({ctor}(serde::Deserialize::from_value({v})?));");
    }
    let fields: Vec<String> = (0..arity)
        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
        .collect();
    format!(
        "match {v}.as_array() {{\n            Some(items) if items.len() == {arity} => return Ok({ctor}({})),\n            _ => return Err(serde::DeError::expected(\"{arity}-element array\", {v})),\n        }}",
        fields.join(", ")
    )
}

fn de_named(ctor: &str, fields: &[NamedField], v: &str) -> String {
    let inits: Vec<String> = fields.iter().map(|f| de_field_init(f, v)).collect();
    format!("return Ok({ctor} {{ {} }});", inits.join(", "))
}

/// `name: serde::field(v, "name")?`, or the `field_or_default` variant for
/// `#[serde(default)]` fields.
fn de_field_init(f: &NamedField, v: &str) -> String {
    let name = &f.name;
    let getter = if f.default {
        "field_or_default"
    } else {
        "field"
    };
    format!("{name}: serde::{getter}({v}, {name:?})?")
}

fn gen_deserialize(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("let _ = v; Ok({name})"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let fields: Vec<String> = (0..*n)
                        .map(|k| format!("serde::Deserialize::from_value(&items[{k}])?"))
                        .collect();
                    format!(
                        "match v.as_array() {{\n            Some(items) if items.len() == {n} => Ok({name}({})),\n            _ => Err(serde::DeError::expected(\"{n}-element array\", v)),\n        }}",
                        fields.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names.iter().map(|f| de_field_init(f, "v")).collect();
                    format!("Ok({name} {{ {} }})", inits.join(", "))
                }
            };
            write!(
                out,
                "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n        {body}\n    }}\n}}\n"
            )
            .unwrap();
        }
        Item::Enum { name, variants } => {
            // Externally tagged: unit variants are bare strings, payload
            // variants are single-key objects.
            let mut body = String::new();
            body.push_str("if let serde::Value::Str(s) = v {\n            match s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    write!(body, "                {vn:?} => return Ok({name}::{vn}),\n").unwrap();
                }
            }
            body.push_str("                _ => {}\n            }\n        }\n");
            body.push_str(
                "        if let Some([(tag, inner)]) = v.as_object() {\n            match tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                let ctor = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(n) => write!(
                        body,
                        "                {vn:?} => {{ {} }}\n",
                        de_tuple(&ctor, *n, "inner")
                    )
                    .unwrap(),
                    Fields::Named(fields) => write!(
                        body,
                        "                {vn:?} => {{ {} }}\n",
                        de_named(&ctor, fields, "inner")
                    )
                    .unwrap(),
                }
            }
            body.push_str("                _ => {}\n            }\n        }\n");
            write!(
                body,
                "        Err(serde::DeError::custom(format!(\"no variant of {name} matches {{v:?}}\")))"
            )
            .unwrap();
            write!(
                out,
                "impl serde::Deserialize for {name} {{\n    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {{\n        {body}\n    }}\n}}\n"
            )
            .unwrap();
        }
    }
    out
}

/// Derives the stub `serde::Serialize` (value-tree conversion).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

/// Derives the stub `serde::Deserialize` (value-tree conversion).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
