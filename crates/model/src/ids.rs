//! Typed index handles for ECUs, communication media, tasks and messages.
//!
//! All model collections are dense vectors; these newtypes prevent mixing
//! the index spaces up (an `EcuId` cannot index the media table, etc.).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> $name {
                $name(i as u32)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Index of an ECU (embedded control unit) in an
    /// [`Architecture`](crate::Architecture).
    EcuId,
    "p"
);
id_type!(
    /// Index of a communication medium in an
    /// [`Architecture`](crate::Architecture).
    MediumId,
    "k"
);
id_type!(
    /// Index of a task in a [`TaskSet`](crate::TaskSet).
    TaskId,
    "t"
);

/// Identifies a message by its sending task and the message's position in
/// that task's send list (`γᵢ`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MsgId {
    /// The sending task.
    pub sender: TaskId,
    /// Position within the sender's `messages` list.
    pub index: u32,
}

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.sender.0, self.index)
    }
}

impl fmt::Display for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}.{}", self.sender.0, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_dense_indexing() {
        let e = EcuId(3);
        let m = MediumId(3);
        assert_eq!(e.index(), 3);
        assert_eq!(m.index(), 3);
        assert_eq!(format!("{e}"), "p3");
        assert_eq!(format!("{m}"), "k3");
        assert_eq!(format!("{}", TaskId(7)), "t7");
    }

    #[test]
    fn msg_id_formatting() {
        let m = MsgId {
            sender: TaskId(4),
            index: 1,
        };
        assert_eq!(format!("{m}"), "m4.1");
    }

    #[test]
    fn serde_roundtrip() {
        let e = EcuId(9);
        let s = serde_json::to_string(&e).unwrap();
        let back: EcuId = serde_json::from_str(&s).unwrap();
        assert_eq!(e, back);
    }
}
