//! Property tests on random topologies: structural invariants of path
//! closures and routing helpers.

use optalloc_model::{
    endpoints_valid, gateways_along, path_closures, path_exists, shortest_route, Architecture, Ecu,
    EcuId, Medium, MediumId,
};
use proptest::prelude::*;

/// Random valid architecture: `n_media` buses over `n_ecus` ECUs, chained
/// by dedicated gateways so the one-gateway-per-media-pair rule holds.
fn arb_arch() -> impl Strategy<Value = Architecture> {
    (2usize..=4, 2usize..=4, any::<u64>()).prop_map(|(n_media, per_bus, seed)| {
        let mut arch = Architecture::new();
        let mut rng = seed;
        let mut next = || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (rng >> 33) as usize
        };
        // Host ECUs per bus + one gateway between consecutive buses.
        let mut members_per_bus: Vec<Vec<EcuId>> = Vec::new();
        for _ in 0..n_media {
            let mut members = Vec::new();
            for _ in 0..per_bus {
                members.push(arch.push_ecu(Ecu::new(format!("p{}", arch.num_ecus()))));
            }
            members_per_bus.push(members);
        }
        for w in 0..n_media.saturating_sub(1) {
            // Chain bus w and w+1 via a fresh gateway (sometimes task-free).
            let gw = if next() % 2 == 0 {
                arch.push_ecu(Ecu::new(format!("gw{w}")).gateway_only())
            } else {
                arch.push_ecu(Ecu::new(format!("gw{w}")))
            };
            members_per_bus[w].push(gw);
            members_per_bus[w + 1].push(gw);
        }
        for (i, members) in members_per_bus.into_iter().enumerate() {
            if next() % 2 == 0 {
                let slots = vec![4; members.len()];
                arch.push_medium(Medium::tdma(format!("ring{i}"), members, slots, 1, 1));
            } else {
                arch.push_medium(Medium::priority(format!("bus{i}"), members, 1, 1));
            }
        }
        arch
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Closure invariants: prefixes are nested, every prefix is a valid
    /// path in the topology, and closures are deduplicated.
    #[test]
    fn closures_are_wellformed(arch in arb_arch()) {
        prop_assert!(arch.validate().is_ok());
        let closures = path_closures(&arch);
        prop_assert!(closures[0].is_empty_path());
        for ph in &closures[1..] {
            // Prefix chain: each path extends the previous by one medium.
            for (i, p) in ph.prefixes.iter().enumerate() {
                prop_assert_eq!(p.len(), i + 1);
                if i > 0 {
                    prop_assert_eq!(&p[..i], ph.prefixes[i - 1].as_slice());
                }
                prop_assert!(path_exists(&arch, p));
                // Simple: no repeated medium.
                let mut seen = p.clone();
                seen.sort_unstable();
                seen.dedup();
                prop_assert_eq!(seen.len(), p.len());
            }
        }
        // Dedup check over maximal paths.
        let mut maximal: Vec<_> = closures[1..].iter().map(|c| c.longest().clone()).collect();
        let before = maximal.len();
        maximal.sort();
        maximal.dedup();
        prop_assert_eq!(maximal.len(), before, "duplicate closures emitted");
    }

    /// The chained construction is connected, so shortest_route always finds
    /// a route between host ECUs, the route exists in the topology, and its
    /// endpoints are valid.
    #[test]
    fn shortest_routes_are_valid(arch in arb_arch(), a in 0usize..8, b in 0usize..8) {
        let hosts: Vec<EcuId> = arch
            .iter_ecus()
            .filter(|(_, e)| e.hosts_tasks)
            .map(|(id, _)| id)
            .collect();
        let from = hosts[a % hosts.len()];
        let to = hosts[b % hosts.len()];
        let route = shortest_route(&arch, from, to, 100);
        if from == to {
            prop_assert!(route.is_colocated());
            return Ok(());
        }
        prop_assert!(!route.is_colocated(), "chained topology is connected");
        prop_assert!(path_exists(&arch, &route.media));
        prop_assert_eq!(route.local_deadlines.len(), route.media.len());
        // First medium contains the sender, last the receiver.
        prop_assert!(arch.medium(route.media[0]).connects(from));
        prop_assert!(arch.medium(*route.media.last().unwrap()).connects(to));
        // Gateways along the route are consistent with the topology.
        let gws = gateways_along(&arch, &route.media);
        prop_assert_eq!(gws.len() + 1, route.media.len());
        // Every route the BFS returns appears as a prefix of some closure.
        let closures = path_closures(&arch);
        let found = closures.iter().any(|ph| ph.prefixes.contains(&route.media));
        prop_assert!(found, "route {:?} not covered by PH", route.media);
    }

    /// endpoints_valid agrees with a direct reading of v(h) for single-hop
    /// routes.
    #[test]
    fn single_hop_endpoint_validity(arch in arb_arch(), a in 0usize..8, b in 0usize..8) {
        let n = arch.num_ecus();
        let from = EcuId((a % n) as u32);
        let to = EcuId((b % n) as u32);
        for (k, med) in arch.iter_media() {
            let expected = med.connects(from) && med.connects(to);
            prop_assert_eq!(endpoints_valid(&arch, &[k], from, to), expected);
        }
        let _ = MediumId(0);
    }
}
