//! A reusable cost-window probe engine.
//!
//! [`CostProber`] owns one incremental solver with the problem encoded once
//! and answers `SOLVE(φ ∧ lo ≤ cost ≤ hi)` queries against arbitrary
//! windows, carrying every learned clause across probes (the paper's §7
//! reuse). It is the engine under both the sequential `BIN_SEARCH` loop
//! ([`crate::BinSearchMode::Incremental`]) and the portfolio's parallel
//! window scheduler, which assigns each worker's prober a disjoint
//! sub-window of the remaining cost range.
//!
//! Each bounded probe allocates a fresh guard literal, attaches the window
//! bounds guarded by it, assumes the guard for the solve, and closes the
//! guard afterwards so the dead bound clauses simplify away. Guards are
//! therefore always allocated *above* the base encoding, which is what
//! makes cross-worker clause sharing sound (see
//! [`optalloc_sat::ClauseExchange`]): when the solver configuration carries
//! an exchange, the prober pins `share_var_limit` to the base encoding size
//! so no guard-dependent clause can leak out.

use crate::binsearch::{EncodeStats, MinimizeOptions};
use crate::blast::{blast_with, Blast};
use crate::problem::{IntProblem, Model};
use crate::IntVar;
use optalloc_sat::{SolveResult, Solver, SolverStats};

/// Verdict of a single window probe.
#[derive(Clone, Debug)]
pub enum Probe {
    /// A model inside the window, with the cost it attains.
    Sat {
        /// Value of the cost variable in the witnessing model.
        value: i64,
        /// The witnessing model.
        model: Model,
    },
    /// No model inside the window (an exhaustive refutation).
    Unsat,
    /// Conflict budget exhausted before a verdict.
    Unknown,
    /// The cooperative interrupt flag was raised mid-solve.
    Interrupted,
}

/// An incremental solver bound to one problem, answering cost-window
/// queries (see the module docs).
pub struct CostProber<'p> {
    problem: &'p IntProblem,
    cost: IntVar,
    solver: Solver,
    bl: Blast,
    encode: EncodeStats,
    solve_calls: u32,
}

impl std::fmt::Debug for CostProber<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CostProber")
            .field("cost", &self.cost)
            .field("encode", &self.encode)
            .field("solve_calls", &self.solve_calls)
            .finish()
    }
}

impl<'p> CostProber<'p> {
    /// Encodes `problem` once into a solver configured per `opts`.
    pub fn new(problem: &'p IntProblem, cost: IntVar, opts: &MinimizeOptions) -> CostProber<'p> {
        let mut solver = opts.new_solver();
        let encode_start = std::time::Instant::now();
        let (form, decls) = problem.prepare(&opts.encoder_opt);
        let bl = blast_with(&form, &decls, &mut solver, opts.backend, &opts.encoder_opt);
        let encode_ms = encode_start.elapsed().as_secs_f64() * 1e3;
        // Clause sharing may only cover the base encoding: guard variables
        // for window bounds are allocated from here on up.
        if solver.config.share_var_limit == 0 {
            solver.config.share_var_limit = solver.num_vars();
        }
        let encode = EncodeStats {
            bool_vars: solver.num_vars() as u64,
            literals: solver.num_literals(),
            constraints: solver.num_constraints(),
            encode_ms,
        };
        CostProber {
            problem,
            cost,
            solver,
            bl,
            encode,
            solve_calls: 0,
        }
    }

    /// The cost variable this prober windows over.
    pub fn cost(&self) -> IntVar {
        self.cost
    }

    /// Size of the propositional encoding.
    pub fn encode(&self) -> EncodeStats {
        self.encode
    }

    /// Number of `SOLVE` calls issued so far.
    pub fn solve_calls(&self) -> u32 {
        self.solve_calls
    }

    /// Statistics accumulated by the underlying solver.
    pub fn stats(&self) -> &SolverStats {
        &self.solver.stats
    }

    /// True when the encoding already refuted the problem (no probe needed).
    pub fn trivially_unsat(&self) -> bool {
        self.bl.trivially_unsat()
    }

    /// Probes the window `lo ≤ cost ≤ hi` (or the unbounded problem when
    /// `window` is `None`). An empty window (`lo > hi`) or a trivially
    /// refuted encoding is vacuously [`Probe::Unsat`] without touching the
    /// solver.
    pub fn probe(&mut self, window: Option<(i64, i64)>) -> Probe {
        if self.bl.trivially_unsat() {
            return Probe::Unsat;
        }
        let result = match window {
            Some((lo, hi)) => {
                if lo > hi {
                    return Probe::Unsat;
                }
                let guard = self.solver.new_var().positive();
                self.bl
                    .add_guarded_bounds(&mut self.solver, self.cost, lo, hi, guard);
                self.solve_calls += 1;
                let r = self.solver.solve(&[guard]);
                // Close the guard: it is never assumed again, so the dead
                // bound clauses can simplify away.
                self.solver.add_clause(&[!guard]);
                r
            }
            None => {
                self.solve_calls += 1;
                self.solver.solve(&[])
            }
        };
        match result {
            SolveResult::Sat => {
                let value = self.bl.int_value(&self.solver, self.cost);
                let model = self.problem.extract_model(&self.solver, &self.bl);
                Probe::Sat { value, model }
            }
            SolveResult::Unsat => Probe::Unsat,
            SolveResult::Unknown => Probe::Unknown,
            SolveResult::Interrupted => Probe::Interrupted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geq7() -> (IntProblem, IntVar) {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 100);
        p.assert(x.expr().ge(7));
        (p, x)
    }

    #[test]
    fn windows_partition_the_range() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        assert!(matches!(prober.probe(Some((0, 6))), Probe::Unsat));
        match prober.probe(Some((7, 20))) {
            Probe::Sat { value, model } => {
                assert!((7..=20).contains(&value));
                assert_eq!(model.int(x), value);
            }
            ref r => panic!("expected Sat, got {r:?}"),
        }
        // Empty window: vacuous refutation, no solve call.
        let calls = prober.solve_calls();
        assert!(matches!(prober.probe(Some((9, 3))), Probe::Unsat));
        assert_eq!(prober.solve_calls(), calls);
    }

    #[test]
    fn unbounded_probe_yields_some_model() {
        let (p, x) = geq7();
        let opts = MinimizeOptions::default();
        let mut prober = CostProber::new(&p, x, &opts);
        match prober.probe(None) {
            Probe::Sat { value, .. } => assert!(value >= 7),
            ref r => panic!("expected Sat, got {r:?}"),
        }
    }
}
