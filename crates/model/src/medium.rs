//! Communication media: priority-driven buses (CAN) and TDMA buses
//! (token ring, TTP).
//!
//! Following the paper's §2, a medium `k ∈ K ⊆ 2^P` connects a set of ECUs
//! and carries protocol parameters `κ` — frame overheads, per-byte
//! transmission cost and, for TDMA media, the slot table. All times are in
//! integer **ticks**; a workload fixes the tick length (the bundled
//! workloads use 50 µs).

use crate::ids::EcuId;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Media access control: how concurrent senders are arbitrated.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MediumKind {
    /// Priority-driven arbitration (e.g. CAN): the pending message with the
    /// highest priority wins the bus, and a started frame is not preempted.
    Priority,
    /// Time-division multiple access (e.g. token ring, TTP): each member ECU
    /// owns one slot per round; `slots[i]` is the slot length of the `i`-th
    /// member in [`Medium::members`]. The round length Λ is the slot sum.
    Tdma {
        /// Slot length per member ECU, aligned with [`Medium::members`].
        slots: Vec<Time>,
    },
}

/// One communication medium of the architecture.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Medium {
    /// Human-readable name.
    pub name: String,
    /// Arbitration scheme and its parameters.
    pub kind: MediumKind,
    /// The ECUs connected to this medium (`k = {p₁, …, pⱼ}`).
    pub members: Vec<EcuId>,
    /// Fixed per-frame overhead in ticks (headers, arbitration, CRC).
    pub frame_overhead: Time,
    /// Transmission cost per byte of payload, in ticks.
    pub per_byte: Time,
}

impl Medium {
    /// Creates a priority-driven (CAN-style) medium.
    pub fn priority(
        name: impl Into<String>,
        members: Vec<EcuId>,
        frame_overhead: Time,
        per_byte: Time,
    ) -> Medium {
        Medium {
            name: name.into(),
            kind: MediumKind::Priority,
            members,
            frame_overhead,
            per_byte,
        }
    }

    /// Creates a TDMA (token-ring-style) medium with one slot per member.
    pub fn tdma(
        name: impl Into<String>,
        members: Vec<EcuId>,
        slots: Vec<Time>,
        frame_overhead: Time,
        per_byte: Time,
    ) -> Medium {
        assert_eq!(
            members.len(),
            slots.len(),
            "one TDMA slot per member ECU required"
        );
        Medium {
            name: name.into(),
            kind: MediumKind::Tdma { slots },
            members,
            frame_overhead,
            per_byte,
        }
    }

    /// `true` if `ecu` is connected to this medium.
    pub fn connects(&self, ecu: EcuId) -> bool {
        self.members.contains(&ecu)
    }

    /// Worst-case time to push one frame of `size` payload bytes over the
    /// wire — the paper's ρ (rho).
    pub fn transmission_time(&self, size: u32) -> Time {
        self.frame_overhead + self.per_byte * size as Time
    }

    /// Best-case transmission time β: the bare frame with no contention.
    /// Identical to ρ for our frame model, kept separate for the jitter
    /// formula of §4.
    pub fn best_case_time(&self, size: u32) -> Time {
        self.transmission_time(size)
    }

    /// TDMA round length Λ (sum of all slots); `None` on priority media.
    pub fn tdma_round(&self) -> Option<Time> {
        match &self.kind {
            MediumKind::Tdma { slots } => Some(slots.iter().sum()),
            MediumKind::Priority => None,
        }
    }

    /// The TDMA slot length λ(S(p)) owned by member `ecu`; `None` on
    /// priority media or if `ecu` is not a member.
    pub fn slot_of(&self, ecu: EcuId) -> Option<Time> {
        match &self.kind {
            MediumKind::Tdma { slots } => {
                let idx = self.members.iter().position(|&m| m == ecu)?;
                Some(slots[idx])
            }
            MediumKind::Priority => None,
        }
    }

    /// `true` for TDMA media.
    pub fn is_tdma(&self) -> bool {
        matches!(self.kind, MediumKind::Tdma { .. })
    }

    /// Replaces the slot table (used when the optimizer chose new slot
    /// lengths); panics if the medium is not TDMA or lengths mismatch.
    pub fn with_slots(&self, slots: Vec<Time>) -> Medium {
        assert!(self.is_tdma(), "slot override on a priority medium");
        assert_eq!(slots.len(), self.members.len());
        Medium {
            kind: MediumKind::Tdma { slots },
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ecus(ids: &[u32]) -> Vec<EcuId> {
        ids.iter().map(|&i| EcuId(i)).collect()
    }

    #[test]
    fn transmission_time_is_affine_in_size() {
        let m = Medium::priority("can0", ecus(&[0, 1]), 5, 2);
        assert_eq!(m.transmission_time(0), 5);
        assert_eq!(m.transmission_time(8), 21);
        assert_eq!(m.best_case_time(8), 21);
    }

    #[test]
    fn tdma_round_is_slot_sum() {
        let m = Medium::tdma("ring", ecus(&[0, 1, 2]), vec![10, 20, 30], 1, 1);
        assert_eq!(m.tdma_round(), Some(60));
        assert_eq!(m.slot_of(EcuId(1)), Some(20));
        assert_eq!(m.slot_of(EcuId(9)), None);
        assert!(m.is_tdma());
    }

    #[test]
    fn priority_medium_has_no_round() {
        let m = Medium::priority("can0", ecus(&[0, 1]), 5, 2);
        assert_eq!(m.tdma_round(), None);
        assert_eq!(m.slot_of(EcuId(0)), None);
        assert!(!m.is_tdma());
    }

    #[test]
    fn connects_checks_membership() {
        let m = Medium::priority("can0", ecus(&[0, 2]), 5, 2);
        assert!(m.connects(EcuId(0)));
        assert!(!m.connects(EcuId(1)));
    }

    #[test]
    fn with_slots_overrides() {
        let m = Medium::tdma("ring", ecus(&[0, 1]), vec![5, 5], 1, 1);
        let m2 = m.with_slots(vec![7, 3]);
        assert_eq!(m2.tdma_round(), Some(10));
        assert_eq!(m2.slot_of(EcuId(0)), Some(7));
        // original unchanged
        assert_eq!(m.slot_of(EcuId(0)), Some(5));
    }

    #[test]
    #[should_panic(expected = "one TDMA slot per member")]
    fn tdma_slot_count_must_match() {
        Medium::tdma("ring", ecus(&[0, 1]), vec![5], 1, 1);
    }
}
