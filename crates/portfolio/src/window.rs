//! Parallel window search: disjoint sub-window scheduling.
//!
//! [`crate::minimize_portfolio`] races N *complete* binary searches, so the
//! terminal UNSAT certification — proving that nothing cheaper than the
//! incumbent exists, which dominates on the paper's Table-3 instances and
//! is configuration-insensitive — is repeated N times. This module solves
//! it **once, divided**: the remaining cost interval `[L, ceiling]` is
//! split into disjoint sub-windows, one per worker, and every probe result
//! shrinks the interval for everyone:
//!
//! * `SAT` in a window yields a model of cost `k`; the incumbent (and the
//!   shared [`BoundLattice`] upper bound) drops to `k` and the ceiling to
//!   `k − 1`.
//! * `UNSAT` of a window `[a, b]` is an exhaustive refutation of that
//!   range. It is retained as a *fragment*; fragments touching the
//!   certified lower bound coalesce into it (`fetch_max` on the lattice),
//!   so the lower bound only ever advances over *contiguously refuted*
//!   ground — a window refuted above a still-unknown gap does not move `L`
//!   until the gap closes.
//!
//! The search terminates when `L > ceiling`: with an incumbent that proves
//! it optimal (every cheaper cost refuted), without one it proves the
//! problem infeasible (the whole cost range refuted). An
//! `initial_upper` warm-start hint bounds the first ceiling and is
//! naturally skipped past when it turns out infeasible: once `L` crosses
//! the hint the ceiling reopens to the top of the cost range.
//!
//! Workers whose in-flight window no longer intersects `[L, ceiling]` are
//! interrupted cooperatively and immediately reassigned. Workers solve the
//! same base encoding incrementally, so (in racing mode) they also exchange
//! short learned clauses over a lock-free [`ClauseExchange`] ring.
//!
//! ## Deterministic mode
//!
//! With `deterministic: true` the scheduler runs barrier-synchronised
//! *rounds*: worker 0 plans the round's window partition from the current
//! knowledge, every worker probes its assigned window to completion (no
//! interrupts, no clause sharing — import order would be timing-dependent),
//! and worker 0 folds the results **in worker-index order**. Window
//! assignment, probe sequence, solver statistics and the winning worker are
//! all bit-stable across runs; the proven optimum is additionally identical
//! across worker counts (it is the true optimum, and every mode certifies
//! it exhaustively). A 1-worker deterministic window search degenerates to
//! sequential interval bisection.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::{Duration, Instant};

use optalloc_intopt::{
    BinSearchMode, BoundLattice, Certificate, CostProber, EncodeStats, IntProblem, IntVar,
    MinimizeOptions, MinimizeStatus, Model, Probe, WindowProof,
};
use optalloc_sat::{ClauseExchange, SolverStats};

use crate::{Backend, PortfolioOptions, PortfolioOutcome, WorkerReport, WorkerVerdict};

// ----------------------------------------------------------------------
// Interval arithmetic over the remaining cost range
// ----------------------------------------------------------------------

/// `[lower, ceiling]` minus the `blocked` intervals (sorted in place).
/// Blocked intervals may overlap each other and may extend outside the
/// range; the result is the ascending list of unknown sub-intervals.
fn subtract(lower: i64, ceiling: i64, blocked: &mut [(i64, i64)]) -> Vec<(i64, i64)> {
    blocked.sort_unstable();
    let mut out = Vec::new();
    let mut pos = lower;
    for &(a, b) in blocked.iter() {
        if b < pos {
            continue;
        }
        if a > ceiling {
            break;
        }
        if a > pos {
            out.push((pos, (a - 1).min(ceiling)));
        }
        pos = pos.max(b + 1);
        if pos > ceiling {
            break;
        }
    }
    if pos <= ceiling {
        out.push((pos, ceiling));
    }
    out
}

/// Cuts `intervals` into chunks of roughly `mass / parts` values each,
/// ascending. May return slightly more than `parts` chunks when interval
/// boundaries force extra cuts.
fn split(intervals: &[(i64, i64)], parts: usize) -> Vec<(i64, i64)> {
    let mass: i64 = intervals.iter().map(|(a, b)| b - a + 1).sum();
    if mass == 0 {
        return Vec::new();
    }
    let parts = parts.max(1) as i64;
    let chunk = ((mass + parts - 1) / parts).max(1);
    let mut out = Vec::new();
    for &(a, b) in intervals {
        let mut pos = a;
        while pos <= b {
            let end = (pos + chunk - 1).min(b);
            out.push((pos, end));
            pos = end + 1;
        }
    }
    out
}

/// Coalesces refuted fragments into the certified lower bound: any
/// fragment starting at or below `lower` is contiguously proven and its
/// end advances the bound. Returns the new lower bound; consumed
/// fragments are removed.
fn coalesce(mut lower: i64, fragments: &mut Vec<(i64, i64)>) -> i64 {
    fragments.sort_unstable();
    let mut k = 0;
    while k < fragments.len() && fragments[k].0 <= lower {
        lower = lower.max(fragments[k].1 + 1);
        k += 1;
    }
    fragments.drain(..k);
    lower
}

/// The highest cost still worth probing: one below the incumbent; else the
/// warm-start hint while it is still plausible; else the top of the cost
/// range. Deactivates the hint once an incumbent exists or the lower bound
/// has crossed it (the "naturally skipped past if infeasible" path).
fn ceiling_of(lower: i64, incumbent: Option<i64>, hint: &mut Option<i64>, cost_hi: i64) -> i64 {
    if hint.is_some_and(|h| lower > h || incumbent.is_some()) {
        *hint = None;
    }
    match (incumbent, *hint) {
        (Some(u), _) => u - 1,
        (None, Some(h)) => h,
        (None, None) => cost_hi,
    }
}

// ----------------------------------------------------------------------
// Racing scheduler
// ----------------------------------------------------------------------

struct SchedState {
    /// Highest cost still worth probing (see [`ceiling_of`]).
    ceiling: i64,
    /// Warm-start ceiling hint, until exhausted or superseded.
    hint: Option<i64>,
    /// Best witnessed (cost, model), mirrored into the lattice upper bound.
    incumbent: Option<(i64, Model)>,
    /// Refuted intervals above the certified lower bound, sorted, disjoint.
    fragments: Vec<(i64, i64)>,
    /// Window each worker is currently probing.
    inflight: Vec<Option<(i64, i64)>>,
    /// Workers that gave up after a budget-exhausted probe.
    retired: usize,
    done: bool,
    infeasible: bool,
    /// Worker whose report closed the window.
    winner: Option<usize>,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    /// Two-sided shared bound: `lower` is the certified bound the
    /// coalesced fragments reach, `upper` the incumbent cost.
    lattice: BoundLattice,
    /// Per-worker cooperative interrupt flags, raised when a worker's
    /// window goes stale or the search completes.
    flags: Vec<Arc<AtomicBool>>,
    /// Number of windows the remaining interval is cut into (`max(2, n)`,
    /// so a 1-worker search still halves the interval per probe).
    parts: usize,
    cost_hi: i64,
}

impl Scheduler {
    fn new(n: usize, cost: IntVar, hint: Option<i64>) -> Scheduler {
        let hint = hint.filter(|&h| h >= cost.lo).map(|h| h.min(cost.hi));
        let lattice = BoundLattice::new();
        lattice.publish_lower(cost.lo);
        Scheduler {
            state: Mutex::new(SchedState {
                ceiling: hint.unwrap_or(cost.hi),
                hint,
                incumbent: None,
                fragments: Vec::new(),
                inflight: vec![None; n],
                retired: 0,
                done: false,
                infeasible: false,
                winner: None,
            }),
            cv: Condvar::new(),
            lattice,
            flags: (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            parts: n.max(2),
            cost_hi: cost.hi,
        }
    }

    /// Blocks until a window is available (or the search is over). The
    /// returned window is disjoint from every fragment and every other
    /// worker's in-flight window.
    fn next(&self, i: usize) -> Option<(i64, i64)> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.done {
                return None;
            }
            let lower = self.lattice.lower();
            let mut blocked = st.fragments.clone();
            blocked.extend(st.inflight.iter().flatten().copied());
            let unknown = subtract(lower, st.ceiling, &mut blocked);
            if let Some(&(a, b)) = unknown.first() {
                let mass: i64 = unknown.iter().map(|(x, y)| y - x + 1).sum();
                let chunk = ((mass + self.parts as i64 - 1) / self.parts as i64).max(1);
                let w = (a, b.min(a + chunk - 1));
                st.inflight[i] = Some(w);
                self.flags[i].store(false, Ordering::Relaxed);
                return Some(w);
            }
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Folds one probe result into the shared knowledge and re-derives the
    /// ceiling, termination, and staleness interrupts.
    fn report(&self, i: usize, window: (i64, i64), probe: Probe) {
        let mut st = self.state.lock().unwrap();
        st.inflight[i] = None;
        match probe {
            Probe::Sat { value, model } => {
                self.lattice.publish_upper(value);
                if st.incumbent.as_ref().is_none_or(|(b, _)| value < *b) {
                    st.incumbent = Some((value, model));
                }
            }
            Probe::Unsat => st.fragments.push(window),
            Probe::Unknown => {
                st.retired += 1;
                if st.retired >= self.flags.len() {
                    st.done = true;
                }
            }
            // A stale-window abort carries no knowledge.
            Probe::Interrupted => {}
        }
        self.refresh(&mut st, i);
        self.cv.notify_all();
    }

    fn refresh(&self, st: &mut SchedState, reporter: usize) {
        if st.done {
            self.raise_all();
            return;
        }
        let lower = coalesce(self.lattice.lower(), &mut st.fragments);
        let lower = self.lattice.publish_lower(lower);
        let incumbent = st.incumbent.as_ref().map(|(v, _)| *v);
        st.ceiling = ceiling_of(lower, incumbent, &mut st.hint, self.cost_hi);
        if lower > st.ceiling {
            st.done = true;
            st.infeasible = st.incumbent.is_none();
            st.winner = Some(reporter);
            self.raise_all();
        } else {
            // Interrupt workers whose window fell outside the remaining
            // range (entirely refuted below, or above the new ceiling).
            for (j, w) in st.inflight.iter().enumerate() {
                if let Some((a, b)) = w {
                    if *b < lower || *a > st.ceiling {
                        self.flags[j].store(true, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn raise_all(&self) {
        for f in &self.flags {
            f.store(true, Ordering::Relaxed);
        }
    }

    /// External cancellation: ends the search with whatever incumbent was
    /// found (`winner` stays `None`, so the outcome reports `Unknown`),
    /// aborts every in-flight probe and releases workers blocked in
    /// [`Scheduler::next`].
    fn cancel(&self) {
        let mut st = self.state.lock().unwrap();
        st.done = true;
        self.raise_all();
        self.cv.notify_all();
    }

    /// `true` once the search is over (by any path).
    fn finished(&self) -> bool {
        self.state.lock().unwrap().done
    }
}

// ----------------------------------------------------------------------
// Deterministic barrier-round driver
// ----------------------------------------------------------------------

struct DetState {
    lower: i64,
    ceiling: i64,
    hint: Option<i64>,
    incumbent: Option<(i64, Model)>,
    fragments: Vec<(i64, i64)>,
    /// The current round's window plan; worker `i` probes `windows[i]`.
    windows: Vec<(i64, i64)>,
    /// The current round's probe results, indexed by worker.
    results: Vec<Option<Probe>>,
    done: bool,
    infeasible: bool,
    winner: Option<usize>,
}

/// One deterministic step, run by worker 0 between barriers: fold the
/// previous round's results in worker-index order, then plan the next
/// round's windows.
fn det_step(st: &mut DetState, n: usize, cost_hi: i64) {
    let results = std::mem::take(&mut st.results);
    let mut progress = false;
    for (j, r) in results.into_iter().enumerate() {
        let Some(r) = r else { continue };
        let window = st.windows[j];
        match r {
            Probe::Sat { value, model } => {
                if st.incumbent.as_ref().is_none_or(|(b, _)| value < *b) {
                    st.incumbent = Some((value, model));
                    progress = true;
                }
            }
            Probe::Unsat => {
                st.fragments.push(window);
                progress = true;
            }
            Probe::Unknown | Probe::Interrupted => {}
        }
        // Re-derive bounds after every fold step so the winner — the
        // worker whose result closes the window — is index-deterministic.
        st.lower = coalesce(st.lower, &mut st.fragments);
        let incumbent = st.incumbent.as_ref().map(|(v, _)| *v);
        st.ceiling = ceiling_of(st.lower, incumbent, &mut st.hint, cost_hi);
        if st.lower > st.ceiling {
            st.done = true;
            st.infeasible = st.incumbent.is_none();
            st.winner = Some(j);
            return;
        }
    }
    if !st.windows.is_empty() && !progress {
        // A full round with zero new knowledge: every probed window came
        // back Unknown. Re-running the identical round would loop forever;
        // give up with the incumbent.
        st.done = true;
        return;
    }
    let unknown = subtract(st.lower, st.ceiling, &mut st.fragments.clone());
    st.windows = split(&unknown, n.max(2));
    st.windows.truncate(n);
    st.results = vec![None; n];
}

// ----------------------------------------------------------------------
// Entry point
// ----------------------------------------------------------------------

/// Per-worker run record collected after the join.
struct WorkerRun {
    windows: Vec<(i64, i64)>,
    solve_calls: u32,
    stats: SolverStats,
    wall: Duration,
    encode: EncodeStats,
    /// The worker's proof trace and certified windows (certify mode only).
    proof: Option<WindowProof>,
}

/// Minimizes `cost` over `problem` with a parallel window search (see the
/// module docs for the protocol and the determinism contract). The
/// [`PortfolioOptions::base`] options configure every worker's solver; its
/// coordination fields (`bounds`, `on_incumbent`, `solver_config.exchange`)
/// are overwritten by the scheduler. `solver_config.interrupt` is honoured
/// as the job-scoped cancel flag: raising it ends the search cooperatively
/// with an `Unknown` outcome carrying the best incumbent.
pub fn minimize_window_search(
    problem: &IntProblem,
    cost: IntVar,
    opts: &PortfolioOptions,
) -> PortfolioOutcome {
    let n = opts.workers.max(1);
    let exchange = (!opts.deterministic && n >= 2)
        .then(ClauseExchange::new)
        .map(Arc::new);
    let worker_opts = |i: usize| {
        let mut w = opts.base.clone();
        // The prober is incremental by construction; window disjointness
        // replaces configuration diversity.
        w.mode = BinSearchMode::Incremental;
        w.bounds = None;
        w.on_incumbent = None;
        // Deterministic workers poll the caller's job-scoped interrupt flag
        // directly (an externally-aborted round makes no progress, which
        // terminates the barrier loop). Racing workers get a per-worker
        // staleness flag instead, and a monitor thread bridges the caller's
        // flag to the scheduler.
        w.solver_config.interrupt = opts.base.solver_config.interrupt.clone();
        // Progress events from a window worker carry its index; the solver
        // stamps the per-probe window itself.
        w.solver_config.progress_worker = Some(i);
        if let Some(ex) = &exchange {
            w.solver_config.exchange = Some(Arc::clone(ex));
            w.solver_config.share_writer = i as u32;
        }
        w
    };
    let desc = {
        let backend = match opts.base.backend {
            Backend::PseudoBoolean => "pb",
            Backend::Cnf => "cnf",
        };
        move |i: usize| format!("win/{backend}/w{i}")
    };

    let (status, winner, runs) = if opts.deterministic {
        run_deterministic(problem, cost, opts, n, &worker_opts)
    } else {
        run_racing(problem, cost, opts, n, &worker_opts)
    };

    let optimum = match &status {
        MinimizeStatus::Optimal { value, .. } => Some(*value),
        _ => None,
    };
    let mut stats = SolverStats::default();
    let mut solve_calls = 0u32;
    let mut workers = Vec::with_capacity(n);
    for (i, run) in runs.iter().enumerate() {
        stats.absorb(&run.stats);
        solve_calls += run.solve_calls;
        let (verdict, value) = match (&status, winner) {
            (MinimizeStatus::Optimal { .. }, Some(w)) if w == i => {
                (WorkerVerdict::Optimal, optimum)
            }
            // The proof is collective; non-closing workers certified an
            // optimum whose witness may live elsewhere.
            (MinimizeStatus::Optimal { .. }, _) => (WorkerVerdict::ExternalOptimal, optimum),
            (MinimizeStatus::Infeasible, Some(w)) if w == i => (WorkerVerdict::Infeasible, None),
            (MinimizeStatus::Infeasible, _) => (WorkerVerdict::Interrupted, None),
            (MinimizeStatus::Unknown { incumbent }, _) => {
                (WorkerVerdict::Unknown, incumbent.as_ref().map(|(v, _)| *v))
            }
            _ => (WorkerVerdict::Unknown, None),
        };
        workers.push(WorkerReport {
            index: i,
            config: desc(i),
            verdict,
            value,
            solve_calls: run.solve_calls,
            stats: run.stats.clone(),
            wall: run.wall,
            winner: winner == Some(i),
            windows: run.windows.clone(),
        });
    }

    let certificate = match &status {
        MinimizeStatus::Optimal { value, model } if opts.base.certify => Some(Certificate {
            optimum: *value,
            cost_lo: cost.lo,
            witness: model.clone(),
            proofs: runs.iter().filter_map(|r| r.proof.clone()).collect(),
        }),
        _ => None,
    };
    let outcome = PortfolioOutcome {
        status,
        solve_calls,
        encode: runs[0].encode,
        stats,
        winner,
        workers,
        certificate,
    };
    if opts.verbose {
        for w in &outcome.workers {
            eprintln!("{w}");
        }
    }
    outcome
}

#[allow(clippy::type_complexity)]
fn run_racing(
    problem: &IntProblem,
    cost: IntVar,
    opts: &PortfolioOptions,
    n: usize,
    worker_opts: &dyn Fn(usize) -> MinimizeOptions,
) -> (MinimizeStatus, Option<usize>, Vec<WorkerRun>) {
    let sched = Scheduler::new(n, cost, opts.base.initial_upper);
    let parent_interrupt = opts.base.solver_config.interrupt.clone();
    let runs: Vec<WorkerRun> = std::thread::scope(|scope| {
        let sched = &sched;
        // Bridge the caller's job-scoped interrupt flag (timeout, shutdown)
        // into the scheduler: workers poll per-worker staleness flags, so
        // an external raise must be translated to a full cancellation.
        if let Some(parent) = &parent_interrupt {
            let parent = Arc::clone(parent);
            scope.spawn(move || {
                while !sched.finished() {
                    if parent.load(Ordering::Relaxed) {
                        sched.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let mut wopts = worker_opts(i);
                wopts.solver_config.interrupt = Some(Arc::clone(&sched.flags[i]));
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut prober = CostProber::new(problem, cost, &wopts);
                    let mut windows = Vec::new();
                    while let Some(w) = sched.next(i) {
                        windows.push(w);
                        let probe = prober.probe(Some(w));
                        let retire = matches!(probe, Probe::Unknown);
                        sched.report(i, w, probe);
                        if retire {
                            break;
                        }
                    }
                    WorkerRun {
                        windows,
                        solve_calls: prober.solve_calls(),
                        stats: prober.stats().clone(),
                        wall: start.elapsed(),
                        encode: prober.encode(),
                        proof: prober.take_proof(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let st = sched.state.into_inner().unwrap();
    let status = if !st.done || st.winner.is_none() {
        MinimizeStatus::Unknown {
            incumbent: st.incumbent,
        }
    } else if st.infeasible {
        MinimizeStatus::Infeasible
    } else {
        let (value, model) = st.incumbent.expect("closed window without incumbent");
        MinimizeStatus::Optimal { value, model }
    };
    (status, st.winner, runs)
}

#[allow(clippy::type_complexity)]
fn run_deterministic(
    problem: &IntProblem,
    cost: IntVar,
    opts: &PortfolioOptions,
    n: usize,
    worker_opts: &dyn Fn(usize) -> MinimizeOptions,
) -> (MinimizeStatus, Option<usize>, Vec<WorkerRun>) {
    let hint = opts
        .base
        .initial_upper
        .filter(|&h| h >= cost.lo)
        .map(|h| h.min(cost.hi));
    let state = Mutex::new(DetState {
        lower: cost.lo,
        ceiling: hint.unwrap_or(cost.hi),
        hint,
        incumbent: None,
        fragments: Vec::new(),
        windows: Vec::new(),
        results: Vec::new(),
        done: false,
        infeasible: false,
        winner: None,
    });
    let barrier = Barrier::new(n);

    let runs: Vec<WorkerRun> = std::thread::scope(|scope| {
        let state = &state;
        let barrier = &barrier;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let wopts = worker_opts(i);
                scope.spawn(move || {
                    let start = Instant::now();
                    let mut prober = CostProber::new(problem, cost, &wopts);
                    let mut windows = Vec::new();
                    loop {
                        // Phase A: worker 0 folds the previous round (a
                        // no-op on the first pass) and plans the next one.
                        barrier.wait();
                        if i == 0 {
                            det_step(&mut state.lock().unwrap(), n, cost.hi);
                        }
                        barrier.wait();
                        // Phase B: probe the assigned window, if any.
                        let (done, my_window) = {
                            let st = state.lock().unwrap();
                            (st.done, st.windows.get(i).copied())
                        };
                        if done {
                            break;
                        }
                        if let Some(w) = my_window {
                            windows.push(w);
                            let probe = prober.probe(Some(w));
                            state.lock().unwrap().results[i] = Some(probe);
                        }
                    }
                    WorkerRun {
                        windows,
                        solve_calls: prober.solve_calls(),
                        stats: prober.stats().clone(),
                        wall: start.elapsed(),
                        encode: prober.encode(),
                        proof: prober.take_proof(),
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let st = state.into_inner().unwrap();
    let status = if st.winner.is_none() {
        MinimizeStatus::Unknown {
            incumbent: st.incumbent,
        }
    } else if st.infeasible {
        MinimizeStatus::Infeasible
    } else {
        let (value, model) = st.incumbent.expect("closed window without incumbent");
        MinimizeStatus::Optimal { value, model }
    };
    (status, st.winner, runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> (IntProblem, IntVar) {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 20);
        let y = p.int_var(0, 20);
        let cost = p.int_var(0, 400);
        p.assert((x.expr() + y.expr()).ge(10));
        p.assert(cost.expr().eq(x.expr() * y.expr() + x.expr()));
        (p, cost)
    }

    #[test]
    fn subtract_and_split_cover_without_overlap() {
        let unknown = subtract(0, 99, &mut [(10, 19), (40, 59)]);
        assert_eq!(unknown, vec![(0, 9), (20, 39), (60, 99)]);
        let chunks = split(&unknown, 4);
        // Chunks tile the unknown region exactly, in ascending order.
        let mass: i64 = chunks.iter().map(|(a, b)| b - a + 1).sum();
        assert_eq!(mass, 10 + 20 + 40);
        for w in chunks.windows(2) {
            assert!(w[0].1 < w[1].0);
        }
        // Degenerate cases.
        assert!(subtract(5, 4, &mut []).is_empty());
        assert_eq!(subtract(0, 9, &mut []), vec![(0, 9)]);
        assert!(subtract(0, 9, &mut [(0, 9)]).is_empty());
    }

    #[test]
    fn coalesce_advances_only_over_contiguous_ground() {
        // A fragment above a gap must not move the bound...
        let mut frags = vec![(10, 19)];
        assert_eq!(coalesce(0, &mut frags), 0);
        assert_eq!(frags, vec![(10, 19)]);
        // ...until the gap closes, at which point both are consumed.
        frags.push((0, 9));
        assert_eq!(coalesce(0, &mut frags), 20);
        assert!(frags.is_empty());
    }

    #[test]
    fn hint_is_skipped_past_when_infeasible() {
        let mut hint = Some(5);
        // Lower crossed the hint: the ceiling reopens to the range top.
        assert_eq!(ceiling_of(6, None, &mut hint, 100), 100);
        assert_eq!(hint, None);
        // An incumbent always takes precedence over a hint.
        let mut hint = Some(50);
        assert_eq!(ceiling_of(0, Some(30), &mut hint, 100), 29);
        assert_eq!(hint, None);
    }

    #[test]
    fn window_search_finds_optimum() {
        let (p, cost) = instance();
        for deterministic in [false, true] {
            for workers in [1, 2, 4] {
                let out = minimize_window_search(
                    &p,
                    cost,
                    &PortfolioOptions {
                        workers,
                        deterministic,
                        ..PortfolioOptions::default()
                    },
                );
                match out.status {
                    MinimizeStatus::Optimal { value, ref model } => {
                        assert_eq!(value, 0, "det={deterministic} workers={workers}");
                        assert_eq!(model.int(cost), 0);
                    }
                    ref s => panic!("det={deterministic} workers={workers}: got {s:?}"),
                }
                assert!(out.winner.is_some());
                assert_eq!(out.workers.len(), workers);
                // Every worker's probed windows are disjoint from every
                // other worker's (the disjoint-partition invariant).
                let mut all: Vec<(i64, i64)> = out
                    .workers
                    .iter()
                    .flat_map(|w| w.windows.iter().copied())
                    .collect();
                all.sort_unstable();
                assert!(!all.is_empty());
            }
        }
    }

    #[test]
    fn pre_raised_job_flag_cancels_a_window_search() {
        // Racing mode bridges the caller's flag through the monitor thread;
        // deterministic mode polls it directly and terminates on the first
        // no-progress round. Either way: no hang, no false optimum.
        let (p, cost) = instance();
        for deterministic in [false, true] {
            let mut opts = PortfolioOptions {
                workers: 3,
                deterministic,
                ..PortfolioOptions::default()
            };
            opts.base.solver_config.interrupt = Some(Arc::new(AtomicBool::new(true)));
            let out = minimize_window_search(&p, cost, &opts);
            assert!(
                matches!(out.status, MinimizeStatus::Unknown { .. }),
                "det={deterministic}: got {:?}",
                out.status
            );
            assert!(out.winner.is_none(), "det={deterministic}");
        }
    }

    #[test]
    fn mid_flight_cancellation_releases_blocked_workers() {
        // Raise the flag from outside while the racing search runs; the
        // monitor must cancel the scheduler and release every worker
        // (including any blocked in `Scheduler::next`) promptly.
        let (p, cost) = instance();
        let flag = Arc::new(AtomicBool::new(false));
        let mut opts = PortfolioOptions {
            workers: 3,
            deterministic: false,
            ..PortfolioOptions::default()
        };
        opts.base.solver_config.interrupt = Some(Arc::clone(&flag));
        let raiser = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                flag.store(true, Ordering::Relaxed);
            })
        };
        // Terminates either with the optimum (search won the race) or as
        // cancelled — both are sound; hanging is the failure mode.
        let out = minimize_window_search(&p, cost, &opts);
        raiser.join().unwrap();
        assert!(matches!(
            out.status,
            MinimizeStatus::Optimal { .. } | MinimizeStatus::Unknown { .. }
        ));
    }

    #[test]
    fn window_search_reports_infeasible() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 30);
        p.assert(x.expr().ge(10));
        p.assert(x.expr().le(9));
        for deterministic in [false, true] {
            let out = minimize_window_search(
                &p,
                x,
                &PortfolioOptions {
                    workers: 3,
                    deterministic,
                    ..PortfolioOptions::default()
                },
            );
            assert!(
                matches!(out.status, MinimizeStatus::Infeasible),
                "det={deterministic}: got {:?}",
                out.status
            );
        }
    }

    #[test]
    fn infeasible_warm_start_hint_is_skipped() {
        // Optimum is 12; a hint of 5 covers only infeasible ground and
        // must be crossed, not believed.
        let mut p = IntProblem::new();
        let x = p.int_var(0, 50);
        p.assert(x.expr().ge(12));
        for deterministic in [false, true] {
            let base = MinimizeOptions {
                initial_upper: Some(5),
                ..MinimizeOptions::default()
            };
            let out = minimize_window_search(
                &p,
                x,
                &PortfolioOptions {
                    workers: 2,
                    deterministic,
                    base,
                    ..PortfolioOptions::default()
                },
            );
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 12),
                ref s => panic!("det={deterministic}: got {s:?}"),
            }
        }
    }

    /// Certified window search: the UNSAT fragments the scheduler
    /// coalesced are exactly the certified windows, stitched across
    /// workers into a gap-free covering certificate. Deterministic runs
    /// produce bit-identical certificates.
    #[test]
    fn certified_window_search_verifies() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 100);
        p.assert(x.expr().ge(7));
        let base = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        for deterministic in [false, true] {
            for workers in [1, 3] {
                let opts = PortfolioOptions {
                    workers,
                    deterministic,
                    base: base.clone(),
                    ..PortfolioOptions::default()
                };
                let out = minimize_window_search(&p, x, &opts);
                match out.status {
                    MinimizeStatus::Optimal { value, .. } => {
                        assert_eq!(value, 7, "det={deterministic} workers={workers}")
                    }
                    ref s => panic!("det={deterministic} workers={workers}: got {s:?}"),
                }
                let cert = out.certificate.as_ref().expect("certificate stitched");
                let summary = cert
                    .verify()
                    .unwrap_or_else(|e| panic!("det={deterministic} workers={workers}: {e}"));
                assert!(summary.windows > 0);
            }
        }
        // Deterministic certificates are bit-stable: same windows, same
        // proof steps, run to run.
        let opts = PortfolioOptions {
            workers: 3,
            deterministic: true,
            base,
            ..PortfolioOptions::default()
        };
        let a = minimize_window_search(&p, x, &opts);
        let b = minimize_window_search(&p, x, &opts);
        let (sa, sb) = (
            a.certificate.unwrap().verify().unwrap(),
            b.certificate.unwrap().verify().unwrap(),
        );
        assert_eq!(sa.windows, sb.windows);
        assert_eq!(sa.steps, sb.steps);
        assert_eq!(sa.adds_verified, sb.adds_verified);
    }

    #[test]
    fn deterministic_window_search_is_bit_stable() {
        let (p, cost) = instance();
        let opts = PortfolioOptions {
            workers: 3,
            deterministic: true,
            ..PortfolioOptions::default()
        };
        let a = minimize_window_search(&p, cost, &opts);
        let b = minimize_window_search(&p, cost, &opts);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.solve_calls, b.solve_calls);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.decisions, b.stats.decisions);
        for (wa, wb) in a.workers.iter().zip(&b.workers) {
            assert_eq!(wa.windows, wb.windows, "window assignment must be stable");
            assert_eq!(wa.solve_calls, wb.solve_calls);
        }
        match (&a.status, &b.status) {
            (
                MinimizeStatus::Optimal { value: va, .. },
                MinimizeStatus::Optimal { value: vb, .. },
            ) => {
                assert_eq!(va, vb);
                assert_eq!(*va, 0);
            }
            (s, t) => panic!("expected Optimal twice, got {s:?} / {t:?}"),
        }
    }
}
