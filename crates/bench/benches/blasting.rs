//! Criterion benchmarks of the integer layer: triplet rewriting,
//! bit-blasting (both back-ends) and small optimizations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use optalloc_intopt::{blast, Backend, BinSearchMode, IntExpr, IntProblem, MinimizeOptions};
use optalloc_sat::Solver;

/// A medium-sized arithmetic system: n chained nonlinear constraints.
fn chained_products(n: usize) -> (IntProblem, optalloc_intopt::IntVar) {
    let mut p = IntProblem::new();
    let xs: Vec<_> = (0..n).map(|_| p.int_var(1, 30)).collect();
    for w in xs.windows(2) {
        p.assert((w[0].expr() * w[1].expr()).le(300));
        p.assert((w[0].expr() + w[1].expr()).ge(8));
    }
    let cost = p.int_var(0, 30 * n as i64);
    p.assert(cost.expr().eq(IntExpr::sum(xs.iter().map(|v| v.expr()))));
    (p, cost)
}

fn bench_blasting(c: &mut Criterion) {
    let mut group = c.benchmark_group("blasting");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_function("triplet_rewriting_20", |b| {
        let (p, _) = chained_products(20);
        b.iter(|| {
            let tf = p.triplet_form();
            assert!(!tf.is_empty());
            tf.len()
        })
    });

    for backend in [Backend::Cnf, Backend::PseudoBoolean] {
        group.bench_with_input(
            BenchmarkId::new("encode_20", format!("{backend:?}")),
            &backend,
            |b, &backend| {
                let (p, _) = chained_products(20);
                let tf = p.triplet_form();
                b.iter(|| {
                    let mut solver = Solver::new();
                    let bl = blast(&tf, p.int_decls(), &mut solver, backend);
                    assert!(!bl.trivially_unsat());
                    solver.num_vars()
                })
            },
        );
    }

    group.bench_function("minimize_incremental_8", |b| {
        b.iter(|| {
            let (p, cost) = chained_products(8);
            let out = p.minimize(
                cost,
                &MinimizeOptions {
                    mode: BinSearchMode::Incremental,
                    ..Default::default()
                },
            );
            out.solve_calls
        })
    });

    group.finish();
}

criterion_group!(benches, bench_blasting);
criterion_main!(benches);
