//! # optalloc-obs
//!
//! Dependency-light observability for the allocation pipeline: a lock-light
//! [`MetricsRegistry`] (counters / gauges / fixed-bucket histograms),
//! hierarchical [`Phase`] spans with a thread-local parent stack and
//! JSONL / Chrome `trace_event` export, and a throttled solver
//! [`ProgressEvent`] stream.
//!
//! The entry point is the [`Obs`] handle: a cheaply-cloneable reference
//! that is either **disabled** (the default — every hot-path touch is a
//! single `Option` branch and no state is allocated) or **enabled**
//! (backed by a shared registry + trace buffer). The handle travels
//! through `SolverConfig`/`SolveOptions`, so one `Obs::enabled()` at the
//! CLI or service layer lights up every phase of every worker below it.
//!
//! ```
//! use optalloc_obs::{Obs, Phase};
//!
//! let obs = Obs::enabled();
//! let mut sw = obs.stopwatch(Phase::Encode);
//! sw.attr("what", "demo");
//! let ms = sw.finish(); // the recorded span's dur_ms IS this value
//! assert_eq!(obs.spans()[0].dur_ms, ms);
//! ```
//!
//! Metric names, the span hierarchy, trace schemas and the overhead
//! contract are documented in `docs/OBSERVABILITY.md`.

mod progress;
mod registry;
mod span;

pub use progress::{format_progress_line, ProgressEvent, ProgressHook, ProgressThrottle};
pub use registry::{
    Counter, CounterSnapshot, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, DEFAULT_MS_BUCKETS,
};
pub use span::{phase_totals, Phase, PhaseTotal, PhaseTotals, SpanRecord, Stopwatch};

use serde::Value;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag of the JSONL trace format (first line of every export).
pub const TRACE_SCHEMA: &str = "optalloc-trace-v1";

pub(crate) fn thread_shard() -> usize {
    span::current_tid() as usize
}

/// Shared observability state behind an enabled [`Obs`] handle.
pub(crate) struct ObsCore {
    epoch: Instant,
    metrics: MetricsRegistry,
    spans: Mutex<Vec<SpanRecord>>,
    next_span: AtomicU64,
}

impl ObsCore {
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn epoch_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    pub(crate) fn record(&self, rec: SpanRecord) {
        self.spans.lock().unwrap().push(rec);
    }
}

/// Handle to the observability subsystem: disabled (free) or enabled
/// (shared registry + trace buffer). Clone freely — clones share state.
#[derive(Clone, Default)]
pub struct Obs {
    core: Option<Arc<ObsCore>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.core.is_some() {
            "Obs(enabled)"
        } else {
            "Obs(disabled)"
        })
    }
}

impl Obs {
    /// The no-op handle (also `Obs::default()`): records nothing, costs a
    /// single branch wherever it is consulted.
    pub fn disabled() -> Obs {
        Obs { core: None }
    }

    /// A live handle with a fresh registry and trace buffer.
    pub fn enabled() -> Obs {
        Obs {
            core: Some(Arc::new(ObsCore {
                epoch: Instant::now(),
                metrics: MetricsRegistry::new(),
                spans: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(0),
            })),
        }
    }

    /// `true` when spans and metrics are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    pub(crate) fn core(&self) -> Option<&Arc<ObsCore>> {
        self.core.as_ref()
    }

    /// The metrics registry, when enabled.
    #[inline]
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.core.as_ref().map(|c| &c.metrics)
    }

    /// Starts timing `phase`. Always measures (see [`Stopwatch`]); records
    /// a span only when enabled.
    #[inline]
    pub fn stopwatch(&self, phase: Phase) -> Stopwatch {
        Stopwatch::start(self, phase)
    }

    /// A copy of every span recorded so far (record order).
    pub fn spans(&self) -> Vec<SpanRecord> {
        match &self.core {
            Some(c) => c.spans.lock().unwrap().clone(),
            None => Vec::new(),
        }
    }

    /// Per-phase span totals (sum of `dur_ms` in record order).
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        phase_totals(&self.spans())
    }

    /// Serializes the trace as JSONL: a schema header line, one `span`
    /// line per recorded span, then one line per registry metric. The
    /// format is documented in `docs/OBSERVABILITY.md`.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Value::Object(vec![
            ("type".into(), Value::Str("trace".into())),
            ("schema".into(), Value::Str(TRACE_SCHEMA.into())),
        ]);
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for s in self.spans() {
            out.push_str(&serde_json::to_string(&span_line(&s)).expect("span serializes"));
            out.push('\n');
        }
        if let Some(m) = self.metrics() {
            let snap = m.snapshot();
            for c in &snap.counters {
                let line = Value::Object(vec![
                    ("type".into(), Value::Str("counter".into())),
                    ("name".into(), Value::Str(c.name.clone())),
                    ("value".into(), Value::UInt(c.value)),
                ]);
                out.push_str(&serde_json::to_string(&line).expect("counter serializes"));
                out.push('\n');
            }
            for g in &snap.gauges {
                let line = Value::Object(vec![
                    ("type".into(), Value::Str("gauge".into())),
                    ("name".into(), Value::Str(g.name.clone())),
                    ("value".into(), Value::Int(g.value)),
                ]);
                out.push_str(&serde_json::to_string(&line).expect("gauge serializes"));
                out.push('\n');
            }
            for h in &snap.histograms {
                let mut obj = vec![("type".into(), Value::Str("histogram".into()))];
                if let Value::Object(fields) = serde::Serialize::to_value(h) {
                    obj.extend(fields);
                }
                out.push_str(
                    &serde_json::to_string(&Value::Object(obj)).expect("histogram serializes"),
                );
                out.push('\n');
            }
        }
        out
    }

    /// Serializes the trace in Chrome `trace_event` JSON (open in
    /// chrome://tracing or Perfetto). Timestamps/durations are in
    /// microseconds per the format; each event's `args.dur_ms` carries the
    /// exact `f64` duration so phase sums stay lossless.
    pub fn export_chrome_trace(&self) -> String {
        let events: Vec<Value> = self
            .spans()
            .iter()
            .map(|s| {
                let mut args = vec![
                    ("dur_ms".into(), Value::Float(s.dur_ms)),
                    ("id".into(), Value::UInt(s.id)),
                ];
                if let Some(p) = s.parent {
                    args.push(("parent".into(), Value::UInt(p)));
                }
                for (k, v) in &s.attrs {
                    args.push((k.clone(), Value::Str(v.clone())));
                }
                Value::Object(vec![
                    ("name".into(), Value::Str(s.phase.clone())),
                    ("cat".into(), Value::Str("optalloc".into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("pid".into(), Value::UInt(1)),
                    ("tid".into(), Value::UInt(s.tid)),
                    ("ts".into(), Value::UInt(s.start_us)),
                    ("dur".into(), Value::Float(s.dur_ms * 1e3)),
                    ("args".into(), Value::Object(args)),
                ])
            })
            .collect();
        let root = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        serde_json::to_string_pretty(&root).expect("chrome trace serializes")
    }

    /// Writes the trace to `path`: JSONL when the extension is `.jsonl`,
    /// Chrome `trace_event` JSON otherwise.
    pub fn write_trace(&self, path: &Path) -> std::io::Result<()> {
        let text = if path.extension().is_some_and(|e| e == "jsonl") {
            self.export_jsonl()
        } else {
            self.export_chrome_trace()
        };
        std::fs::write(path, text)
    }
}

fn span_line(s: &SpanRecord) -> Value {
    let mut obj = vec![
        ("type".into(), Value::Str("span".into())),
        ("id".into(), Value::UInt(s.id)),
    ];
    if let Some(p) = s.parent {
        obj.push(("parent".into(), Value::UInt(p)));
    }
    obj.push(("phase".into(), Value::Str(s.phase.clone())));
    obj.push(("start_us".into(), Value::UInt(s.start_us)));
    obj.push(("dur_ms".into(), Value::Float(s.dur_ms)));
    obj.push(("tid".into(), Value::UInt(s.tid)));
    if !s.attrs.is_empty() {
        obj.push((
            "attrs".into(),
            Value::Object(
                s.attrs
                    .iter()
                    .map(|(k, v)| (k.clone(), Value::Str(v.clone())))
                    .collect(),
            ),
        ));
    }
    Value::Object(obj)
}

fn num_u64(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::UInt(u) => Ok(*u),
        Value::Int(i) if *i >= 0 => Ok(*i as u64),
        other => Err(format!("expected unsigned {what}, found {other:?}")),
    }
}

fn num_f64(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        other => Err(format!("expected number {what}, found {other:?}")),
    }
}

fn str_of(v: &Value, what: &str) -> Result<String, String> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!("expected string {what}, found {other:?}")),
    }
}

fn attrs_of(v: Option<&Value>) -> Result<Vec<(String, String)>, String> {
    let Some(v) = v else { return Ok(Vec::new()) };
    let obj = v.as_object().ok_or("attrs must be an object")?;
    obj.iter()
        .map(|(k, val)| Ok((k.clone(), str_of(val, "attr value")?)))
        .collect()
}

/// Parses a trace exported by [`Obs::export_jsonl`] (validating the
/// documented schema line by line) or [`Obs::export_chrome_trace`] back
/// into span records. Errors name the offending line / field.
pub fn parse_trace(text: &str) -> Result<Vec<SpanRecord>, String> {
    // A JSONL export has one typed object per line; a chrome trace is one
    // JSON document (whose first line is `{` when pretty-printed, or an
    // object without a `type` field when compact).
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let first_is_typed = serde_json::from_str::<Value>(first)
        .map(|v| v.get("type").is_some())
        .unwrap_or(false);
    if first_is_typed {
        parse_jsonl(text)
    } else {
        parse_chrome(text)
    }
}

fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, String> {
    let mut spans = Vec::new();
    let mut saw_header = false;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        if line.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON: {e}"))?;
        let ty = v
            .get("type")
            .ok_or_else(|| format!("line {n}: missing `type`"))?;
        let ty = str_of(ty, "type").map_err(|e| format!("line {n}: {e}"))?;
        match ty.as_str() {
            "trace" => match v.get("schema") {
                Some(Value::Str(s)) if s.as_str() == TRACE_SCHEMA => saw_header = true,
                other => return Err(format!("line {n}: unknown trace schema {other:?}")),
            },
            "span" => {
                let get = |k: &str| {
                    v.get(k)
                        .ok_or_else(|| format!("line {n}: span missing `{k}`"))
                };
                spans.push(SpanRecord {
                    id: num_u64(get("id")?, "id").map_err(|e| format!("line {n}: {e}"))?,
                    parent: match v.get("parent") {
                        Some(p) => {
                            Some(num_u64(p, "parent").map_err(|e| format!("line {n}: {e}"))?)
                        }
                        None => None,
                    },
                    phase: str_of(get("phase")?, "phase").map_err(|e| format!("line {n}: {e}"))?,
                    start_us: num_u64(get("start_us")?, "start_us")
                        .map_err(|e| format!("line {n}: {e}"))?,
                    dur_ms: num_f64(get("dur_ms")?, "dur_ms")
                        .map_err(|e| format!("line {n}: {e}"))?,
                    tid: num_u64(get("tid")?, "tid").map_err(|e| format!("line {n}: {e}"))?,
                    attrs: attrs_of(v.get("attrs")).map_err(|e| format!("line {n}: {e}"))?,
                });
            }
            "counter" | "gauge" => {
                v.get("name")
                    .ok_or_else(|| format!("line {n}: {ty} missing `name`"))?;
                v.get("value")
                    .ok_or_else(|| format!("line {n}: {ty} missing `value`"))?;
            }
            "histogram" => {
                for k in ["name", "bounds", "counts", "count", "sum_ms"] {
                    v.get(k)
                        .ok_or_else(|| format!("line {n}: histogram missing `{k}`"))?;
                }
            }
            other => return Err(format!("line {n}: unknown record type `{other}`")),
        }
    }
    if !saw_header {
        return Err(format!("missing `{TRACE_SCHEMA}` header line"));
    }
    Ok(spans)
}

fn parse_chrome(text: &str) -> Result<Vec<SpanRecord>, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or("missing `traceEvents` array")?;
    let mut spans = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let args = ev.get("args").ok_or(format!("event {i}: missing args"))?;
        let mut attrs = Vec::new();
        for (k, val) in args.as_object().unwrap_or(&[]) {
            if let Value::Str(s) = val {
                attrs.push((k.clone(), s.clone()));
            }
        }
        spans.push(SpanRecord {
            id: args.get("id").map_or(Ok(0), |x| num_u64(x, "args.id"))?,
            parent: match args.get("parent") {
                Some(p) => Some(num_u64(p, "args.parent")?),
                None => None,
            },
            phase: str_of(
                ev.get("name").ok_or(format!("event {i}: missing name"))?,
                "name",
            )?,
            start_us: num_u64(ev.get("ts").ok_or(format!("event {i}: missing ts"))?, "ts")?,
            dur_ms: num_f64(
                args.get("dur_ms")
                    .ok_or(format!("event {i}: missing args.dur_ms"))?,
                "dur_ms",
            )?,
            tid: num_u64(
                ev.get("tid").ok_or(format!("event {i}: missing tid"))?,
                "tid",
            )?,
            attrs,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn disabled_handle_measures_but_records_nothing() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        let sw = obs.stopwatch(Phase::Search);
        assert!(!sw.recording());
        let ms = sw.finish();
        assert!(ms >= 0.0);
        assert!(obs.spans().is_empty());
        assert!(obs.metrics().is_none());
    }

    #[test]
    fn stopwatch_dur_equals_recorded_span_dur() {
        let obs = Obs::enabled();
        let mut total = 0.0;
        for _ in 0..5 {
            total += obs.stopwatch(Phase::Search).finish();
        }
        let spans = obs.spans();
        assert_eq!(spans.len(), 5);
        let sum: f64 = spans.iter().map(|s| s.dur_ms).sum();
        // Identical f64 sequence summed in identical order: bit-exact.
        assert_eq!(sum, total);
        assert_eq!(obs.phase_totals()[0].total_ms, total);
    }

    #[test]
    fn spans_nest_via_the_thread_local_stack() {
        let obs = Obs::enabled();
        let outer = obs.stopwatch(Phase::BisectWindow);
        let inner = obs.stopwatch(Phase::Search);
        inner.finish();
        outer.finish();
        let after = obs.stopwatch(Phase::Certify);
        after.finish();
        let spans = obs.spans();
        assert_eq!(spans.len(), 3);
        let outer_id = spans
            .iter()
            .find(|s| s.phase == "bisect-window")
            .unwrap()
            .id;
        let inner = spans.iter().find(|s| s.phase == "search").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        let after = spans.iter().find(|s| s.phase == "certify").unwrap();
        assert_eq!(after.parent, None, "stack must unwind after finish");
    }

    #[test]
    fn dropped_stopwatch_still_records_and_unwinds() {
        let obs = Obs::enabled();
        {
            let _outer = obs.stopwatch(Phase::Encode);
            // dropped without finish()
        }
        let tail = obs.stopwatch(Phase::Search);
        tail.finish();
        let spans = obs.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.parent.is_none()));
    }

    #[test]
    fn registry_counters_gauges_histograms() {
        let obs = Obs::enabled();
        let m = obs.metrics().unwrap();
        let c = m.counter("solver.conflicts");
        c.add(41);
        c.inc();
        assert_eq!(c.value(), 42);
        // Same name → same counter.
        assert_eq!(m.counter("solver.conflicts").value(), 42);
        let g = m.gauge("jobs.inflight");
        g.set(3);
        g.add(-1);
        assert_eq!(g.value(), 2);
        let h = m.histogram("span.ms", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let snap = m.snapshot();
        assert_eq!(snap.counter("solver.conflicts"), Some(42));
        assert_eq!(snap.gauge("jobs.inflight"), Some(2));
        let hs = &snap.histograms[0];
        assert_eq!(hs.counts, vec![1, 1, 1]);
        assert_eq!(hs.count, 3);
        assert!((hs.sum_ms - 105.5).abs() < 1e-3);
    }

    #[test]
    fn sharded_counter_sums_across_threads() {
        let obs = Obs::enabled();
        let c = obs.metrics().unwrap().counter("work");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
    }

    #[test]
    fn jsonl_roundtrip_preserves_spans_exactly() {
        let obs = Obs::enabled();
        let mut sw = obs.stopwatch(Phase::Encode);
        sw.attr("window", "[3,9]");
        sw.finish();
        obs.stopwatch(Phase::Search).finish();
        obs.metrics().unwrap().counter("solver.conflicts").add(7);
        obs.metrics()
            .unwrap()
            .histogram("span.search_ms", DEFAULT_MS_BUCKETS)
            .observe(1.5);
        let text = obs.export_jsonl();
        let parsed = parse_trace(&text).expect("parses");
        let orig = obs.spans();
        assert_eq!(parsed.len(), orig.len());
        for (p, o) in parsed.iter().zip(&orig) {
            assert_eq!(p.id, o.id);
            assert_eq!(p.phase, o.phase);
            assert_eq!(p.dur_ms, o.dur_ms, "float must round-trip bit-exactly");
            assert_eq!(p.attrs, o.attrs);
        }
    }

    #[test]
    fn chrome_trace_roundtrip_preserves_durations() {
        let obs = Obs::enabled();
        let outer = obs.stopwatch(Phase::BisectWindow);
        obs.stopwatch(Phase::Search).finish();
        outer.finish();
        let text = obs.export_chrome_trace();
        assert!(text.contains("traceEvents"));
        let parsed = parse_trace(&text).expect("parses");
        let orig = obs.spans();
        assert_eq!(parsed.len(), orig.len());
        for (p, o) in parsed.iter().zip(&orig) {
            assert_eq!(p.dur_ms, o.dur_ms);
            assert_eq!(p.phase, o.phase);
            assert_eq!(p.parent, o.parent);
        }
    }

    #[test]
    fn jsonl_schema_violations_are_rejected() {
        assert!(parse_trace("{\"type\":\"span\"}\n").is_err(), "no header");
        let bad = format!(
            "{}\n{{\"type\":\"span\",\"id\":1}}\n",
            "{\"type\":\"trace\",\"schema\":\"optalloc-trace-v1\"}"
        );
        let err = parse_trace(&bad).unwrap_err();
        assert!(err.contains("missing `phase`"), "got: {err}");
    }

    #[test]
    fn throttle_fast_path_and_rate() {
        let mut t = ProgressThrottle::new(100, 0);
        assert_eq!(t.due(1), None);
        assert_eq!(t.due(99), None);
        assert_eq!(t.due(100), Some(0.0), "first event has no interval");
        assert_eq!(t.due(150), None);
        let rate = t.due(200).expect("second event due");
        assert!(rate > 0.0);
        // With a huge min interval, conflict count alone never triggers.
        let mut t = ProgressThrottle::new(10, u64::MAX);
        assert_eq!(t.due(10), Some(0.0));
        assert_eq!(t.due(20), None);
        assert_eq!(t.due(1000), None);
    }

    #[test]
    fn progress_hook_stamps_worker_ids() {
        let seen = Arc::new(AtomicUsize::new(usize::MAX));
        let seen2 = Arc::clone(&seen);
        let hook = ProgressHook::new(move |ev| {
            seen2.store(ev.worker.unwrap_or(usize::MAX), Ordering::Relaxed);
        });
        let tagged = hook.with_worker(3);
        tagged.emit(&ProgressEvent::default());
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        let line = format_progress_line(&ProgressEvent {
            worker: Some(3),
            conflicts: 10,
            window: Some((2, 9)),
            ..Default::default()
        });
        assert!(line.starts_with("w3 "), "got: {line}");
        assert!(line.contains("win=[2,9]"), "got: {line}");
    }

    #[test]
    fn phase_totals_aggregates_in_order() {
        let obs = Obs::enabled();
        let a = obs.stopwatch(Phase::Encode).finish();
        let b = obs.stopwatch(Phase::Search).finish();
        let c = obs.stopwatch(Phase::Encode).finish();
        let totals = obs.phase_totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[0].phase, "encode");
        assert_eq!(totals[0].count, 2);
        assert_eq!(totals[0].total_ms, a + c);
        assert_eq!(totals[1].total_ms, b);
    }

    #[test]
    fn phase_totals_wire_type_absorbs() {
        let mut t = PhaseTotals {
            encode_ms: 1.0,
            search_ms: 2.0,
            certify_ms: 0.5,
        };
        t.absorb(&PhaseTotals {
            encode_ms: 0.5,
            search_ms: 1.0,
            certify_ms: 0.0,
        });
        assert_eq!(t.encode_ms, 1.5);
        assert_eq!(t.search_ms, 3.0);
        assert_eq!(t.total_ms(), 5.0);
        let json = serde_json::to_string(&t).unwrap();
        let back: PhaseTotals = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
