//! Fundamental solver types: variables, literals, and the three-valued
//! assignment domain.
//!
//! The representation follows the classic MiniSat convention: a variable is a
//! dense index, and a literal packs the variable together with its sign into
//! a single `u32` (`var << 1 | sign`), so literals can index arrays directly.

use std::fmt;

/// A propositional variable, identified by a dense index starting at 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Creates a variable from its raw index.
    #[inline]
    pub fn from_index(idx: usize) -> Var {
        Var(idx as u32)
    }

    /// The dense index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// The literal of this variable with the given sign (`true` = positive).
    #[inline]
    pub fn lit(self, positive: bool) -> Lit {
        Lit(self.0 << 1 | (!positive as u32))
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// Encoded as `var << 1 | sign` where `sign == 1` means negated. This makes
/// `lit.index()` usable for direct indexing of watch lists and occurrence
/// tables, and negation a single XOR.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// Creates a literal from its raw encoded index (`var << 1 | sign`).
    #[inline]
    pub fn from_index(idx: usize) -> Lit {
        Lit(idx as u32)
    }

    /// The raw encoded index, suitable for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the positive (unnegated) literal.
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// `true` if this is the negated literal.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!v{}", self.0 >> 1)
        } else {
            write!(f, "v{}", self.0 >> 1)
        }
    }
}

/// A three-valued Boolean: true, false, or unassigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum LBool {
    /// Assigned true.
    True = 0,
    /// Assigned false.
    False = 1,
    /// Not assigned.
    Undef = 2,
}

impl LBool {
    /// Converts a concrete Boolean.
    #[inline]
    pub fn from_bool(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }

    /// `true` if assigned (either value).
    #[inline]
    pub fn is_assigned(self) -> bool {
        self != LBool::Undef
    }

    /// Flips true/false; `Undef` stays `Undef`.
    #[inline]
    pub fn negate(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }

    /// Extracts the concrete value, if assigned.
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = Var::from_index(7);
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert!(v.positive().is_positive());
        assert!(v.negative().is_negative());
        assert_eq!(!v.positive(), v.negative());
        assert_eq!(!!v.positive(), v.positive());
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn literal_indexing_is_dense() {
        let a = Var::from_index(0);
        let b = Var::from_index(1);
        assert_eq!(a.positive().index(), 0);
        assert_eq!(a.negative().index(), 1);
        assert_eq!(b.positive().index(), 2);
        assert_eq!(b.negative().index(), 3);
    }

    #[test]
    fn lbool_negation() {
        assert_eq!(LBool::True.negate(), LBool::False);
        assert_eq!(LBool::False.negate(), LBool::True);
        assert_eq!(LBool::Undef.negate(), LBool::Undef);
        assert_eq!(LBool::from_bool(true), LBool::True);
        assert_eq!(LBool::True.to_bool(), Some(true));
        assert_eq!(LBool::Undef.to_bool(), None);
    }
}
