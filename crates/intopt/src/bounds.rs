//! Two-sided shared bound lattice for cooperating minimization searches.
//!
//! PR 1's portfolio shared only the *upper* incumbent bound (an `AtomicI64`
//! tightened with `fetch_min`). That leaves the terminal UNSAT certification
//! serial: every worker re-proves the same lower bound. [`BoundLattice`]
//! pairs the incumbent bound with a certified *lower* bound tightened with
//! `fetch_max`, so any worker's UNSAT proof over `[L, M]` shrinks everyone's
//! remaining window from below.
//!
//! The two sides form a lattice in the order-theoretic sense: `lower` only
//! ever rises, `upper` only ever falls, and both moves are monotone atomic
//! folds — concurrent publications commute, so no ordering between workers
//! is needed for soundness. The optimum (when one exists) always satisfies
//! `lower ≤ opt ≤ upper`; once `lower ≥ upper` the incumbent is proven
//! optimal and the search is over.
//!
//! A worker may observe the lower bound *overtake* the upper bound
//! mid-probe (another worker certified `L > U` while this one was solving a
//! now-stale window). That is not an inconsistency — it simply means the
//! window is exhausted — and every consumer must treat `lower > upper` as
//! "done", never as an error (see the bound-crossing tests).

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared pair of monotone cost bounds (see the module docs).
///
/// `lower` carries *certified* knowledge (UNSAT proofs: no solution cheaper
/// than `lower` exists); `upper` carries *witnessed* knowledge (some worker
/// holds a model of cost `upper`). Reads and writes use relaxed ordering —
/// the bounds are pure optimization hints folded between probes, and every
/// terminal verdict is re-derived from a probe result, not from the lattice.
pub struct BoundLattice {
    lower: AtomicI64,
    upper: AtomicI64,
}

impl std::fmt::Debug for BoundLattice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundLattice")
            .field("lower", &self.lower())
            .field("upper", &self.upper())
            .finish()
    }
}

impl Default for BoundLattice {
    fn default() -> BoundLattice {
        BoundLattice::new()
    }
}

impl BoundLattice {
    /// A lattice with both sides at their vacuous extremes.
    pub fn new() -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(i64::MIN),
            upper: AtomicI64::new(i64::MAX),
        }
    }

    /// A lattice pre-seeded with `lower ≥ lo` and `upper ≤ hi`.
    pub fn with_bounds(lo: i64, hi: i64) -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(lo),
            upper: AtomicI64::new(hi),
        }
    }

    /// Certified lower bound: no solution cheaper than this exists.
    pub fn lower(&self) -> i64 {
        self.lower.load(Ordering::Relaxed)
    }

    /// Witnessed upper bound: some worker holds a model this cheap.
    pub fn upper(&self) -> i64 {
        self.upper.load(Ordering::Relaxed)
    }

    /// Both sides, read independently (no cross-side atomicity — callers
    /// must tolerate `lower > upper`, which means "search exhausted").
    pub fn snapshot(&self) -> (i64, i64) {
        (self.lower(), self.upper())
    }

    /// Folds in a certified lower bound (`fetch_max`); returns the lattice
    /// lower bound after the fold.
    pub fn publish_lower(&self, bound: i64) -> i64 {
        self.lower.fetch_max(bound, Ordering::Relaxed).max(bound)
    }

    /// Folds in a witnessed upper bound (`fetch_min`); returns the lattice
    /// upper bound after the fold.
    pub fn publish_upper(&self, bound: i64) -> i64 {
        self.upper.fetch_min(bound, Ordering::Relaxed).min(bound)
    }

    /// True once the window is exhausted: `lower ≥ upper` means the
    /// incumbent (if any) is proven optimal.
    pub fn closed(&self) -> bool {
        self.lower() >= self.upper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folds_are_monotone() {
        let b = BoundLattice::new();
        assert_eq!(b.publish_lower(3), 3);
        assert_eq!(b.publish_lower(1), 3); // lower never regresses
        assert_eq!(b.publish_upper(10), 10);
        assert_eq!(b.publish_upper(12), 10); // upper never regresses
        assert_eq!(b.snapshot(), (3, 10));
        assert!(!b.closed());
        b.publish_lower(10);
        assert!(b.closed());
    }

    #[test]
    fn crossing_is_terminal_not_fatal() {
        // Another worker certifies L = 9 while we hold an incumbent of 5:
        // can only happen through unsound use OR a stale read, but the
        // lattice itself must stay well-defined and report "closed".
        let b = BoundLattice::with_bounds(9, 5);
        assert!(b.closed());
        assert_eq!(b.snapshot(), (9, 5));
    }

    /// Convergence against a certified optimum: lower-side publishers only
    /// ever publish *certified* bounds (≤ OPT by soundness of UNSAT
    /// proofs), upper-side publishers only *witnessed* bounds (≥ OPT by
    /// feasibility). However the publications interleave, the lattice must
    /// never cross the optimum from either side, and once both sides have
    /// published their best facts it must close exactly at OPT.
    #[test]
    fn interleaved_publishers_never_cross_the_certified_optimum() {
        const OPT: i64 = 1_000;
        let b = Arc::new(BoundLattice::new());
        let mut handles = Vec::new();
        for t in 0..4i64 {
            // Lower publishers: rising certified bounds capped at OPT.
            let lat = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    let certified = ((t * 7 + i * 13) % (OPT + 1)).min(OPT);
                    let folded = lat.publish_lower(certified);
                    assert!(folded <= OPT, "lower fold {folded} crossed the optimum");
                }
                lat.publish_lower(OPT);
            }));
            // Upper publishers: falling witnessed bounds floored at OPT.
            let lat = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000 {
                    let witnessed = OPT + ((t * 11 + i * 17) % 5_000);
                    let folded = lat.publish_upper(witnessed);
                    assert!(folded >= OPT, "upper fold {folded} crossed the optimum");
                }
                lat.publish_upper(OPT);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Both sides converged exactly onto the optimum and the window is
        // closed — the terminal state of every sound cooperating search.
        assert_eq!(b.snapshot(), (OPT, OPT));
        assert!(b.closed());
    }

    /// Mid-flight invariant under concurrency: sample the lattice while
    /// sound publishers hammer it; every snapshot must bracket the optimum
    /// (lower ≤ OPT ≤ upper) — a reader can never observe a crossed state
    /// when all publications are sound.
    #[test]
    fn snapshots_bracket_the_optimum_while_publishing() {
        const OPT: i64 = 64;
        let b = Arc::new(BoundLattice::new());
        let writers: Vec<_> = (0..2i64)
            .map(|t| {
                let lat = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..5_000 {
                        lat.publish_lower((i + t) % (OPT + 1));
                        lat.publish_upper(OPT + (i * 3 + t) % 100);
                    }
                })
            })
            .collect();
        let reader = {
            let lat = Arc::clone(&b);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    let (lo, hi) = lat.snapshot();
                    assert!(lo <= OPT, "reader saw certified lower {lo} > optimum");
                    assert!(hi >= OPT, "reader saw witnessed upper {hi} < optimum");
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        reader.join().unwrap();
    }

    #[test]
    fn concurrent_folds_commute() {
        let b = Arc::new(BoundLattice::new());
        let handles: Vec<_> = (0..4i64)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        b.publish_lower(t * 1_000 + i);
                        b.publish_upper(100_000 - (t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.lower(), 3_999);
        assert_eq!(b.upper(), 96_001);
    }
}
