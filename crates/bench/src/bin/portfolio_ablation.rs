//! **Portfolio ablation** — one plain search vs N parallel workers, in both
//! parallel flavours (diversified racing and disjoint window search).
//!
//! Table-3-style instances (token-ring task-set scaling), TRT objective.
//! The 1-worker row is the plain incremental binary search
//! ([`Strategy::Single`], no heuristic seeding) — the configuration a user
//! gets with the portfolio subsystem off. The N-worker rows run the full
//! portfolio pipeline: a short simulated-annealing pass seeds the shared
//! incumbent (`initial_upper`), then N workers attack the encoding — either
//! as a diversified race (mode `racing`: cooperative cancellation,
//! two-sided bound sharing, learned-clause sharing) or as a disjoint window
//! search (mode `window`: the remaining cost interval partitioned across
//! workers, see [`Strategy::WindowSearch`]); the SA wall time is charged to
//! the parallel run. On a single-core host the workers time-slice one CPU,
//! so any measured speedup is algorithmic (warm start + bound sharing +
//! configuration diversity / work partitioning), not hardware parallelism.
//!
//! Emits a machine-readable JSON array on stdout (and to `--json <path>`):
//! per instance × mode × worker count, the proven optimum, wall time,
//! solver totals, the winning worker's configuration, the measured speedup
//! over the 1-worker baseline, and — because on one core the parallel
//! workers time-slice a single CPU — a projected speedup for a host with
//! one core per worker (`single / (sa + race_wall / workers)`; with fair
//! time-slicing, `race_wall / workers` approximates the winner's solo
//! time, which is its wall time when it owns a core).
//!
//! The peak worker count defaults to `--workers auto` (one per host core,
//! via `std::thread::available_parallelism()`); pass `--workers <n>` to pin
//! it. `OPTALLOC_ABLATION_SIZES` (comma-separated task counts) overrides
//! the instance grid, e.g. `OPTALLOC_ABLATION_SIZES=30,43`.

use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_bench::{parse_cli, solve_options};
use optalloc_heuristics::{anneal, HeuristicObjective, SaParams};
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;
use serde::Serialize;
use std::time::Instant;

/// One measurement of the ablation grid.
#[derive(Debug, Serialize)]
struct AblationRow {
    instance: String,
    tasks: usize,
    /// Search mode: `single` (plain binary search), `racing` (diversified
    /// portfolio), or `window` (disjoint parallel window search).
    mode: &'static str,
    workers: usize,
    /// CPUs available to the process — racing workers beyond this count
    /// time-slice cores, capping the *measured* speedup at ~1×.
    host_cores: usize,
    /// Whether the run was seeded with the SA incumbent.
    warm: bool,
    /// Proven optimal TRT in ticks (identical across worker counts).
    cost: i64,
    /// Wall time in seconds; for portfolio rows this includes the SA pass.
    time_s: f64,
    /// SA seeding time included in `time_s` (0 for the baseline).
    sa_time_s: f64,
    /// SA incumbent used as the warm-start upper bound, if feasible.
    sa_incumbent: Option<i64>,
    solve_calls: u32,
    conflicts: u64,
    decisions: u64,
    /// Winning worker index and configuration descriptor (portfolio only).
    winner: Option<usize>,
    winner_config: Option<String>,
    /// `time_s(1 worker, cold) / time_s(this row)` — measured wall clock.
    speedup_vs_single: f64,
    /// `time_s(1 worker, cold) / (sa_time_s + race_wall / workers)` — the
    /// expected speedup with one core per worker (see module docs).
    projected_parallel_speedup: f64,
}

fn main() {
    let cli = parse_cli();
    let ring = MediumId(0);
    let objective = Objective::TokenRotationTime(ring);
    let default_sizes: &[usize] = if cli.full {
        &[12, 20, 30]
    } else {
        &[7, 12, 20]
    };
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    // workers = 1 runs both cold (the Strategy::Single baseline) and
    // SA-warm-started, decomposing the pipeline's two levers; the parallel
    // rows then sweep both modes up to the `--workers` peak (auto = one per
    // host core).
    let peak = cli.max_workers().max(2);
    let mut counts: Vec<usize> = vec![2, 4.min(peak), peak];
    counts.sort_unstable();
    counts.dedup();
    let mut grid: Vec<(usize, bool, &'static str)> =
        vec![(1, false, "single"), (1, true, "single")];
    for mode in ["racing", "window"] {
        grid.extend(counts.iter().map(|&workers| (workers, true, mode)));
    }

    let mut rows: Vec<AblationRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let base_opts = solve_options(cli.full);
        let mut single_time = f64::NAN;
        let mut single_cost = 0i64;

        for &(workers, warm, mode) in &grid {
            let start = Instant::now();
            let (sa_time, sa_incumbent) = if warm {
                let sa = anneal(
                    &w.arch,
                    &w.tasks,
                    &HeuristicObjective::TokenRotationTime(ring),
                    &SaParams {
                        restarts: 2,
                        iters_per_stage: 150,
                        stages: 30,
                        max_slot: base_opts.max_slot,
                        ..Default::default()
                    },
                );
                (
                    start.elapsed().as_secs_f64(),
                    sa.feasible.then_some(sa.objective),
                )
            } else {
                (0.0, None)
            };
            let opts = SolveOptions {
                strategy: match mode {
                    _ if workers == 1 => Strategy::Single,
                    "window" => Strategy::WindowSearch {
                        workers,
                        deterministic: false,
                    },
                    _ => Strategy::Portfolio {
                        workers,
                        deterministic: false,
                    },
                },
                initial_upper: sa_incumbent,
                ..base_opts.clone()
            };
            let r = Optimizer::new(&w.arch, &w.tasks)
                .with_options(opts)
                .minimize(&objective)
                .unwrap_or_else(|e| panic!("{n} tasks, {workers} {mode} workers: {e}"));
            let total = start.elapsed().as_secs_f64();
            if workers == 1 && !warm {
                single_time = total;
                single_cost = r.cost;
            }
            assert_eq!(
                r.cost, single_cost,
                "{n} tasks: {mode} optimum diverged from the single search"
            );
            let race_wall = total - sa_time;
            let projected = single_time / (sa_time + race_wall / workers as f64);
            let winner = r.workers.iter().position(|w| w.winner);
            eprintln!(
                "{n} tasks, {workers} {mode} worker(s){}: TRT = {} in {total:.2}s \
                 ({sa_time:.2}s SA) — speedup {:.2}x measured, {projected:.2}x \
                 projected at one core/worker",
                if warm { ", warm" } else { ", cold" },
                r.cost,
                single_time / total,
            );
            for report in &r.workers {
                eprintln!("  {report}");
            }
            rows.push(AblationRow {
                instance: w.name.clone(),
                tasks: n,
                mode,
                workers,
                host_cores: optalloc_bench::host_cores(),
                warm,
                cost: r.cost,
                time_s: total,
                sa_time_s: sa_time,
                sa_incumbent,
                solve_calls: r.solve_calls,
                conflicts: r.stats.conflicts,
                decisions: r.stats.decisions,
                winner,
                winner_config: winner.map(|i| r.workers[i].config.clone()),
                speedup_vs_single: single_time / total,
                projected_parallel_speedup: projected,
            });
        }
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    println!("{json}");
    if let Some(path) = &cli.json {
        std::fs::write(path, &json).expect("write json");
        eprintln!("(rows written to {})", path.display());
    }
}
