//! Two-sided shared bound lattice for cooperating minimization searches.
//!
//! PR 1's portfolio shared only the *upper* incumbent bound (an `AtomicI64`
//! tightened with `fetch_min`). That leaves the terminal UNSAT certification
//! serial: every worker re-proves the same lower bound. [`BoundLattice`]
//! pairs the incumbent bound with a certified *lower* bound tightened with
//! `fetch_max`, so any worker's UNSAT proof over `[L, M]` shrinks everyone's
//! remaining window from below.
//!
//! The two sides form a lattice in the order-theoretic sense: `lower` only
//! ever rises, `upper` only ever falls, and both moves are monotone atomic
//! folds — concurrent publications commute, so no ordering between workers
//! is needed for soundness. The optimum (when one exists) always satisfies
//! `lower ≤ opt ≤ upper`; once `lower ≥ upper` the incumbent is proven
//! optimal and the search is over.
//!
//! A worker may observe the lower bound *overtake* the upper bound
//! mid-probe (another worker certified `L > U` while this one was solving a
//! now-stale window). That is not an inconsistency — it simply means the
//! window is exhausted — and every consumer must treat `lower > upper` as
//! "done", never as an error (see the bound-crossing tests).

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared pair of monotone cost bounds (see the module docs).
///
/// `lower` carries *certified* knowledge (UNSAT proofs: no solution cheaper
/// than `lower` exists); `upper` carries *witnessed* knowledge (some worker
/// holds a model of cost `upper`). Reads and writes use relaxed ordering —
/// the bounds are pure optimization hints folded between probes, and every
/// terminal verdict is re-derived from a probe result, not from the lattice.
pub struct BoundLattice {
    lower: AtomicI64,
    upper: AtomicI64,
}

impl std::fmt::Debug for BoundLattice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundLattice")
            .field("lower", &self.lower())
            .field("upper", &self.upper())
            .finish()
    }
}

impl Default for BoundLattice {
    fn default() -> BoundLattice {
        BoundLattice::new()
    }
}

impl BoundLattice {
    /// A lattice with both sides at their vacuous extremes.
    pub fn new() -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(i64::MIN),
            upper: AtomicI64::new(i64::MAX),
        }
    }

    /// A lattice pre-seeded with `lower ≥ lo` and `upper ≤ hi`.
    pub fn with_bounds(lo: i64, hi: i64) -> BoundLattice {
        BoundLattice {
            lower: AtomicI64::new(lo),
            upper: AtomicI64::new(hi),
        }
    }

    /// Certified lower bound: no solution cheaper than this exists.
    pub fn lower(&self) -> i64 {
        self.lower.load(Ordering::Relaxed)
    }

    /// Witnessed upper bound: some worker holds a model this cheap.
    pub fn upper(&self) -> i64 {
        self.upper.load(Ordering::Relaxed)
    }

    /// Both sides, read independently (no cross-side atomicity — callers
    /// must tolerate `lower > upper`, which means "search exhausted").
    pub fn snapshot(&self) -> (i64, i64) {
        (self.lower(), self.upper())
    }

    /// Folds in a certified lower bound (`fetch_max`); returns the lattice
    /// lower bound after the fold.
    pub fn publish_lower(&self, bound: i64) -> i64 {
        self.lower.fetch_max(bound, Ordering::Relaxed).max(bound)
    }

    /// Folds in a witnessed upper bound (`fetch_min`); returns the lattice
    /// upper bound after the fold.
    pub fn publish_upper(&self, bound: i64) -> i64 {
        self.upper.fetch_min(bound, Ordering::Relaxed).min(bound)
    }

    /// True once the window is exhausted: `lower ≥ upper` means the
    /// incumbent (if any) is proven optimal.
    pub fn closed(&self) -> bool {
        self.lower() >= self.upper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn folds_are_monotone() {
        let b = BoundLattice::new();
        assert_eq!(b.publish_lower(3), 3);
        assert_eq!(b.publish_lower(1), 3); // lower never regresses
        assert_eq!(b.publish_upper(10), 10);
        assert_eq!(b.publish_upper(12), 10); // upper never regresses
        assert_eq!(b.snapshot(), (3, 10));
        assert!(!b.closed());
        b.publish_lower(10);
        assert!(b.closed());
    }

    #[test]
    fn crossing_is_terminal_not_fatal() {
        // Another worker certifies L = 9 while we hold an incumbent of 5:
        // can only happen through unsound use OR a stale read, but the
        // lattice itself must stay well-defined and report "closed".
        let b = BoundLattice::with_bounds(9, 5);
        assert!(b.closed());
        assert_eq!(b.snapshot(), (9, 5));
    }

    #[test]
    fn concurrent_folds_commute() {
        let b = Arc::new(BoundLattice::new());
        let handles: Vec<_> = (0..4i64)
            .map(|t| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    for i in 0..1_000 {
                        b.publish_lower(t * 1_000 + i);
                        b.publish_upper(100_000 - (t * 1_000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(b.lower(), 3_999);
        assert_eq!(b.upper(), 96_001);
    }
}
