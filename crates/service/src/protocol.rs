//! The service wire protocol: newline-delimited JSON requests/responses.
//!
//! One request per line, one response per line, in order. The same types
//! back the in-process [`Service::handle`](crate::Service::handle) API and
//! the CLI's `--json` output, so a script driving the TCP server and a
//! script parsing CLI output read the same shape.

use optalloc::{InstanceDelta, Objective};
use optalloc_model::{Allocation, Architecture, TaskSet};
use optalloc_obs::{MetricsSnapshot, PhaseTotals};
use serde::{Deserialize, Serialize};

/// A full allocation instance as submitted to the service. Unlike the
/// benchmark generator's `Workload` it carries no planted allocation — the
/// service never needs one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// The hardware platform.
    pub arch: Architecture,
    /// The application.
    pub tasks: TaskSet,
}

impl Instance {
    /// Structural sanity checks (dangling ids, degenerate timing) — run on
    /// every submission before anything is encoded.
    pub fn validate(&self) -> Result<(), String> {
        self.arch.validate().map_err(|e| e.to_string())?;
        self.tasks.validate()
    }
}

/// One request line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Solve a full instance from scratch (the service may still answer
    /// from the result cache, or warm-start from the previous job).
    Solve {
        /// The instance to allocate.
        instance: Instance,
        /// The objective to minimize.
        objective: Objective,
        /// Per-job wall-clock timeout in milliseconds (`None` = the
        /// service default).
        timeout_ms: Option<u64>,
    },
    /// Re-solve a previously solved instance after a batch of mutations.
    Delta {
        /// Fingerprint (hex, as returned in [`JobResult::fingerprint`]) of
        /// the base instance; `None` = the most recently solved instance.
        base: Option<String>,
        /// Mutations to apply to the base, in order, transactionally.
        ops: Vec<InstanceDelta>,
        /// Objective for the re-solve; `None` = the base job's objective.
        objective: Option<Objective>,
        /// Per-job wall-clock timeout in milliseconds.
        timeout_ms: Option<u64>,
    },
    /// Queue/cache introspection; never enqueued, answered immediately.
    Status,
    /// Snapshot of the service metrics registry (job counters, cache
    /// hit/miss counters, per-job latency histogram); never enqueued,
    /// answered immediately.
    Metrics,
    /// Begin graceful shutdown: drain queued and in-flight jobs, reject
    /// new submissions with [`RejectReason::Draining`].
    Shutdown,
}

/// Why a submission was refused (typed, so clients can distinguish
/// back-pressure from shutdown).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The bounded job queue is full — retry later.
    QueueFull,
    /// The service is draining for shutdown — do not retry here.
    Draining,
}

/// How much prior state the solve reused (mirrors
/// [`optalloc::WarmMode`], plus the cache short-circuit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WarmLabel {
    /// Answered from the result cache; the SAT layer was never touched.
    Cache,
    /// Retained incremental solver with its learned clauses.
    Reused,
    /// Fresh encoding seeded with the previous optimum as a validated hint.
    Seeded,
    /// Nothing reusable; full cold solve.
    Cold,
}

/// Terminal verdict of one job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum JobOutcome {
    /// Proven optimal allocation.
    Optimal {
        /// The minimal objective value.
        cost: i64,
        /// The optimal allocation (in the submitted instance's id space).
        allocation: Allocation,
        /// `true` when a verified optimality certificate backs the result
        /// (retrievable in-process via
        /// [`Service::certificate`](crate::Service::certificate)).
        certified: bool,
    },
    /// No feasible allocation exists (within the requested cost window, if
    /// the job carried one).
    Infeasible,
    /// The per-probe conflict budget ran out before a verdict.
    Budget {
        /// Best feasible cost found before giving up, if any.
        incumbent_cost: Option<i64>,
    },
    /// The job's wall-clock timeout fired (or the job was cancelled).
    Timeout {
        /// Best feasible cost found before the interrupt, if any.
        incumbent_cost: Option<i64>,
    },
    /// The job failed: invalid instance, rejected delta, or an internal
    /// consistency error (failed re-validation or certification).
    Error {
        /// Human-readable description.
        message: String,
    },
}

/// Search-engine counters of one job, summed over every solver the job ran
/// (all zero on a cache hit — the SAT layer was never touched). Guarded by
/// `#[serde(default)]` wherever it is embedded, so result lines written
/// before the engine existed still parse.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSummary {
    /// Literals propagated (clause + PB).
    pub propagations: u64,
    /// Restarts taken under the fixed Luby policy.
    pub restarts_luby: u64,
    /// Restarts taken under the adaptive EMA policy.
    pub restarts_ema: u64,
    /// EMA restarts suppressed by trail-size blocking.
    pub restarts_blocked: u64,
    /// Learned clauses strengthened by in-search vivification.
    pub vivified: u64,
    /// Variables removed by bounded variable elimination.
    #[serde(default)]
    pub elim_vars: u64,
    /// Resolvents added when distributing eliminated variables.
    #[serde(default)]
    pub elim_resolvents: u64,
    /// Eliminated variables restored by melt-on-reuse.
    #[serde(default)]
    pub elim_restored: u64,
    /// Reconstruction-stack depth (live elimination groups) when the job
    /// finished — the extension work a model extraction pays.
    #[serde(default)]
    pub elim_stack_depth: u64,
    /// CORE-tier learned clauses retained when the job finished.
    pub tier_core: u64,
    /// TIER2 learned clauses retained when the job finished.
    pub tier_mid: u64,
    /// LOCAL-tier learned clauses retained when the job finished.
    pub tier_local: u64,
    /// High-water mark of retained learned clauses.
    pub peak_learnts: u64,
}

impl SearchSummary {
    /// Extracts the wire summary from full solver statistics.
    pub fn from_stats(stats: &optalloc::sat::SolverStats) -> SearchSummary {
        SearchSummary {
            propagations: stats.propagations,
            restarts_luby: stats.restarts_luby,
            restarts_ema: stats.restarts_ema,
            restarts_blocked: stats.restarts_blocked,
            vivified: stats.vivified,
            elim_vars: stats.elim_vars,
            elim_resolvents: stats.elim_resolvents,
            elim_restored: stats.elim_restored,
            elim_stack_depth: stats.elim_stack_depth,
            tier_core: stats.tier_core,
            tier_mid: stats.tier_mid,
            tier_local: stats.tier_local,
            peak_learnts: stats.peak_learnts,
        }
    }

    /// Adds every counter of `other` into `self` (tier gauges and the peak
    /// follow [`optalloc::sat::SolverStats::absorb`] semantics: tiers sum,
    /// the peak takes the max).
    pub fn absorb(&mut self, other: &SearchSummary) {
        self.propagations += other.propagations;
        self.restarts_luby += other.restarts_luby;
        self.restarts_ema += other.restarts_ema;
        self.restarts_blocked += other.restarts_blocked;
        self.vivified += other.vivified;
        self.elim_vars += other.elim_vars;
        self.elim_resolvents += other.elim_resolvents;
        self.elim_restored += other.elim_restored;
        self.elim_stack_depth += other.elim_stack_depth;
        self.tier_core += other.tier_core;
        self.tier_mid += other.tier_mid;
        self.tier_local += other.tier_local;
        self.peak_learnts = self.peak_learnts.max(other.peak_learnts);
    }
}

/// The result of one solve or delta job.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Canonical instance fingerprint (hex) — the cache/session key. Pass
    /// it as [`Request::Delta::base`] to mutate this instance later.
    pub fingerprint: String,
    /// Terminal verdict.
    pub outcome: JobOutcome,
    /// `true` when the answer came from the result cache.
    pub cached: bool,
    /// How much prior search state the job reused.
    pub warm: WarmLabel,
    /// `SOLVE` calls the binary search issued (0 on a cache hit).
    pub solve_calls: u32,
    /// CDCL conflicts spent on this job (0 on a cache hit).
    pub conflicts: u64,
    /// Wall-clock time of the job in milliseconds.
    pub solve_ms: u64,
    /// Search-engine counters (restarts by policy, tier sizes,
    /// vivification); all zero on a cache hit.
    #[serde(default)]
    pub search: SearchSummary,
    /// Per-phase wall-time breakdown (encode / search / certify, in ms) —
    /// the span-derived numbers, so they match any trace the job recorded.
    /// All zero on a cache hit.
    #[serde(default)]
    pub phases: PhaseTotals,
}

/// One response line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A completed job.
    Result(JobResult),
    /// The submission was refused before entering the queue.
    Rejected {
        /// Typed refusal cause.
        reason: RejectReason,
    },
    /// The request itself was malformed or referenced unknown state (e.g.
    /// a delta against an unknown fingerprint). Nothing was enqueued.
    Error {
        /// Human-readable description.
        message: String,
    },
    /// Answer to [`Request::Status`].
    Status {
        /// Jobs waiting in the queue.
        queued: usize,
        /// Jobs currently being solved.
        inflight: usize,
        /// `true` once shutdown began.
        draining: bool,
        /// Entries in the result cache.
        cached: usize,
        /// Search-engine counters accumulated over every job the service
        /// solved since startup (cache hits contribute nothing).
        #[serde(default)]
        search: SearchSummary,
        /// Phase-time totals (encode / search / certify, ms) accumulated
        /// over every solved job.
        #[serde(default)]
        phases: PhaseTotals,
    },
    /// Answer to [`Request::Metrics`]: the service registry snapshot.
    Metrics {
        /// Every counter, gauge and histogram the service recorded.
        snapshot: MetricsSnapshot,
    },
    /// Acknowledgement of [`Request::Shutdown`]; the drain has begun.
    ShuttingDown,
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium, Task};

    #[test]
    fn requests_round_trip_through_json_lines() {
        let mut arch = Architecture::new();
        let p0 = arch.push_ecu(Ecu::new("p0"));
        let p1 = arch.push_ecu(Ecu::new("p1"));
        let can = arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
        let mut tasks = TaskSet::new();
        tasks.push(Task::new("a", 50, 50, vec![(p0, 10), (p1, 10)]));
        let req = Request::Solve {
            instance: Instance { arch, tasks },
            objective: Objective::BusLoadPermille(can),
            timeout_ms: Some(5_000),
        };
        let line = serde_json::to_string(&req).unwrap();
        assert!(!line.contains('\n'), "wire format is one line per request");
        let back: Request = serde_json::from_str(&line).unwrap();
        assert_eq!(back, req);

        let delta = Request::Delta {
            base: None,
            ops: vec![InstanceDelta::SetDeadline {
                task: "a".into(),
                deadline: 40,
            }],
            objective: None,
            timeout_ms: None,
        };
        let line = serde_json::to_string(&delta).unwrap();
        assert_eq!(serde_json::from_str::<Request>(&line).unwrap(), delta);
    }

    #[test]
    fn result_lines_without_search_counters_still_parse() {
        // Result lines written before the search engine existed carry no
        // `search` object; `#[serde(default)]` fills in zeros.
        let old = r#"{"fingerprint":"00","outcome":"Infeasible","cached":false,
                      "warm":"Cold","solve_calls":3,"conflicts":17,"solve_ms":5}"#;
        let r: JobResult = serde_json::from_str(old).unwrap();
        assert_eq!(r.conflicts, 17);
        assert_eq!(r.search, SearchSummary::default());
        // And a fully populated line round-trips.
        let mut modern = r.clone();
        modern.search.restarts_ema = 4;
        modern.search.tier_core = 2;
        modern.search.peak_learnts = 99;
        let line = serde_json::to_string(&modern).unwrap();
        assert_eq!(serde_json::from_str::<JobResult>(&line).unwrap(), modern);
    }

    #[test]
    fn responses_round_trip_through_json_lines() {
        for r in [
            Response::Rejected {
                reason: RejectReason::QueueFull,
            },
            Response::Rejected {
                reason: RejectReason::Draining,
            },
            Response::Error {
                message: "unknown base".into(),
            },
            Response::Status {
                queued: 1,
                inflight: 2,
                draining: false,
                cached: 3,
                search: SearchSummary {
                    propagations: 10,
                    restarts_ema: 2,
                    tier_core: 1,
                    ..SearchSummary::default()
                },
                phases: PhaseTotals {
                    encode_ms: 1.5,
                    search_ms: 20.25,
                    certify_ms: 0.0,
                },
            },
            Response::Metrics {
                snapshot: MetricsSnapshot::default(),
            },
            Response::ShuttingDown,
        ] {
            let line = serde_json::to_string(&r).unwrap();
            assert!(!line.contains('\n'));
            assert_eq!(serde_json::from_str::<Response>(&line).unwrap(), r);
        }
    }
}
