//! Stress tests exercising the solver's housekeeping machinery: clause
//! database reduction, arena garbage collection, restarts, and long
//! incremental sessions.

use optalloc_sat::{PbOp, PbTerm, SolveResult, Solver, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_3sat(s: &mut Solver, n_vars: usize, ratio: f64, seed: u64) -> Vec<Var> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars: Vec<Var> = (0..n_vars).map(|_| s.new_var()).collect();
    let n_clauses = (n_vars as f64 * ratio) as usize;
    for _ in 0..n_clauses {
        let mut lits = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = vars[rng.gen_range(0..n_vars)];
            lits.push(v.lit(rng.gen_bool(0.5)));
        }
        s.add_clause(&lits);
    }
    vars
}

#[test]
fn db_reduction_and_gc_preserve_soundness() {
    // A tiny learned-clause cap forces many reduction passes and arena
    // collections during one solve; the verdict must stay correct and the
    // model valid.
    let mut s = Solver::new();
    s.config.first_reduce = 50;
    s.config.reduce_grow = 1.05;
    let _ = random_3sat(&mut s, 120, 4.0, 7);
    let verdict = s.solve(&[]);
    if verdict == SolveResult::Sat {
        s.debug_check_model();
    }
    assert!(s.stats.deleted > 0, "reduction never ran: {:?}", s.stats);
}

#[test]
fn restarts_fire_on_hard_instances() {
    let mut s = Solver::new();
    s.config.restart_unit = 10;
    // Pigeonhole PHP(7,6): needs thousands of conflicts.
    let p: Vec<Vec<Var>> = (0..7)
        .map(|_| (0..6).map(|_| s.new_var()).collect())
        .collect();
    for row in &p {
        let lits: Vec<_> = row.iter().map(|v| v.positive()).collect();
        s.add_clause(&lits);
    }
    #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
    for hole in 0..6 {
        for i in 0..7 {
            for j in (i + 1)..7 {
                s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
            }
        }
    }
    assert_eq!(s.solve(&[]), SolveResult::Unsat);
    assert!(s.stats.restarts > 0);
    assert!(s.stats.conflicts > 100);
}

#[test]
fn long_incremental_session_with_growing_constraints() {
    // Interleave solving and constraint addition many times — the access
    // pattern of the incremental binary search, scaled up.
    let mut s = Solver::new();
    let vars = random_3sat(&mut s, 80, 3.0, 11);
    let mut last_sat = true;
    let mut flips = 0;
    for round in 0..40u64 {
        let a = vars[(round % 7) as usize];
        let verdict = s.solve(&[a.lit(round % 2 == 0)]);
        assert_ne!(verdict, SolveResult::Unknown);
        // Tighten gradually with random PB constraints over a window.
        let lo = (round as usize * 2) % 70;
        let terms: Vec<PbTerm> = vars[lo..lo + 8]
            .iter()
            .map(|v| PbTerm::new(v.positive(), 1))
            .collect();
        s.add_pb(&terms, PbOp::Ge, 2);
        let now_sat = s.solve(&[]) == SolveResult::Sat;
        if now_sat != last_sat {
            flips += 1;
            // Satisfiability can only degrade as constraints accumulate.
            assert!(
                last_sat && !now_sat,
                "UNSAT became SAT after adding constraints"
            );
        }
        last_sat = now_sat;
        if !now_sat {
            break;
        }
        s.debug_check_model();
    }
    assert!(flips <= 1);
}

#[test]
fn phase_saving_keeps_models_stable_across_resolves() {
    let mut s = Solver::new();
    let vars = random_3sat(&mut s, 60, 2.0, 23);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    let first: Vec<bool> = vars.iter().map(|v| s.model_value(v.positive())).collect();
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    let second: Vec<bool> = vars.iter().map(|v| s.model_value(v.positive())).collect();
    // With phase saving and no new constraints the model should rarely
    // change; identical resolves must at minimum stay valid.
    s.debug_check_model();
    let differing = first.iter().zip(&second).filter(|(a, b)| a != b).count();
    assert!(
        differing <= vars.len() / 2,
        "model thrashing: {differing} flips"
    );
}

#[test]
fn hundreds_of_small_incremental_probes() {
    let mut s = Solver::new();
    let x: Vec<Var> = (0..10).map(|_| s.new_var()).collect();
    // x0 + … + x9 = 5
    let terms: Vec<PbTerm> = x.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
    s.add_pb(&terms, PbOp::Eq, 5);
    for round in 0..300u32 {
        let i = (round % 10) as usize;
        let j = ((round / 10) % 10) as usize;
        let verdict = s.solve(&[x[i].positive(), x[j].negative()]);
        if i == j {
            assert_eq!(verdict, SolveResult::Unsat, "round {round}");
        } else {
            assert_eq!(verdict, SolveResult::Sat, "round {round}");
            assert!(s.model_value(x[i].positive()));
            assert!(!s.model_value(x[j].positive()));
            let count = x.iter().filter(|v| s.model_value(v.positive())).count();
            assert_eq!(count, 5);
        }
    }
}

#[test]
fn elimination_churn_over_a_long_incremental_session() {
    // Arena hammer for the inprocessing pass: large random instance with
    // many low-occurrence (hence eliminable) variables, then repeated
    // rounds of re-solving under assumptions and re-adding clauses over
    // *eliminated* variables. Every restore detaches/reallocates stored
    // clauses in the arena while reductions and GC run, so use-after-free
    // or stale-reference bugs in the unsafe clause arena surface here (and
    // under the sanitizer CI job, which runs exactly this test).
    let mut s = Solver::new();
    s.config.first_reduce = 60;
    s.config.reduce_grow = 1.05;
    let vars = random_3sat(&mut s, 200, 2.0, 41);
    let mut rng = SmallRng::seed_from_u64(42);
    assert_eq!(s.solve(&[]), SolveResult::Sat);
    assert!(s.stats.elim_vars > 0, "low-ratio 3-SAT must eliminate vars");
    for round in 0..30u64 {
        // Re-reference a spread of variables, eliminated or not: each
        // eliminated one takes the melt-on-reuse restore path.
        let mut lits = Vec::new();
        for _ in 0..4 {
            let v = vars[rng.gen_range(0..vars.len())];
            lits.push(v.lit(rng.gen_bool(0.5)));
        }
        s.add_clause(&lits);
        let a = vars[rng.gen_range(0..vars.len())];
        let verdict = s.solve(&[a.lit(round % 2 == 0)]);
        assert_ne!(verdict, SolveResult::Unknown);
        if verdict == SolveResult::Sat {
            s.debug_check_model();
        }
        if s.solve(&[]) == SolveResult::Unsat {
            break;
        }
    }
    assert!(s.stats.elim_restored > 0, "no restore was ever exercised");
}

#[test]
fn export_formula_roundtrips_semantics() {
    use optalloc_sat::Formula;
    // Build a mixed instance, export it, re-import, and compare verdicts
    // under a set of assumption probes.
    let mut s = Solver::new();
    let vars = random_3sat(&mut s, 30, 3.5, 99);
    let terms: Vec<PbTerm> = vars[..8]
        .iter()
        .map(|v| PbTerm::new(v.positive(), 1))
        .collect();
    s.add_pb(&terms, PbOp::Ge, 3);
    s.add_clause(&[vars[0].positive()]); // a root-level unit

    let f = s.export_formula();
    let opb = f.to_opb();
    let f2 = Formula::parse_opb(&opb).expect("exported OPB parses");
    let (mut s2, vars2) = f2.into_solver();

    for probe in 0..10u32 {
        let i = (probe % 5) as usize + 1;
        let a1 = vars[i].lit(probe % 2 == 0);
        let a2 = vars2[i].lit(probe % 2 == 0);
        assert_eq!(s.solve(&[a1]), s2.solve(&[a2]), "probe {probe}");
    }
}
