//! # optalloc
//!
//! **SAT-based optimal task and message allocation for distributed
//! real-time systems on hierarchical architectures** — a from-scratch Rust
//! implementation of Metzner, Fränzle, Herde & Stierand, *"An optimal
//! approach to the task allocation problem on hierarchical architectures"*
//! (IPPS 2006).
//!
//! Given an [`Architecture`](optalloc_model::Architecture) (ECUs connected
//! by CAN-style priority buses and token-ring-style TDMA buses, linked by
//! gateway ECUs) and a [`TaskSet`](optalloc_model::TaskSet) (periodic tasks
//! with per-ECU WCETs, deadlines, placement/redundancy restrictions and
//! messages), the [`Optimizer`] finds an allocation of tasks to ECUs and of
//! messages to bus routes that is **provably schedulable** — and, given an
//! [`Objective`], **provably optimal**.
//!
//! The pipeline (paper §3–§5):
//!
//! 1. the schedulability conditions (fixed-point response-time analysis for
//!    tasks, CAN and TDMA buses, with path closures, local deadlines and
//!    jitter propagation on hierarchical topologies) are *encoded* as a
//!    Boolean combination of (non)linear integer constraints;
//! 2. the constraints are rewritten to triplet form, bit-blasted, and
//!    handed to a CDCL solver with pseudo-Boolean constraints;
//! 3. a binary search over the cost variable yields the optimum, optionally
//!    reusing learned clauses across probes (the paper's §7 speedup);
//! 4. the satisfying assignment is decoded into an
//!    [`Allocation`](optalloc_model::Allocation) and **independently
//!    re-validated** by the numeric analysis in `optalloc-analysis`.
//!
//! ## Quick start
//!
//! ```
//! use optalloc::{Objective, Optimizer};
//! use optalloc_model::{Architecture, Ecu, Medium, Task, TaskId, TaskSet};
//!
//! // Two ECUs on a CAN bus.
//! let mut arch = Architecture::new();
//! let p0 = arch.push_ecu(Ecu::new("p0"));
//! let p1 = arch.push_ecu(Ecu::new("p1"));
//! let can = arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
//!
//! // A sensor task feeding a control task.
//! let mut tasks = TaskSet::new();
//! let ctrl = TaskId(1);
//! tasks.push(Task::new("sensor", 50, 50, vec![(p0, 10), (p1, 10)]).sends(ctrl, 4, 25));
//! tasks.push(Task::new("control", 50, 40, vec![(p0, 15), (p1, 15)]));
//!
//! let solution = Optimizer::new(&arch, &tasks)
//!     .minimize(&Objective::BusLoadPermille(can))
//!     .unwrap();
//! // Cheapest bus load: co-locate the pair, nothing crosses the bus.
//! assert_eq!(solution.cost, 0);
//! assert!(solution.solution.report.is_feasible());
//! ```

#![warn(missing_docs)]

mod decode;
mod delta;
mod encode;
mod optimizer;
mod options;

pub use delta::{apply_deltas, CostWindow, DeltaError, InstanceDelta};
pub use encode::objective::ObjectiveError;
pub use optimizer::{AllocationSolution, CertificateReport, OptError, OptimizeReport, Optimizer};
pub use options::{Objective, SolveOptions, Strategy};

// The encoder-optimization switch travels with `SolveOptions`; the
// warm-start engine is constructed from `SolveOptions::minimize_options`
// and driven through `Optimizer::minimize_warm`.
pub use optalloc_intopt::{EncoderOpt, WarmEngine, WarmMode};

// The CDCL search-engine switch (binary watches, tiered DB, restart policy,
// vivification) also travels with `SolveOptions`.
pub use optalloc_intopt::{RestartPolicy, SearchEngine};

// Facade re-exports so downstream users need a single dependency.
pub use optalloc_analysis as analysis;
pub use optalloc_intopt as intopt;
pub use optalloc_model as model;
pub use optalloc_portfolio as portfolio;
pub use optalloc_sat as sat;
