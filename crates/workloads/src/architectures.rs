//! The architectures of the paper's figures: the Figure 1 path-closure
//! example and the hierarchical architectures A, B, C of Figure 2 (§6,
//! Table 4).

use crate::gen::{generate, GenParams, Workload};
use optalloc_model::{
    shortest_route, Allocation, Architecture, Ecu, EcuId, Medium, MessageRoute, Time,
};

/// Figure 1's topology: `k1 = {p1,p2,p3}`, `k2 = {p2,p4}`, `k3 = {p3,p5}`
/// (ECU indices match the figure; `p0` exists but is unconnected).
pub fn figure1() -> Architecture {
    let mut a = Architecture::new();
    for i in 0..=5 {
        a.push_ecu(Ecu::new(format!("p{i}")));
    }
    a.push_medium(Medium::priority(
        "k1",
        vec![EcuId(1), EcuId(2), EcuId(3)],
        1,
        1,
    ));
    a.push_medium(Medium::priority("k2", vec![EcuId(2), EcuId(4)], 1, 1));
    a.push_medium(Medium::priority("k3", vec![EcuId(3), EcuId(5)], 1, 1));
    a
}

/// Which of the paper's Figure 2 architectures to instantiate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Fig2 {
    /// Two 4-ECU token rings joined by one dedicated gateway node (ECU 8),
    /// which hosts no tasks.
    A,
    /// Three 4-ECU token rings chained by two dedicated gateway nodes
    /// (ECUs 12, 13), which host no tasks.
    B,
    /// Two token rings sharing ECU 0 as gateway; all ECUs host tasks.
    C,
}

/// Builds one of Figure 2's architectures. TDMA slot tables are sized by
/// `slot` per member (they become decision variables under the TRT
/// objectives anyway); `per_byte`/`frame_overhead` = 1 tick.
pub fn figure2(which: Fig2, slot: Time) -> Architecture {
    let mut a = Architecture::new();
    let ring = |name: &str, members: Vec<EcuId>| {
        let slots = vec![slot; members.len()];
        Medium::tdma(name, members, slots, 1, 1)
    };
    match which {
        Fig2::A => {
            // ECUs 0..7 host tasks; 8 is the gateway.
            for i in 0..8 {
                a.push_ecu(Ecu::new(format!("p{i}")));
            }
            a.push_ecu(Ecu::new("gw8").gateway_only());
            let lower: Vec<EcuId> = (0..4).map(EcuId).chain([EcuId(8)]).collect();
            let upper: Vec<EcuId> = (4..8).map(EcuId).chain([EcuId(8)]).collect();
            a.push_medium(ring("ring-low", lower));
            a.push_medium(ring("ring-high", upper));
        }
        Fig2::B => {
            // ECUs 0..11 host tasks; 12 and 13 are gateways.
            for i in 0..12 {
                a.push_ecu(Ecu::new(format!("p{i}")));
            }
            a.push_ecu(Ecu::new("gw12").gateway_only());
            a.push_ecu(Ecu::new("gw13").gateway_only());
            let b0: Vec<EcuId> = (0..4).map(EcuId).chain([EcuId(12)]).collect();
            let b1: Vec<EcuId> = (4..8).map(EcuId).chain([EcuId(12), EcuId(13)]).collect();
            let b2: Vec<EcuId> = (8..12).map(EcuId).chain([EcuId(13)]).collect();
            a.push_medium(ring("ring0", b0));
            a.push_medium(ring("ring1", b1));
            a.push_medium(ring("ring2", b2));
        }
        Fig2::C => {
            // The original 8 ECUs, split over two rings with ECU 0 shared
            // as a task-hosting gateway.
            for i in 0..8 {
                a.push_ecu(Ecu::new(format!("p{i}")));
            }
            let lower: Vec<EcuId> = (0..4).map(EcuId).collect();
            let upper: Vec<EcuId> = [EcuId(0)].into_iter().chain((4..8).map(EcuId)).collect();
            a.push_medium(ring("ring-low", lower));
            a.push_medium(ring("ring-high", upper));
        }
    }
    a
}

/// The Table 4 instances: the Tindell-style task set placed on Figure 2's
/// architectures. Task permission sets are remapped onto the task-hosting
/// ECUs of the target architecture; the planted allocation re-routes
/// messages over the (unique) shortest media path.
pub fn table4_workload(which: Fig2, params: &GenParams) -> Workload {
    let n_hosts = match which {
        Fig2::A | Fig2::C => 8,
        Fig2::B => 12,
    };
    let base = generate(&GenParams {
        n_ecus: n_hosts,
        name: format!("{}-arch{:?}", params.name, which),
        ..params.clone()
    });
    let mut arch = figure2(which, 24);
    let mut tasks = base.tasks;

    // Remap: the generator used ECUs 0..n_hosts on one bus; those ids are
    // exactly the task-hosting ECUs of A/B/C, so permission sets carry
    // over unchanged. Slot tables differ, and routes must follow the
    // hierarchical topology.
    let mut planted = Allocation::skeleton(&tasks);
    planted.placement = base.planted.placement.clone();
    for (mid, m) in tasks.messages() {
        let s = planted.ecu_of(mid.sender);
        let r = planted.ecu_of(m.to);
        *route_mut(&mut planted, mid) = shortest_route(&arch, s, r, m.deadline);
    }
    planted.priorities = optalloc_model::deadline_monotonic(&tasks);

    // Planted feasibility on the new topology may need roomier deadlines.
    crate::gen::relax_message_deadlines(&mut arch, &mut tasks, &mut planted);

    Workload {
        name: format!("tindell-arch{which:?}"),
        arch,
        tasks,
        planted,
    }
}

fn route_mut(alloc: &mut Allocation, msg: optalloc_model::MsgId) -> &mut MessageRoute {
    alloc.route_mut(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::path_closures;

    #[test]
    fn figure1_has_five_closures() {
        let arch = figure1();
        assert_eq!(arch.validate(), Ok(()));
        assert_eq!(path_closures(&arch).len(), 5);
    }

    #[test]
    fn figure2_architectures_validate() {
        for which in [Fig2::A, Fig2::B, Fig2::C] {
            let arch = figure2(which, 24);
            assert_eq!(arch.validate(), Ok(()), "{which:?}");
        }
    }

    #[test]
    fn figure2_gateway_structure() {
        let a = figure2(Fig2::A, 24);
        assert_eq!(a.gateways(), vec![EcuId(8)]);
        assert!(!a.ecu(EcuId(8)).hosts_tasks);

        let b = figure2(Fig2::B, 24);
        assert_eq!(b.gateways(), vec![EcuId(12), EcuId(13)]);

        let c = figure2(Fig2::C, 24);
        assert_eq!(c.gateways(), vec![EcuId(0)]);
        assert!(c.ecu(EcuId(0)).hosts_tasks);
    }

    #[test]
    fn shortest_route_crosses_gateways() {
        let b = figure2(Fig2::B, 24);
        // p0 (ring0) → p9 (ring2) must cross both gateways.
        let route = shortest_route(&b, EcuId(0), EcuId(9), 300);
        assert_eq!(route.media.len(), 3);
        assert_eq!(route.local_deadlines.len(), 3);
    }

    #[test]
    fn table4_workloads_are_planted_feasible() {
        let mut params = GenParams::tindell43();
        // Keep the Table 4 witness construction modest in size for tests.
        params.n_tasks = 16;
        params.n_chains = 5;
        params.utilization = 0.35;
        for which in [Fig2::A, Fig2::C] {
            let w = table4_workload(which, &params);
            let report = optalloc_analysis::validate(
                &w.arch,
                &w.tasks,
                &w.planted,
                &optalloc_analysis::AnalysisConfig::default(),
            );
            assert!(report.is_feasible(), "{which:?}: {:?}", report.violations);
        }
    }
}
