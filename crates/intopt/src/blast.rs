//! Bit-blasting triplet form to SAT (paper §5.1, second step).
//!
//! Every integer definition is represented as a little-endian two's
//! complement bit-vector whose width is derived from its inferred interval,
//! so overflow is impossible by construction. Arithmetic triplets become
//! ripple-carry adders and shift-add multipliers (variable×variable products
//! included — the TDMA blocking terms need them); comparisons become
//! comparator chains.
//!
//! Two back-ends are supported, mirroring the paper's discussion:
//!
//! * [`Backend::Cnf`] — every gate is a set of plain clauses (the encoding
//!   the paper argues *against* for carry logic),
//! * [`Backend::PseudoBoolean`] — carry gates and cardinality use compact
//!   pseudo-Boolean constraints, e.g. the full-adder carry as the paper's
//!   `(2·c̄out + x + y + cin ≥ 2) ∧ (2·cout + x̄ + ȳ + c̄in ≥ 2)` pair.
//!
//! Constant bits are folded at every gate, so fixed operands (periods,
//! deadlines, WCET tables) cost nothing.

use crate::expr::{BoolVar, CmpOp, IntVar};
use crate::triplet::{ArithOp, BoolDef, IntDefKind, TripletForm};
use optalloc_sat::{Lit, PbOp, PbTerm, Solver};
use std::collections::HashMap;

/// How arithmetic gates are encoded.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Pure CNF clauses for every gate.
    Cnf,
    /// Pseudo-Boolean constraints where they are more compact (carries,
    /// cardinality, range bounds) — the paper's GOBLIN encoding.
    PseudoBoolean,
}

/// Which encode-and-solve optimization stages run (all default-on).
///
/// Each stage is independently toggleable so ablations can isolate it:
///
/// * `hash_consing` — structural gate cache in the blaster: `and2`, `or2`,
///   `xor2` and the full-adder carry return the existing literal for a
///   repeated subcircuit instead of re-emitting it, plus the algebraic
///   rewrites (`maj(x,x,z) → x`, `maj(x,x̄,z) → z`) the cache lookups enable.
/// * `narrowing` — forward–backward interval tightening on the triplet form
///   ([`crate::TripletForm::optimize`]) and truncation of adder widths to the
///   forward intervals.
/// * `preprocess` — the SAT solver's level-0 input preprocessing (duplicate/
///   subsumed clause removal and self-subsuming resolution) before the first
///   search.
///
/// All stages are deterministic: variable numbering depends only on the
/// encounter order of cache misses, never on hash-map iteration, so the
/// deterministic portfolio/window modes stay bit-stable.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct EncoderOpt {
    /// Structural hashing of gates during bit-blasting.
    pub hash_consing: bool,
    /// Interval narrowing on the triplet form + adder width truncation.
    pub narrowing: bool,
    /// Solver-side level-0 clause preprocessing.
    pub preprocess: bool,
}

impl Default for EncoderOpt {
    fn default() -> EncoderOpt {
        EncoderOpt {
            hash_consing: true,
            narrowing: true,
            preprocess: true,
        }
    }
}

impl EncoderOpt {
    /// All optimization stages disabled (the ablation baseline).
    pub fn none() -> EncoderOpt {
        EncoderOpt {
            hash_consing: false,
            narrowing: false,
            preprocess: false,
        }
    }
}

/// Canonical key of a structurally hashed gate. Operand canonicalization
/// folds the free symmetries: commutative operands sort, XOR inputs are
/// reduced to positive polarity (output polarity compensates), and the
/// self-dual majority flips all inputs when two or more are negated.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum GateKey {
    And(Lit, Lit),
    Xor(Lit, Lit),
    AndMany(Vec<Lit>),
    Maj(Lit, Lit, Lit),
    /// One comparator-chain stage `(x̄ ∧ y) ∨ ((x ↔ y) ∧ prev)`, keyed on
    /// `(x, y, prev)` after canonicalization via
    /// `¬step(x, y, p) = step(y, x, ¬p)`.
    CmpStep(Lit, Lit, Lit),
}

type GateCache = HashMap<GateKey, Lit>;

/// A propositional bit: either a known constant or a solver literal.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Bit {
    Const(bool),
    Lit(Lit),
}

impl Bit {
    fn flip(self) -> Bit {
        match self {
            Bit::Const(b) => Bit::Const(!b),
            Bit::Lit(l) => Bit::Lit(!l),
        }
    }
}

/// A two's complement bit-vector, little-endian; the last bit is the sign.
#[derive(Clone, Debug)]
struct BitVec {
    bits: Vec<Bit>,
}

impl BitVec {
    fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Smallest two's complement width that represents every value in `[lo, hi]`.
fn width_for(lo: i64, hi: i64) -> usize {
    debug_assert!(lo <= hi);
    let mut w = 1;
    while !(-(1i64 << (w - 1)) <= lo && hi < (1i64 << (w - 1))) {
        w += 1;
        assert!(w <= 62, "bit width overflow for range [{lo}, {hi}]");
    }
    w
}

fn const_bitvec(v: i64) -> BitVec {
    let w = width_for(v, v);
    BitVec {
        bits: (0..w).map(|i| Bit::Const(v >> i & 1 == 1)).collect(),
    }
}

/// Result of blasting one [`TripletForm`] into a solver: the mapping from
/// problem variables to solver literals, used for bound constraints and
/// model extraction.
pub struct Blast {
    backend: Backend,
    int_inputs: HashMap<u32, BitVec>,
    bool_inputs: HashMap<u32, Lit>,
    /// Set when an assertion folded to `false` during blasting.
    trivially_unsat: bool,
    true_lit: Option<Lit>,
    /// Structural gate cache (`None` disables hash-consing). Kept for the
    /// blast's lifetime so incremental bound probes share comparator gates
    /// across windows — sound because gate-defining clauses are unguarded.
    cache: Option<GateCache>,
    /// Truncate adder widths to the inferred result intervals.
    narrow: bool,
}

impl Blast {
    /// `true` if an assertion was constant-false (the instance is UNSAT
    /// regardless of the solver).
    pub fn trivially_unsat(&self) -> bool {
        self.trivially_unsat
    }

    /// Reads the model value of an integer input variable after a SAT
    /// verdict. Variables that never occurred in a constraint take their
    /// lower bound.
    pub fn int_value(&self, solver: &Solver, var: IntVar) -> i64 {
        match self.int_inputs.get(&var.id) {
            None => var.lo,
            Some(bv) => {
                let mut v: i64 = 0;
                let w = bv.width();
                for (i, &b) in bv.bits.iter().enumerate() {
                    let set = match b {
                        Bit::Const(c) => c,
                        Bit::Lit(l) => solver.model_value(l),
                    };
                    if set {
                        if i + 1 == w {
                            v -= 1i64 << i;
                        } else {
                            v += 1i64 << i;
                        }
                    }
                }
                v
            }
        }
    }

    /// Reads the model value of a Boolean input variable after a SAT
    /// verdict; variables absent from every constraint read `false`.
    pub fn bool_value(&self, solver: &Solver, var: BoolVar) -> bool {
        self.bool_inputs
            .get(&var.id)
            .map(|&l| solver.model_value(l))
            .unwrap_or(false)
    }

    /// Freezes every solver literal backing `var`'s bit-vector against
    /// variable elimination ([`Solver::freeze_var`]). An incremental prober
    /// re-references these bits on every bounded probe (each
    /// [`Blast::add_guarded_bounds`] call emits fresh clauses over them),
    /// so letting the inprocessing pass eliminate them would force a
    /// restore cycle per window; freezing keeps them resident. Gate outputs
    /// and other inputs stay eligible — the solver's melt-on-reuse restore
    /// reinstates them if a later probe's cache hit resurfaces one.
    pub fn freeze_int_var(&self, solver: &mut Solver, var: IntVar) {
        if let Some(bv) = self.int_inputs.get(&var.id) {
            for &b in &bv.bits {
                if let Bit::Lit(l) = b {
                    solver.freeze_var(l.var());
                }
            }
        }
    }

    /// Adds `guard → (lo ≤ var ≤ hi)` to the solver, for the binary-search
    /// bound constraints (§5.2). The guard is passed as an assumption while
    /// the bound is active.
    pub fn add_guarded_bounds(
        &mut self,
        solver: &mut Solver,
        var: IntVar,
        lo: i64,
        hi: i64,
        guard: Lit,
    ) {
        let bv = match self.int_inputs.get(&var.id) {
            Some(bv) => bv.clone(),
            // The variable occurs in no constraint: bounds on it only
            // matter if they exclude its whole range.
            None => {
                if lo > var.hi || hi < var.lo {
                    solver.add_clause(&[!guard]);
                }
                return;
            }
        };
        let mut g = Gates {
            solver,
            backend: self.backend,
            true_lit: &mut self.true_lit,
            cache: &mut self.cache,
        };
        let ge = g.cmp(CmpOp::Le, &const_bitvec(lo), &bv);
        let le = g.cmp(CmpOp::Le, &bv, &const_bitvec(hi));
        for bit in [ge, le] {
            match bit {
                Bit::Const(true) => {}
                Bit::Const(false) => {
                    solver.add_clause(&[!guard]);
                }
                Bit::Lit(l) => {
                    solver.add_clause(&[!guard, l]);
                }
            }
        }
    }
}

/// Gate construction helpers operating on a solver.
struct Gates<'a> {
    solver: &'a mut Solver,
    backend: Backend,
    true_lit: &'a mut Option<Lit>,
    cache: &'a mut Option<GateCache>,
}

impl Gates<'_> {
    fn fresh(&mut self) -> Lit {
        self.solver.new_var().positive()
    }

    /// A literal constrained to be true (for materializing constants).
    fn true_lit(&mut self) -> Lit {
        if let Some(l) = *self.true_lit {
            return l;
        }
        let l = self.fresh();
        self.solver.add_clause(&[l]);
        *self.true_lit = Some(l);
        l
    }

    fn materialize(&mut self, b: Bit) -> Lit {
        match b {
            Bit::Lit(l) => l,
            Bit::Const(true) => self.true_lit(),
            Bit::Const(false) => !self.true_lit(),
        }
    }

    fn and2(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(false), _) | (_, Bit::Const(false)) => Bit::Const(false),
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x,
            (Bit::Lit(x), Bit::Lit(y)) => {
                if x == y {
                    return Bit::Lit(x);
                }
                if x == !y {
                    return Bit::Const(false);
                }
                let key = GateKey::And(x.min(y), x.max(y));
                if let Some(&g) = self.cache.as_ref().and_then(|c| c.get(&key)) {
                    return Bit::Lit(g);
                }
                let g = self.fresh();
                self.solver.add_clause(&[!g, x]);
                self.solver.add_clause(&[!g, y]);
                self.solver.add_clause(&[g, !x, !y]);
                if let Some(c) = self.cache.as_mut() {
                    c.insert(key, g);
                }
                Bit::Lit(g)
            }
        }
    }

    fn or2(&mut self, a: Bit, b: Bit) -> Bit {
        self.and2(a.flip(), b.flip()).flip()
    }

    fn xor2(&mut self, a: Bit, b: Bit) -> Bit {
        match (a, b) {
            (Bit::Const(x), Bit::Const(y)) => Bit::Const(x ^ y),
            (Bit::Const(false), x) | (x, Bit::Const(false)) => x,
            (Bit::Const(true), x) | (x, Bit::Const(true)) => x.flip(),
            (Bit::Lit(x), Bit::Lit(y)) => {
                if x == y {
                    return Bit::Const(false);
                }
                if x == !y {
                    return Bit::Const(true);
                }
                if self.cache.is_some() {
                    // Canonicalize to positive inputs: x ⊕ y, x̄ ⊕ y, x ⊕ ȳ
                    // and x̄ ⊕ ȳ all share one gate, the output polarity
                    // absorbs the input signs.
                    let parity = x.is_negative() ^ y.is_negative();
                    let (px, py) = (x.var().positive(), y.var().positive());
                    let key = GateKey::Xor(px.min(py), px.max(py));
                    let g = match self.cache.as_ref().and_then(|c| c.get(&key)) {
                        Some(&g) => g,
                        None => {
                            let g = self.fresh();
                            self.solver.add_clause(&[!g, px, py]);
                            self.solver.add_clause(&[!g, !px, !py]);
                            self.solver.add_clause(&[g, !px, py]);
                            self.solver.add_clause(&[g, px, !py]);
                            self.cache.as_mut().unwrap().insert(key, g);
                            g
                        }
                    };
                    return Bit::Lit(if parity { !g } else { g });
                }
                let g = self.fresh();
                self.solver.add_clause(&[!g, x, y]);
                self.solver.add_clause(&[!g, !x, !y]);
                self.solver.add_clause(&[g, !x, y]);
                self.solver.add_clause(&[g, x, !y]);
                Bit::Lit(g)
            }
        }
    }

    fn iff2(&mut self, a: Bit, b: Bit) -> Bit {
        self.xor2(a, b).flip()
    }

    fn and_many(&mut self, bits: &[Bit]) -> Bit {
        let mut lits = Vec::with_capacity(bits.len());
        for &b in bits {
            match b {
                Bit::Const(false) => return Bit::Const(false),
                Bit::Const(true) => {}
                Bit::Lit(l) => lits.push(l),
            }
        }
        lits.sort_unstable();
        lits.dedup();
        if lits.windows(2).any(|w| w[0] == !w[1]) {
            return Bit::Const(false);
        }
        match lits.len() {
            0 => Bit::Const(true),
            1 => Bit::Lit(lits[0]),
            // Binary conjunctions share the and2 cache entry.
            2 if self.cache.is_some() => self.and2(Bit::Lit(lits[0]), Bit::Lit(lits[1])),
            _ => {
                let key = GateKey::AndMany(lits.clone());
                if let Some(&g) = self.cache.as_ref().and_then(|c| c.get(&key)) {
                    return Bit::Lit(g);
                }
                let g = self.fresh();
                for &l in &lits {
                    self.solver.add_clause(&[!g, l]);
                }
                let mut long: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                long.push(g);
                self.solver.add_clause(&long);
                if let Some(c) = self.cache.as_mut() {
                    c.insert(key, g);
                }
                Bit::Lit(g)
            }
        }
    }

    fn or_many(&mut self, bits: &[Bit]) -> Bit {
        let flipped: Vec<Bit> = bits.iter().map(|b| b.flip()).collect();
        self.and_many(&flipped).flip()
    }

    /// Full adder: returns `(sum, carry_out)`.
    fn full_adder(&mut self, a: Bit, b: Bit, cin: Bit) -> (Bit, Bit) {
        let t = self.xor2(a, b);
        let sum = self.xor2(t, cin);
        let cout = match (a, b, cin) {
            // With any constant input the carry reduces to AND/OR.
            (Bit::Const(false), x, y) | (x, Bit::Const(false), y) | (x, y, Bit::Const(false)) => {
                self.and2(x, y)
            }
            (Bit::Const(true), x, y) | (x, Bit::Const(true), y) | (x, y, Bit::Const(true)) => {
                self.or2(x, y)
            }
            (Bit::Lit(x), Bit::Lit(y), Bit::Lit(z)) if self.cache.is_some() => self.maj3(x, y, z),
            (Bit::Lit(x), Bit::Lit(y), Bit::Lit(z)) => {
                let g = self.fresh();
                match self.backend {
                    Backend::PseudoBoolean => {
                        // The paper's compact majority encoding.
                        self.solver.add_pb(
                            &[
                                PbTerm::new(!g, 2),
                                PbTerm::new(x, 1),
                                PbTerm::new(y, 1),
                                PbTerm::new(z, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                        self.solver.add_pb(
                            &[
                                PbTerm::new(g, 2),
                                PbTerm::new(!x, 1),
                                PbTerm::new(!y, 1),
                                PbTerm::new(!z, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                    }
                    Backend::Cnf => {
                        self.solver.add_clause(&[!x, !y, g]);
                        self.solver.add_clause(&[!x, !z, g]);
                        self.solver.add_clause(&[!y, !z, g]);
                        self.solver.add_clause(&[x, y, !g]);
                        self.solver.add_clause(&[x, z, !g]);
                        self.solver.add_clause(&[y, z, !g]);
                    }
                }
                Bit::Lit(g)
            }
        };
        (sum, cout)
    }

    /// Hash-consed majority gate for the full-adder carry. Applies the
    /// algebraic rewrites `maj(x, x, z) = x` and `maj(x, x̄, z) = z`, then
    /// canonicalizes via the self-duality `maj(x̄, ȳ, z̄) = ¬maj(x, y, z)`
    /// (flip all inputs when at least two are negated, so at most one
    /// canonical input carries a sign) and sorts the operands.
    fn maj3(&mut self, x: Lit, y: Lit, z: Lit) -> Bit {
        for (a, b, c) in [(x, y, z), (x, z, y), (y, z, x)] {
            if a == b {
                return Bit::Lit(a);
            }
            if a == !b {
                return Bit::Lit(c);
            }
        }
        let negs = [x, y, z].iter().filter(|l| l.is_negative()).count();
        let flip = negs >= 2;
        let mut lits = if flip { [!x, !y, !z] } else { [x, y, z] };
        lits.sort_unstable();
        let [a, b, c] = lits;
        let key = GateKey::Maj(a, b, c);
        let g = match self.cache.as_ref().and_then(|m| m.get(&key)) {
            Some(&g) => g,
            None => {
                let g = self.fresh();
                match self.backend {
                    Backend::PseudoBoolean => {
                        self.solver.add_pb(
                            &[
                                PbTerm::new(!g, 2),
                                PbTerm::new(a, 1),
                                PbTerm::new(b, 1),
                                PbTerm::new(c, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                        self.solver.add_pb(
                            &[
                                PbTerm::new(g, 2),
                                PbTerm::new(!a, 1),
                                PbTerm::new(!b, 1),
                                PbTerm::new(!c, 1),
                            ],
                            PbOp::Ge,
                            2,
                        );
                    }
                    Backend::Cnf => {
                        self.solver.add_clause(&[!a, !b, g]);
                        self.solver.add_clause(&[!a, !c, g]);
                        self.solver.add_clause(&[!b, !c, g]);
                        self.solver.add_clause(&[a, b, !g]);
                        self.solver.add_clause(&[a, c, !g]);
                        self.solver.add_clause(&[b, c, !g]);
                    }
                }
                self.cache.as_mut().unwrap().insert(key, g);
                g
            }
        };
        Bit::Lit(if flip { !g } else { g })
    }

    /// One stage of the unsigned comparator chain:
    /// `step(x, y, prev) = (x̄ ∧ y) ∨ ((x ↔ y) ∧ prev)` — "strictly below at
    /// this bit, or equal here and already ≤/< on the lower bits". Encoded
    /// as a single six-clause mux gate with **one** auxiliary variable,
    /// replacing the four gates (`lt`, `eq`, `keep`, `or`) of the naive
    /// expansion. Constant operands fold to binary gates; the identity
    /// `¬step(x, y, p) = step(y, x, ¬p)` canonicalizes the cache key so a
    /// comparison and its converse share one gate.
    fn cmp_step(&mut self, x: Bit, y: Bit, prev: Bit) -> Bit {
        match (x, y, prev) {
            // A constant bit reduces the mux to a binary gate:
            // x = 0 → y ∨ p; x = 1 → y ∧ p; y = 0 → x̄ ∧ p; y = 1 → x̄ ∨ p;
            // p = 0 → x̄ ∧ y (strictly-less here); p = 1 → x̄ ∨ y (≤ here).
            (Bit::Const(false), y, p) => self.or2(y, p),
            (Bit::Const(true), y, p) => self.and2(y, p),
            (x, Bit::Const(false), p) => self.and2(x.flip(), p),
            (x, Bit::Const(true), p) => self.or2(x.flip(), p),
            (x, y, Bit::Const(false)) => self.and2(x.flip(), y),
            (x, y, Bit::Const(true)) => self.or2(x.flip(), y),
            (Bit::Lit(x), Bit::Lit(y), Bit::Lit(p)) => {
                if x == y {
                    // Equal bits: the verdict comes from below.
                    return Bit::Lit(p);
                }
                if x == !y {
                    // Unequal bits: x̄ ∧ y = x̄ decides outright.
                    return Bit::Lit(!x);
                }
                let (cx, cy, cp, flip) = if x < y {
                    (x, y, p, false)
                } else {
                    (y, x, !p, true)
                };
                let key = GateKey::CmpStep(cx, cy, cp);
                let g = match self.cache.as_ref().and_then(|c| c.get(&key)) {
                    Some(&g) => g,
                    None => {
                        let g = self.fresh();
                        // cx=0, cy=1 forces g; cx=1, cy=0 forbids it; equal
                        // bits pass cp through.
                        self.solver.add_clause(&[cx, !cy, g]);
                        self.solver.add_clause(&[!cx, cy, !g]);
                        self.solver.add_clause(&[cx, cy, !cp, g]);
                        self.solver.add_clause(&[cx, cy, cp, !g]);
                        self.solver.add_clause(&[!cx, !cy, !cp, g]);
                        self.solver.add_clause(&[!cx, !cy, cp, !g]);
                        if let Some(c) = self.cache.as_mut() {
                            c.insert(key, g);
                        }
                        g
                    }
                };
                Bit::Lit(if flip { !g } else { g })
            }
        }
    }

    /// Sign-extends to exactly `w` bits.
    fn sext(&self, bv: &BitVec, w: usize) -> BitVec {
        debug_assert!(w >= bv.width());
        let sign = *bv.bits.last().unwrap();
        let mut bits = bv.bits.clone();
        bits.resize(w, sign);
        BitVec { bits }
    }

    /// `a + b`, widened so the result is exact.
    fn add(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let w = a.width().max(b.width()) + 1;
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        self.ripple(&a.bits, &b.bits, Bit::Const(false))
    }

    /// `a - b`, widened so the result is exact (`a + ¬b + 1`).
    fn sub(&mut self, a: &BitVec, b: &BitVec) -> BitVec {
        let w = a.width().max(b.width()) + 1;
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        let nb: Vec<Bit> = b.bits.iter().map(|x| x.flip()).collect();
        self.ripple(&a.bits, &nb, Bit::Const(true))
    }

    /// Sign-extends or truncates to exactly `w` bits. Truncation is the
    /// low-bits slice: two's complement arithmetic mod `2^w` is exact
    /// whenever the true result fits in `w` bits.
    fn fit(&self, bv: &BitVec, w: usize) -> BitVec {
        if bv.width() > w {
            BitVec {
                bits: bv.bits[..w].to_vec(),
            }
        } else {
            self.sext(bv, w)
        }
    }

    /// `a + b` truncated to the width of its inferred interval `[lo, hi]`.
    /// Sound because `[lo, hi]` bounds the true sum in every admitted
    /// assignment, so the dropped high bits never carry information.
    fn add_narrow(&mut self, a: &BitVec, b: &BitVec, lo: i64, hi: i64) -> BitVec {
        let w = width_for(lo, hi);
        let (a, b) = (self.fit(a, w), self.fit(b, w));
        self.ripple(&a.bits, &b.bits, Bit::Const(false))
    }

    /// `a - b` truncated like [`Gates::add_narrow`].
    fn sub_narrow(&mut self, a: &BitVec, b: &BitVec, lo: i64, hi: i64) -> BitVec {
        let w = width_for(lo, hi);
        let (a, b) = (self.fit(a, w), self.fit(b, w));
        let nb: Vec<Bit> = b.bits.iter().map(|x| x.flip()).collect();
        self.ripple(&a.bits, &nb, Bit::Const(true))
    }

    /// Ripple-carry addition over equal-width inputs, truncating the final
    /// carry (callers guarantee the width holds the result).
    fn ripple(&mut self, a: &[Bit], b: &[Bit], mut carry: Bit) -> BitVec {
        debug_assert_eq!(a.len(), b.len());
        let mut bits = Vec::with_capacity(a.len());
        for i in 0..a.len() {
            let (s, c) = self.full_adder(a[i], b[i], carry);
            bits.push(s);
            carry = c;
        }
        BitVec { bits }
    }

    /// `a * b` via shift-and-add, truncated to a width that is exact for the
    /// given result range.
    fn mul(&mut self, a: &BitVec, b: &BitVec, lo: i64, hi: i64) -> BitVec {
        let w = width_for(lo, hi);
        let a = self.sext(a, w.max(a.width()));
        let b = self.sext(b, w.max(b.width()));
        // Truncated two's complement multiply: with both operands extended
        // to ≥ w bits, the low w bits of the product equal the true product
        // whenever it fits in w bits — which the range guarantees.
        let mut acc: Vec<Bit> = vec![Bit::Const(false); w];
        for j in 0..w {
            let bj = b.bits[j.min(b.width() - 1)];
            if bj == Bit::Const(false) {
                continue;
            }
            // addend = (a << j) & bj, truncated to w bits.
            let mut addend: Vec<Bit> = Vec::with_capacity(w);
            for i in 0..w {
                let bit = if i < j {
                    Bit::Const(false)
                } else {
                    let ai = a.bits[(i - j).min(a.width() - 1)];
                    self.and2(ai, bj)
                };
                addend.push(bit);
            }
            acc = self.ripple(&acc, &addend, Bit::Const(false)).bits;
        }
        BitVec { bits: acc }
    }

    /// Comparison `a ∼ b` over signed bit-vectors, returning one bit.
    fn cmp(&mut self, op: CmpOp, a: &BitVec, b: &BitVec) -> Bit {
        let w = a.width().max(b.width());
        let (a, b) = (self.sext(a, w), self.sext(b, w));
        match op {
            CmpOp::Eq => {
                let per_bit: Vec<Bit> = (0..w).map(|i| self.iff2(a.bits[i], b.bits[i])).collect();
                self.and_many(&per_bit)
            }
            CmpOp::Le | CmpOp::Lt => {
                // Flip sign bits to reduce signed to unsigned comparison.
                let mut x = a.bits.clone();
                let mut y = b.bits.clone();
                x[w - 1] = x[w - 1].flip();
                y[w - 1] = y[w - 1].flip();
                let mut acc = Bit::Const(op == CmpOp::Le);
                if self.cache.is_some() {
                    // Optimized chain: one mux gate per bit (see cmp_step).
                    for i in 0..w {
                        acc = self.cmp_step(x[i], y[i], acc);
                    }
                    return acc;
                }
                for i in 0..w {
                    let lt = self.and2(x[i].flip(), y[i]);
                    let eq = self.iff2(x[i], y[i]);
                    let keep = self.and2(eq, acc);
                    acc = self.or2(lt, keep);
                }
                acc
            }
        }
    }
}

/// Encodes a triplet form into `solver` using the chosen backend and the
/// default optimization stages. See [`blast_with`].
pub fn blast(
    form: &TripletForm,
    decls: &[(i64, i64)],
    solver: &mut Solver,
    backend: Backend,
) -> Blast {
    blast_with(form, decls, solver, backend, &EncoderOpt::default())
}

/// Encodes a triplet form into `solver` using the chosen backend and
/// [`EncoderOpt`] stages.
///
/// Returns the [`Blast`] mapping for bound injection and model extraction.
pub fn blast_with(
    form: &TripletForm,
    decls: &[(i64, i64)],
    solver: &mut Solver,
    backend: Backend,
    opt: &EncoderOpt,
) -> Blast {
    let mut out = Blast {
        backend,
        int_inputs: HashMap::new(),
        bool_inputs: HashMap::new(),
        trivially_unsat: false,
        true_lit: None,
        cache: opt.hash_consing.then(GateCache::new),
        narrow: opt.narrowing,
    };
    if form.infeasible() {
        out.trivially_unsat = true;
        return out;
    }
    let mut int_bits: Vec<Option<BitVec>> = vec![None; form.ints.len()];
    let mut bool_bits: Vec<Option<Bit>> = vec![None; form.bools.len()];

    // Integer definitions, in topological order.
    for (idx, def) in form.ints.iter().enumerate() {
        let bv = match &def.kind {
            IntDefKind::Const(v) => const_bitvec(*v),
            IntDefKind::Input(decl) => {
                let (lo, hi) = decls[*decl as usize];
                let bv = fresh_input(&mut out, solver, backend, lo, hi);
                out.int_inputs.insert(*decl, bv.clone());
                bv
            }
            IntDefKind::Op(op, a, b) => {
                let (a, b) = (
                    int_bits[*a as usize].clone().unwrap(),
                    int_bits[*b as usize].clone().unwrap(),
                );
                let narrow = out.narrow;
                let mut g = Gates {
                    solver,
                    backend,
                    true_lit: &mut out.true_lit,
                    cache: &mut out.cache,
                };
                match op {
                    ArithOp::Add if narrow => g.add_narrow(&a, &b, def.lo, def.hi),
                    ArithOp::Sub if narrow => g.sub_narrow(&a, &b, def.lo, def.hi),
                    ArithOp::Add => g.add(&a, &b),
                    ArithOp::Sub => g.sub(&a, &b),
                    ArithOp::Mul => g.mul(&a, &b, def.lo, def.hi),
                }
            }
        };
        int_bits[idx] = Some(bv);
    }

    // Boolean definitions.
    for (idx, def) in form.bools.iter().enumerate() {
        let bit = {
            let mut g = Gates {
                solver,
                backend,
                true_lit: &mut out.true_lit,
                cache: &mut out.cache,
            };
            match def {
                BoolDef::Const(b) => Bit::Const(*b),
                BoolDef::Input(decl) => {
                    let l = *out
                        .bool_inputs
                        .entry(*decl)
                        .or_insert_with(|| solver.new_var().positive());
                    Bit::Lit(l)
                }
                BoolDef::Cmp(op, a, b) => {
                    let (a, b) = (
                        int_bits[*a as usize].clone().unwrap(),
                        int_bits[*b as usize].clone().unwrap(),
                    );
                    g.cmp(*op, &a, &b)
                }
                BoolDef::Not(a) => bool_bits[*a as usize].unwrap().flip(),
                BoolDef::And(ids) => {
                    let bits: Vec<Bit> = ids
                        .iter()
                        .map(|&i| bool_bits[i as usize].unwrap())
                        .collect();
                    g.and_many(&bits)
                }
                BoolDef::Or(ids) => {
                    let bits: Vec<Bit> = ids
                        .iter()
                        .map(|&i| bool_bits[i as usize].unwrap())
                        .collect();
                    g.or_many(&bits)
                }
                BoolDef::Iff(a, b) => {
                    let (x, y) = (
                        bool_bits[*a as usize].unwrap(),
                        bool_bits[*b as usize].unwrap(),
                    );
                    g.iff2(x, y)
                }
            }
        };
        bool_bits[idx] = Some(bit);
    }

    // Root assertions.
    for &root in &form.asserts {
        match bool_bits[root as usize].unwrap() {
            Bit::Const(true) => {}
            Bit::Const(false) => out.trivially_unsat = true,
            Bit::Lit(l) => {
                solver.add_clause(&[l]);
            }
        }
    }

    // Direct PB assertions over Boolean definitions.
    for (terms, op, bound) in &form.pb_asserts {
        let mut g = Gates {
            solver,
            backend,
            true_lit: &mut out.true_lit,
            cache: &mut out.cache,
        };
        let pb_terms: Vec<PbTerm> = terms
            .iter()
            .map(|&(id, coef)| {
                let bit = bool_bits[id as usize].unwrap();
                let l = g.materialize(bit);
                PbTerm::new(l, coef)
            })
            .collect();
        if !solver.add_pb(&pb_terms, *op, *bound) {
            out.trivially_unsat = true;
        }
    }

    out
}

/// Allocates fresh bits for an input variable with range `[lo, hi]` and adds
/// its range constraints.
fn fresh_input(out: &mut Blast, solver: &mut Solver, backend: Backend, lo: i64, hi: i64) -> BitVec {
    if lo == hi {
        return const_bitvec(lo);
    }
    let w = width_for(lo, hi);
    let mut bits: Vec<Bit> = Vec::with_capacity(w);
    if lo >= 0 {
        // Non-negative: fresh value bits, constant-zero sign bit.
        for _ in 0..w - 1 {
            bits.push(Bit::Lit(solver.new_var().positive()));
        }
        bits.push(Bit::Const(false));
    } else {
        for _ in 0..w {
            bits.push(Bit::Lit(solver.new_var().positive()));
        }
    }
    let bv = BitVec { bits };
    // Range constraints (skip bounds that the width already enforces).
    let need_lo = lo > -(1i64 << (w - 1)) && lo != 0;
    let need_hi = hi < (1i64 << (w - 1)) - 1;
    match backend {
        Backend::PseudoBoolean => {
            let mut terms: Vec<PbTerm> = Vec::new();
            for (i, &b) in bv.bits.iter().enumerate() {
                if let Bit::Lit(l) = b {
                    let coef = if i + 1 == w { -(1i64 << i) } else { 1i64 << i };
                    terms.push(PbTerm::new(l, coef));
                }
            }
            if need_lo {
                solver.add_pb(&terms, PbOp::Ge, lo);
            }
            if need_hi {
                solver.add_pb(&terms, PbOp::Le, hi);
            }
        }
        Backend::Cnf => {
            let mut g = Gates {
                solver,
                backend,
                true_lit: &mut out.true_lit,
                cache: &mut out.cache,
            };
            if need_lo {
                let ok = g.cmp(CmpOp::Le, &const_bitvec(lo), &bv);
                let l = g.materialize(ok);
                g.solver.add_clause(&[l]);
            }
            if need_hi {
                let ok = g.cmp(CmpOp::Le, &bv, &const_bitvec(hi));
                let l = g.materialize(ok);
                g.solver.add_clause(&[l]);
            }
        }
    }
    bv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_for_ranges() {
        assert_eq!(width_for(0, 0), 1);
        assert_eq!(width_for(0, 1), 2);
        assert_eq!(width_for(-1, 0), 1);
        assert_eq!(width_for(-2, 1), 2);
        assert_eq!(width_for(0, 127), 8);
        assert_eq!(width_for(0, 128), 9);
        assert_eq!(width_for(-128, 127), 8);
    }

    #[test]
    fn hash_consing_reuses_gates() {
        let mut solver = Solver::new();
        let mut tl = None;
        let mut cache = Some(GateCache::new());
        let mut g = Gates {
            solver: &mut solver,
            backend: Backend::Cnf,
            true_lit: &mut tl,
            cache: &mut cache,
        };
        let x = g.fresh();
        let y = g.fresh();
        let a1 = g.and2(Bit::Lit(x), Bit::Lit(y));
        let a2 = g.and2(Bit::Lit(y), Bit::Lit(x));
        assert_eq!(a1, a2, "commuted and2 must hit the cache");
        // or2(x̄, ȳ) = ¬and2(x, y): shares the same gate.
        let o = g.or2(Bit::Lit(!x), Bit::Lit(!y));
        assert_eq!(o, a1.flip());
        // XOR polarity canonicalization: all four sign combinations share
        // one gate, with the output sign absorbing the input signs.
        let x1 = g.xor2(Bit::Lit(x), Bit::Lit(y));
        let x2 = g.xor2(Bit::Lit(!x), Bit::Lit(y));
        let x3 = g.xor2(Bit::Lit(!x), Bit::Lit(!y));
        assert_eq!(x2, x1.flip());
        assert_eq!(x3, x1);
        let before = g.solver.num_vars();
        let x4 = g.xor2(Bit::Lit(y), Bit::Lit(!x));
        assert_eq!(x4, x1.flip());
        assert_eq!(g.solver.num_vars(), before, "cache hit allocated a var");
    }

    #[test]
    fn majority_rewrites_and_self_duality() {
        let mut solver = Solver::new();
        let mut tl = None;
        let mut cache = Some(GateCache::new());
        let mut g = Gates {
            solver: &mut solver,
            backend: Backend::Cnf,
            true_lit: &mut tl,
            cache: &mut cache,
        };
        let x = g.fresh();
        let y = g.fresh();
        let z = g.fresh();
        assert_eq!(g.maj3(x, x, z), Bit::Lit(x));
        assert_eq!(g.maj3(x, !x, z), Bit::Lit(z));
        let m = g.maj3(x, y, z);
        // maj(x̄, ȳ, z̄) = ¬maj(x, y, z) via the flip canonicalization.
        assert_eq!(g.maj3(!x, !y, !z), m.flip());
        // Any permutation hits the same entry.
        assert_eq!(g.maj3(z, x, y), m);
    }

    #[test]
    fn narrowed_addition_truncates_but_stays_exact() {
        use crate::expr::IntVar;
        // x + y with x, y ∈ [0, 200] but the sum asserted ≤ 9: the narrowed
        // encoding uses 5-bit adders yet must agree with the wide one.
        for opt in [EncoderOpt::none(), EncoderOpt::default()] {
            let x = IntVar {
                id: 0,
                lo: 0,
                hi: 200,
            };
            let y = IntVar {
                id: 1,
                lo: 0,
                hi: 200,
            };
            let sum = x.expr() + y.expr();
            let mut tf = TripletForm::new();
            tf.assert(&sum.le(9));
            tf.assert(&sum.ge(9));
            tf.assert(&x.expr().ge(4));
            let mut decls = vec![(0, 200), (0, 200)];
            if opt.narrowing {
                tf.optimize(&mut decls);
            }
            let mut solver = Solver::new();
            let bl = blast_with(&tf, &decls, &mut solver, Backend::Cnf, &opt);
            assert!(!bl.trivially_unsat());
            assert!(matches!(solver.solve(&[]), optalloc_sat::SolveResult::Sat));
            let xv = bl.int_value(&solver, x);
            let yv = bl.int_value(&solver, y);
            assert_eq!(xv + yv, 9, "opt {opt:?}");
            assert!((4..=9).contains(&xv), "opt {opt:?}: x = {xv}");
        }
    }

    #[test]
    fn mux_comparator_agrees_with_naive_chain() {
        use crate::expr::IntVar;
        // Exhaustive check of the single-gate-per-bit comparator: for every
        // (a, b) pair the optimized chain must decide a ≤ b and a < b
        // exactly like the unoptimized one. Narrowing is off so the Cmp
        // runs over real literal bit-vectors, not folded constants.
        let gates_only = EncoderOpt {
            hash_consing: true,
            narrowing: false,
            preprocess: false,
        };
        for a in -3i64..=4 {
            for b in -3i64..=4 {
                for op in [CmpOp::Le, CmpOp::Lt] {
                    let x = IntVar {
                        id: 0,
                        lo: -3,
                        hi: 4,
                    };
                    let y = IntVar {
                        id: 1,
                        lo: -3,
                        hi: 4,
                    };
                    let expected = match op {
                        CmpOp::Le => a <= b,
                        CmpOp::Lt => a < b,
                        CmpOp::Eq => unreachable!(),
                    };
                    for opt in [EncoderOpt::none(), gates_only] {
                        let mut tf = TripletForm::new();
                        tf.assert(&x.expr().eq(a));
                        tf.assert(&y.expr().eq(b));
                        let cmp = match op {
                            CmpOp::Le => x.expr().le(y.expr()),
                            CmpOp::Lt => x.expr().lt(y.expr()),
                            CmpOp::Eq => unreachable!(),
                        };
                        tf.assert(&cmp);
                        let mut solver = Solver::new();
                        let bl =
                            blast_with(&tf, &[(-3, 4), (-3, 4)], &mut solver, Backend::Cnf, &opt);
                        let sat = !bl.trivially_unsat()
                            && matches!(solver.solve(&[]), optalloc_sat::SolveResult::Sat);
                        assert_eq!(
                            sat, expected,
                            "{a} {op:?} {b} with {opt:?}: expected {expected}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn infeasible_form_blasts_to_trivially_unsat() {
        use crate::expr::IntVar;
        let x = IntVar {
            id: 0,
            lo: 0,
            hi: 9,
        };
        let mut tf = TripletForm::new();
        tf.assert(&x.expr().ge(5));
        tf.assert(&x.expr().lt(5));
        let mut decls = vec![(0, 9)];
        tf.optimize(&mut decls);
        let mut solver = Solver::new();
        let bl = blast_with(
            &tf,
            &decls,
            &mut solver,
            Backend::Cnf,
            &EncoderOpt::default(),
        );
        assert!(bl.trivially_unsat());
    }

    #[test]
    fn const_bitvec_roundtrip() {
        for v in [-5i64, -1, 0, 1, 6, 100] {
            let bv = const_bitvec(v);
            let mut got = 0i64;
            let w = bv.width();
            for (i, b) in bv.bits.iter().enumerate() {
                if let Bit::Const(true) = b {
                    if i + 1 == w {
                        got -= 1 << i;
                    } else {
                        got += 1 << i;
                    }
                }
            }
            assert_eq!(got, v, "roundtrip of {v}");
        }
    }
}
