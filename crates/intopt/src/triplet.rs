//! Rewriting to *triplet form* (paper §5.1).
//!
//! The paper's first reduction step introduces helper variables so that the
//! whole constraint system becomes a conjunction of "triplets": definitions
//! with at most three variables, at most one binary operator and exactly one
//! relational operator. This mirrors Tseitin's linear-time CNF transformation
//! and makes the subsequent bit-blasting local.
//!
//! We additionally *intern* definitions: structurally identical
//! subexpressions map to the same helper variable (common-subexpression
//! elimination), which matters because the allocation encoding reuses
//! response-time terms across many constraints.
//!
//! Ranges of helper integer variables are inferred bottom-up by interval
//! arithmetic, exactly as the paper infers "appropriate ranges … from the
//! ranges of the subexpressions".

use crate::bounds::Interval;
use crate::expr::{BoolExpr, BoolNode, CmpOp, IntExpr, IntNode};
use std::collections::HashMap;

/// Interval arithmetic for one operator (the bottom-up direction), on the
/// exact [`Interval`] algebra from `bounds`.
fn op_interval(op: ArithOp, (al, ah): (i64, i64), (bl, bh): (i64, i64)) -> (i64, i64) {
    let (a, b) = (Interval::new(al, ah), Interval::new(bl, bh));
    let r = match op {
        ArithOp::Add => a.add(b),
        ArithOp::Sub => a.sub(b),
        ArithOp::Mul => a.mul(b),
    };
    (r.lo, r.hi)
}

/// Decides a comparison from operand intervals alone, if possible.
fn decide_cmp(op: CmpOp, (al, ah): (i64, i64), (bl, bh): (i64, i64)) -> Option<bool> {
    match op {
        CmpOp::Le => {
            if ah <= bl {
                Some(true)
            } else if al > bh {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Lt => {
            if ah < bl {
                Some(true)
            } else if al >= bh {
                Some(false)
            } else {
                None
            }
        }
        CmpOp::Eq => {
            if al == ah && bl == bh && al == bl {
                Some(true)
            } else if ah < bl || bh < al {
                Some(false)
            } else {
                None
            }
        }
    }
}

/// Index of an integer definition in a [`TripletForm`].
pub type IntId = u32;
/// Index of a Boolean definition in a [`TripletForm`].
pub type BoolId = u32;
/// A direct pseudo-Boolean constraint in triplet form: `(terms, op,
/// bound)` with terms `(bool id, coefficient)`.
pub type TripletPb = (Vec<(BoolId, i64)>, optalloc_sat::PbOp, i64);

/// Arithmetic operator of an integer triplet.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// One integer definition `[e] = …` in triplet form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IntDefKind {
    /// A problem input variable (by declaration id).
    Input(u32),
    /// A constant.
    Const(i64),
    /// `[e] = [a] ⊗ [b]`.
    Op(ArithOp, IntId, IntId),
}

/// An integer definition with its inferred interval.
#[derive(Clone, Debug)]
pub struct IntDef {
    /// What this helper variable is defined as.
    pub kind: IntDefKind,
    /// Inferred inclusive lower bound.
    pub lo: i64,
    /// Inferred inclusive upper bound.
    pub hi: i64,
}

/// One Boolean definition `[φ] ⇔ …` in triplet form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BoolDef {
    /// A problem input variable (by declaration id).
    Input(u32),
    /// A constant.
    Const(bool),
    /// `[φ] ⇔ [a] ∼ [b]` over integer definitions.
    Cmp(CmpOp, IntId, IntId),
    /// `[φ] ⇔ ¬[a]`.
    Not(BoolId),
    /// `[φ] ⇔ ⋀ᵢ [aᵢ]`.
    And(Vec<BoolId>),
    /// `[φ] ⇔ ⋁ᵢ [aᵢ]`.
    Or(Vec<BoolId>),
    /// `[φ] ⇔ ([a] ⇔ [b])`.
    Iff(BoolId, BoolId),
}

/// The result of triplet rewriting: interned, topologically ordered
/// definitions plus the ids of asserted root formulas.
#[derive(Default)]
pub struct TripletForm {
    /// Integer definitions; children always precede parents.
    pub ints: Vec<IntDef>,
    /// Boolean definitions; children always precede parents.
    pub bools: Vec<BoolDef>,
    /// Root formulas asserted to hold.
    pub asserts: Vec<BoolId>,
    /// Direct pseudo-Boolean constraints over Boolean definitions:
    /// `(terms, op, bound)` with terms `(bool id, coefficient)`.
    pub pb_asserts: Vec<TripletPb>,

    int_intern: HashMap<IntDefKind, IntId>,
    bool_intern: HashMap<BoolDef, BoolId>,
    infeasible: bool,
}

impl TripletForm {
    /// Creates an empty form.
    pub fn new() -> TripletForm {
        TripletForm::default()
    }

    /// Total number of triplet definitions (the paper's helper variables).
    pub fn len(&self) -> usize {
        self.ints.len() + self.bools.len()
    }

    /// `true` when no definitions exist.
    pub fn is_empty(&self) -> bool {
        self.ints.is_empty() && self.bools.is_empty()
    }

    fn intern_int(&mut self, kind: IntDefKind, lo: i64, hi: i64) -> IntId {
        if let Some(&id) = self.int_intern.get(&kind) {
            return id;
        }
        let id = self.ints.len() as IntId;
        self.int_intern.insert(kind.clone(), id);
        self.ints.push(IntDef { kind, lo, hi });
        id
    }

    fn intern_bool(&mut self, def: BoolDef) -> BoolId {
        if let Some(&id) = self.bool_intern.get(&def) {
            return id;
        }
        let id = self.bools.len() as BoolId;
        self.bool_intern.insert(def.clone(), id);
        self.bools.push(def);
        id
    }

    /// Flattens an integer expression, returning its definition id.
    pub fn flatten_int(&mut self, e: &IntExpr) -> IntId {
        match e.node() {
            IntNode::Const(v) => self.intern_int(IntDefKind::Const(*v), *v, *v),
            IntNode::Var(v) => self.intern_int(IntDefKind::Input(v.id), v.lo, v.hi),
            IntNode::Add(a, b) => self.flatten_op(ArithOp::Add, a, b),
            IntNode::Sub(a, b) => self.flatten_op(ArithOp::Sub, a, b),
            IntNode::Mul(a, b) => self.flatten_op(ArithOp::Mul, a, b),
        }
    }

    fn flatten_op(&mut self, op: ArithOp, a: &IntExpr, b: &IntExpr) -> IntId {
        let ia = self.flatten_int(a);
        let ib = self.flatten_int(b);
        // Constant folding keeps the form small.
        if let (IntDefKind::Const(x), IntDefKind::Const(y)) =
            (&self.ints[ia as usize].kind, &self.ints[ib as usize].kind)
        {
            let v = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
            };
            return self.intern_int(IntDefKind::Const(v), v, v);
        }
        let ra = (self.ints[ia as usize].lo, self.ints[ia as usize].hi);
        let rb = (self.ints[ib as usize].lo, self.ints[ib as usize].hi);
        let (lo, hi) = op_interval(op, ra, rb);
        self.intern_int(IntDefKind::Op(op, ia, ib), lo, hi)
    }

    /// Flattens a Boolean expression, returning its definition id.
    pub fn flatten_bool(&mut self, e: &BoolExpr) -> BoolId {
        match e.node() {
            BoolNode::Const(b) => self.intern_bool(BoolDef::Const(*b)),
            BoolNode::Var(v) => self.intern_bool(BoolDef::Input(v.id)),
            BoolNode::Cmp(op, a, b) => {
                let ia = self.flatten_int(a);
                let ib = self.flatten_int(b);
                // Fold comparisons decidable from ranges alone.
                let ra = (self.ints[ia as usize].lo, self.ints[ia as usize].hi);
                let rb = (self.ints[ib as usize].lo, self.ints[ib as usize].hi);
                match decide_cmp(*op, ra, rb) {
                    Some(b) => self.intern_bool(BoolDef::Const(b)),
                    None => self.intern_bool(BoolDef::Cmp(*op, ia, ib)),
                }
            }
            BoolNode::Not(a) => {
                let ia = self.flatten_bool(a);
                if let BoolDef::Const(b) = self.bools[ia as usize] {
                    return self.intern_bool(BoolDef::Const(!b));
                }
                self.intern_bool(BoolDef::Not(ia))
            }
            BoolNode::And(items) => {
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    let id = self.flatten_bool(item);
                    match self.bools[id as usize] {
                        BoolDef::Const(true) => {}
                        BoolDef::Const(false) => return self.intern_bool(BoolDef::Const(false)),
                        _ => ids.push(id),
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                match ids.len() {
                    0 => self.intern_bool(BoolDef::Const(true)),
                    1 => ids[0],
                    _ => self.intern_bool(BoolDef::And(ids)),
                }
            }
            BoolNode::Or(items) => {
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    let id = self.flatten_bool(item);
                    match self.bools[id as usize] {
                        BoolDef::Const(false) => {}
                        BoolDef::Const(true) => return self.intern_bool(BoolDef::Const(true)),
                        _ => ids.push(id),
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                match ids.len() {
                    0 => self.intern_bool(BoolDef::Const(false)),
                    1 => ids[0],
                    _ => self.intern_bool(BoolDef::Or(ids)),
                }
            }
            BoolNode::Iff(a, b) => {
                let ia = self.flatten_bool(a);
                let ib = self.flatten_bool(b);
                match (&self.bools[ia as usize], &self.bools[ib as usize]) {
                    (BoolDef::Const(x), BoolDef::Const(y)) => {
                        let v = x == y;
                        self.intern_bool(BoolDef::Const(v))
                    }
                    (BoolDef::Const(true), _) => ib,
                    (_, BoolDef::Const(true)) => ia,
                    (BoolDef::Const(false), _) => self.intern_bool(BoolDef::Not(ib)),
                    (_, BoolDef::Const(false)) => self.intern_bool(BoolDef::Not(ia)),
                    _ if ia == ib => self.intern_bool(BoolDef::Const(true)),
                    _ => {
                        let (x, y) = (ia.min(ib), ia.max(ib));
                        self.intern_bool(BoolDef::Iff(x, y))
                    }
                }
            }
        }
    }

    /// Flattens and asserts a root formula.
    pub fn assert(&mut self, e: &BoolExpr) {
        // Top-level conjunctions split into independent assertions, which
        // lets the blaster emit plain clauses instead of Tseitin gates.
        if let BoolNode::And(items) = e.node() {
            for item in items {
                self.assert(item);
            }
            return;
        }
        let id = self.flatten_bool(e);
        self.asserts.push(id);
    }

    /// Asserts a pseudo-Boolean constraint directly over Boolean expressions.
    pub fn assert_pb(&mut self, terms: &[(BoolExpr, i64)], op: optalloc_sat::PbOp, bound: i64) {
        let flat: Vec<(BoolId, i64)> = terms
            .iter()
            .map(|(e, c)| (self.flatten_bool(e), *c))
            .collect();
        self.pb_asserts.push((flat, op, bound));
    }

    /// `true` when narrowing proved the form unsatisfiable (some required
    /// interval became empty). The blaster short-circuits to UNSAT.
    pub fn infeasible(&self) -> bool {
        self.infeasible
    }

    /// Forward–backward interval tightening plus dead-definition elimination
    /// (the "narrowing" stage of `EncoderOpt`).
    ///
    /// Root-asserted comparisons imply bounds on their operands; those bounds
    /// propagate *backward* through `+`/`-` definitions down to the input
    /// declarations in `decls`, which are tightened in place. Because the
    /// blaster *asserts* every input range, a tightened declaration is sound:
    /// the implied bound is a consequence of the constraints, so no model is
    /// lost, and every model still satisfies it. Definition intervals are then
    /// recomputed bottom-up from the narrowed declarations — only these
    /// forward intervals are safe for bit-width truncation, since a
    /// backward-implied interval on an intermediate term does not bound the
    /// term's value in arbitrary (e.g. guard-relaxed) assignments.
    ///
    /// After narrowing, comparisons decided by the new ranges fold to
    /// constants and definitions feeding no assertion are swept. Input
    /// definitions always stay live so windowed bound probes keep their
    /// variables materialized.
    pub fn optimize(&mut self, decls: &mut [(i64, i64)]) {
        if self.infeasible {
            return;
        }
        if !self.narrow(decls) {
            self.infeasible = true;
            return;
        }
        self.fold_decided_cmps();
        self.sweep();
    }

    /// Root-level comparison facts: `(op, a, b, positive)` for every
    /// comparison the assertions force to hold (or to be violated).
    fn root_facts(&self) -> Vec<(CmpOp, IntId, IntId, bool)> {
        let mut facts = Vec::new();
        let mut stack: Vec<(BoolId, bool)> = self.asserts.iter().map(|&r| (r, true)).collect();
        while let Some((id, pos)) = stack.pop() {
            match &self.bools[id as usize] {
                BoolDef::Cmp(op, a, b) => facts.push((*op, *a, *b, pos)),
                BoolDef::Not(x) => stack.push((*x, !pos)),
                // An asserted conjunction forces every member; a refuted
                // disjunction refutes every member.
                BoolDef::And(ids) if pos => stack.extend(ids.iter().map(|&i| (i, true))),
                BoolDef::Or(ids) if !pos => stack.extend(ids.iter().map(|&i| (i, false))),
                _ => {}
            }
        }
        facts
    }

    /// Runs the interval fixpoint; returns `false` on an empty interval
    /// (the form is unsatisfiable). See [`TripletForm::optimize`].
    fn narrow(&mut self, decls: &mut [(i64, i64)]) -> bool {
        let n = self.ints.len();
        // Implied intervals, seeded with the bottom-up inference. Candidate
        // bounds are computed in i128 so extreme ranges cannot overflow.
        let mut imp: Vec<(i64, i64)> = self.ints.iter().map(|d| (d.lo, d.hi)).collect();
        fn clip(imp: &mut [(i64, i64)], i: usize, lo: i128, hi: i128) -> Option<bool> {
            let cur = imp[i];
            let lo = lo.max(cur.0 as i128);
            let hi = hi.min(cur.1 as i128);
            if lo > hi {
                return None;
            }
            let next = (lo as i64, hi as i64);
            let changed = next != cur;
            imp[i] = next;
            Some(changed)
        }
        let facts = self.root_facts();
        for _pass in 0..4 {
            let mut changed = false;
            macro_rules! clip_or_fail {
                ($i:expr, $lo:expr, $hi:expr) => {
                    match clip(&mut imp, $i, $lo, $hi) {
                        None => return false,
                        Some(c) => changed |= c,
                    }
                };
            }
            // Asserted comparisons bound their operands.
            for &(op, a, b, pos) in &facts {
                let (a, b) = (a as usize, b as usize);
                match (op, pos) {
                    (CmpOp::Le, true) => {
                        let hi = imp[b].1 as i128;
                        clip_or_fail!(a, i128::MIN, hi);
                        let lo = imp[a].0 as i128;
                        clip_or_fail!(b, lo, i128::MAX);
                    }
                    (CmpOp::Lt, true) => {
                        let hi = imp[b].1 as i128 - 1;
                        clip_or_fail!(a, i128::MIN, hi);
                        let lo = imp[a].0 as i128 + 1;
                        clip_or_fail!(b, lo, i128::MAX);
                    }
                    (CmpOp::Eq, true) => {
                        let (lo, hi) = (imp[b].0 as i128, imp[b].1 as i128);
                        clip_or_fail!(a, lo, hi);
                        let (lo, hi) = (imp[a].0 as i128, imp[a].1 as i128);
                        clip_or_fail!(b, lo, hi);
                    }
                    // ¬(a ≤ b) ⇔ b < a and ¬(a < b) ⇔ b ≤ a.
                    (CmpOp::Le, false) => {
                        let lo = imp[b].0 as i128 + 1;
                        clip_or_fail!(a, lo, i128::MAX);
                        let hi = imp[a].1 as i128 - 1;
                        clip_or_fail!(b, i128::MIN, hi);
                    }
                    (CmpOp::Lt, false) => {
                        let lo = imp[b].0 as i128;
                        clip_or_fail!(a, lo, i128::MAX);
                        let hi = imp[a].1 as i128;
                        clip_or_fail!(b, i128::MIN, hi);
                    }
                    (CmpOp::Eq, false) => {}
                }
            }
            // Backward through arithmetic: a parent's interval bounds its
            // children (`c = a + b` implies `a ∈ [c.lo - b.hi, c.hi - b.lo]`).
            for idx in (0..n).rev() {
                if let IntDefKind::Op(op, a, b) = self.ints[idx].kind {
                    let (a, b) = (a as usize, b as usize);
                    let c = (imp[idx].0 as i128, imp[idx].1 as i128);
                    let ia = (imp[a].0 as i128, imp[a].1 as i128);
                    let ib = (imp[b].0 as i128, imp[b].1 as i128);
                    match op {
                        ArithOp::Add => {
                            clip_or_fail!(a, c.0 - ib.1, c.1 - ib.0);
                            clip_or_fail!(b, c.0 - ia.1, c.1 - ia.0);
                        }
                        ArithOp::Sub => {
                            clip_or_fail!(a, c.0 + ib.0, c.1 + ib.1);
                            clip_or_fail!(b, ia.0 - c.1, ia.1 - c.0);
                        }
                        // Division-free backward rules for products are not
                        // worth their edge cases; skip.
                        ArithOp::Mul => {}
                    }
                }
            }
            // Forward sweep: recompute bottom-up and intersect.
            for idx in 0..n {
                match self.ints[idx].kind {
                    IntDefKind::Input(d) => {
                        let (lo, hi) = decls[d as usize];
                        clip_or_fail!(idx, lo as i128, hi as i128);
                        // Adopt implied input bounds into the declaration;
                        // the blaster asserts them, which is what makes every
                        // other use of the narrowed intervals sound.
                        decls[d as usize] = imp[idx];
                    }
                    IntDefKind::Const(v) => clip_or_fail!(idx, v as i128, v as i128),
                    IntDefKind::Op(op, a, b) => {
                        let (lo, hi) = op_interval(op, imp[a as usize], imp[b as usize]);
                        clip_or_fail!(idx, lo as i128, hi as i128);
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Final intervals: forward-only from the narrowed declarations, in
        // topological order. These bound the value of each definition in
        // *every* assignment the encoding admits, so the blaster may truncate
        // adder widths to them.
        for idx in 0..n {
            let (lo, hi) = match self.ints[idx].kind {
                IntDefKind::Input(d) => decls[d as usize],
                IntDefKind::Const(v) => (v, v),
                IntDefKind::Op(op, a, b) => {
                    let a = &self.ints[a as usize];
                    let b = &self.ints[b as usize];
                    op_interval(op, (a.lo, a.hi), (b.lo, b.hi))
                }
            };
            if lo > hi {
                return false;
            }
            self.ints[idx].lo = lo;
            self.ints[idx].hi = hi;
        }
        true
    }

    /// Replaces comparisons decided by the (narrowed, asserted) operand
    /// ranges with constants. Sound because every admitted assignment keeps
    /// each operand inside its forward interval.
    fn fold_decided_cmps(&mut self) {
        for i in 0..self.bools.len() {
            if let BoolDef::Cmp(op, a, b) = self.bools[i] {
                let a = &self.ints[a as usize];
                let b = &self.ints[b as usize];
                if let Some(v) = decide_cmp(op, (a.lo, a.hi), (b.lo, b.hi)) {
                    self.bools[i] = BoolDef::Const(v);
                }
            }
        }
    }

    /// Dead-definition elimination: drops definitions that feed no assertion.
    /// Input definitions always survive, so the blaster's variable tables —
    /// and with them windowed bound probes and model extraction — are
    /// unaffected. Invalidates the intern maps; call only on finalized forms.
    fn sweep(&mut self) {
        let (ni, nb) = (self.ints.len(), self.bools.len());
        let mut live_i = vec![false; ni];
        let mut live_b = vec![false; nb];
        for &r in &self.asserts {
            live_b[r as usize] = true;
        }
        for (terms, _, _) in &self.pb_asserts {
            for &(id, _) in terms {
                live_b[id as usize] = true;
            }
        }
        for (i, d) in self.ints.iter().enumerate() {
            if matches!(d.kind, IntDefKind::Input(_)) {
                live_i[i] = true;
            }
        }
        for (i, d) in self.bools.iter().enumerate() {
            if matches!(d, BoolDef::Input(_)) {
                live_b[i] = true;
            }
        }
        // Children precede parents, so one reverse pass closes liveness.
        for i in (0..nb).rev() {
            if !live_b[i] {
                continue;
            }
            match &self.bools[i] {
                BoolDef::Cmp(_, a, b) => {
                    live_i[*a as usize] = true;
                    live_i[*b as usize] = true;
                }
                BoolDef::Not(a) => live_b[*a as usize] = true,
                BoolDef::And(v) | BoolDef::Or(v) => {
                    for &a in v {
                        live_b[a as usize] = true;
                    }
                }
                BoolDef::Iff(a, b) => {
                    live_b[*a as usize] = true;
                    live_b[*b as usize] = true;
                }
                BoolDef::Input(_) | BoolDef::Const(_) => {}
            }
        }
        for i in (0..ni).rev() {
            if live_i[i] {
                if let IntDefKind::Op(_, a, b) = self.ints[i].kind {
                    live_i[a as usize] = true;
                    live_i[b as usize] = true;
                }
            }
        }
        if live_i.iter().all(|&l| l) && live_b.iter().all(|&l| l) {
            return;
        }
        // Compact and remap.
        let mut imap = vec![u32::MAX; ni];
        let mut bmap = vec![u32::MAX; nb];
        let mut ints = Vec::with_capacity(ni);
        for (i, d) in self.ints.drain(..).enumerate() {
            if live_i[i] {
                imap[i] = ints.len() as u32;
                ints.push(d);
            }
        }
        let mut bools = Vec::with_capacity(nb);
        for (i, d) in self.bools.drain(..).enumerate() {
            if live_b[i] {
                bmap[i] = bools.len() as u32;
                bools.push(d);
            }
        }
        for d in &mut ints {
            if let IntDefKind::Op(_, a, b) = &mut d.kind {
                *a = imap[*a as usize];
                *b = imap[*b as usize];
            }
        }
        for d in &mut bools {
            match d {
                BoolDef::Cmp(_, a, b) => {
                    *a = imap[*a as usize];
                    *b = imap[*b as usize];
                }
                BoolDef::Not(a) => *a = bmap[*a as usize],
                BoolDef::And(v) | BoolDef::Or(v) => {
                    for a in v {
                        *a = bmap[*a as usize];
                    }
                }
                BoolDef::Iff(a, b) => {
                    *a = bmap[*a as usize];
                    *b = bmap[*b as usize];
                }
                BoolDef::Input(_) | BoolDef::Const(_) => {}
            }
        }
        for r in &mut self.asserts {
            *r = bmap[*r as usize];
        }
        for (terms, _, _) in &mut self.pb_asserts {
            for (id, _) in terms {
                *id = bmap[*id as usize];
            }
        }
        self.ints = ints;
        self.bools = bools;
        self.int_intern.clear();
        self.bool_intern.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BoolVar, IntVar};

    fn ivar(id: u32, lo: i64, hi: i64) -> IntVar {
        IntVar { id, lo, hi }
    }

    #[test]
    fn shared_subexpressions_are_interned_once() {
        let x = ivar(0, 0, 10).expr();
        let y = ivar(1, 0, 10).expr();
        let shared = &x + &y;
        let mut tf = TripletForm::new();
        tf.assert(&(&shared * 2).ge(5));
        tf.assert(&(&shared * 3).le(20));
        // x, y, x+y, 2, 3, (x+y)*2, (x+y)*3, 5, 20 → exactly one Add node.
        let adds = tf
            .ints
            .iter()
            .filter(|d| matches!(d.kind, IntDefKind::Op(ArithOp::Add, _, _)))
            .count();
        assert_eq!(adds, 1);
        assert_eq!(tf.asserts.len(), 2);
    }

    #[test]
    fn constant_folding_in_int_ops() {
        let mut tf = TripletForm::new();
        let e = IntExpr::constant(3) * 4 + 5;
        let id = tf.flatten_int(&e);
        assert_eq!(tf.ints[id as usize].kind, IntDefKind::Const(17));
    }

    #[test]
    fn range_decided_comparisons_fold() {
        let x = ivar(0, 0, 3).expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_bool(&x.le(10));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
        let id2 = tf.flatten_bool(&x.ge(4));
        assert_eq!(tf.bools[id2 as usize], BoolDef::Const(false));
    }

    #[test]
    fn and_or_simplification() {
        let p = BoolVar { id: 0 }.expr();
        let mut tf = TripletForm::new();
        let t = BoolExpr::constant(true);
        let f = BoolExpr::constant(false);
        let id = tf.flatten_bool(&p.and(&t));
        assert_eq!(tf.bools[id as usize], BoolDef::Input(0));
        let id = tf.flatten_bool(&p.and(&f));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(false));
        let id = tf.flatten_bool(&p.or(&t));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
        let id = tf.flatten_bool(&p.or(&f));
        assert_eq!(tf.bools[id as usize], BoolDef::Input(0));
    }

    #[test]
    fn iff_with_same_operand_is_true() {
        let p = BoolVar { id: 0 }.expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_bool(&p.iff(&p));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
    }

    #[test]
    fn top_level_conjunction_splits() {
        let p = BoolVar { id: 0 }.expr();
        let q = BoolVar { id: 1 }.expr();
        let mut tf = TripletForm::new();
        tf.assert(&p.and(&q));
        assert_eq!(tf.asserts.len(), 2);
    }

    #[test]
    fn inferred_ranges_propagate() {
        let x = ivar(0, 2, 5).expr();
        let y = ivar(1, -1, 3).expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_int(&(&x * &y - 7));
        let d = &tf.ints[id as usize];
        assert_eq!((d.lo, d.hi), (-5 - 7, 5 * 3 - 7));
    }

    #[test]
    fn narrowing_tightens_input_declarations() {
        // x ∈ [0, 100] with x ≥ 40 and x + y ≤ 50, y ∈ [0, 100]:
        // narrowing must derive x ∈ [40, 50] and y ∈ [0, 10].
        let x = ivar(0, 0, 100).expr();
        let y = ivar(1, 0, 100).expr();
        let mut tf = TripletForm::new();
        tf.assert(&x.ge(40));
        tf.assert(&(&x + &y).le(50));
        let mut decls = vec![(0, 100), (0, 100)];
        tf.optimize(&mut decls);
        assert!(!tf.infeasible());
        assert_eq!(decls[0], (40, 50));
        assert_eq!(decls[1], (0, 10));
        // Definition intervals are the forward recomputation.
        for d in &tf.ints {
            if let IntDefKind::Op(ArithOp::Add, _, _) = d.kind {
                assert_eq!((d.lo, d.hi), (40, 60));
            }
        }
    }

    #[test]
    fn narrowing_through_subtraction_and_negated_cmp() {
        // z = x - y with z ≤ 5 asserted, plus ¬(x ≤ 20) ⇒ x ≥ 21.
        let x = ivar(0, 0, 100).expr();
        let y = ivar(1, 0, 100).expr();
        let mut tf = TripletForm::new();
        tf.assert(&(&x - &y).le(5));
        tf.assert(&x.le(20).not());
        let mut decls = vec![(0, 100), (0, 100)];
        tf.optimize(&mut decls);
        assert!(!tf.infeasible());
        assert_eq!(decls[0], (21, 100));
        // x - y ≤ 5 with x ≥ 21 forces y ≥ 16.
        assert_eq!(decls[1], (16, 100));
    }

    #[test]
    fn narrowing_detects_empty_intervals() {
        let x = ivar(0, 0, 10).expr();
        let mut tf = TripletForm::new();
        tf.assert(&x.ge(4));
        tf.assert(&x.lt(4));
        let mut decls = vec![(0, 10)];
        tf.optimize(&mut decls);
        assert!(tf.infeasible());
    }

    #[test]
    fn sweep_drops_dead_definitions_but_keeps_inputs() {
        let x = ivar(0, 0, 10).expr();
        let y = ivar(1, 0, 10).expr();
        // (x * y) is flattened but never asserted; x ≤ 5 is the only root.
        let mut tf = TripletForm::new();
        tf.flatten_int(&(&x * &y));
        tf.assert(&x.le(5));
        let mut decls = vec![(0, 10), (0, 10)];
        tf.optimize(&mut decls);
        assert!(tf
            .ints
            .iter()
            .all(|d| !matches!(d.kind, IntDefKind::Op(ArithOp::Mul, _, _))));
        // Both inputs survive even though y is now unused.
        let inputs: Vec<u32> = tf
            .ints
            .iter()
            .filter_map(|d| match d.kind {
                IntDefKind::Input(i) => Some(i),
                _ => None,
            })
            .collect();
        assert_eq!(inputs, vec![0, 1]);
        // Remapped ids stay in-bounds and children precede parents.
        for (i, d) in tf.ints.iter().enumerate() {
            if let IntDefKind::Op(_, a, b) = d.kind {
                assert!((a as usize) < i && (b as usize) < i);
            }
        }
        for r in &tf.asserts {
            assert!((*r as usize) < tf.bools.len());
        }
    }

    #[test]
    fn narrowing_folds_newly_decided_comparisons() {
        // With x narrowed to [8, 10] by the first assert, x ≥ 3 becomes
        // decidable and folds away, leaving nothing but the inputs.
        let x = ivar(0, 0, 10).expr();
        let mut tf = TripletForm::new();
        tf.assert(&x.ge(8));
        tf.assert(&x.ge(3));
        let mut decls = vec![(0, 10)];
        tf.optimize(&mut decls);
        assert!(!tf.infeasible());
        assert_eq!(decls[0], (8, 10));
        let cmps = tf
            .bools
            .iter()
            .filter(|d| matches!(d, BoolDef::Cmp(..)))
            .count();
        // Both comparisons are implied by the narrowed declaration: the
        // asserted roots fold to constants.
        assert_eq!(cmps, 0);
    }

    #[test]
    fn children_precede_parents() {
        let x = ivar(0, 0, 7).expr();
        let y = ivar(1, 0, 7).expr();
        let mut tf = TripletForm::new();
        tf.assert(&((&x + &y) * (&x - &y)).eq(0));
        for (i, d) in tf.ints.iter().enumerate() {
            if let IntDefKind::Op(_, a, b) = d.kind {
                assert!((a as usize) < i && (b as usize) < i);
            }
        }
        for (i, d) in tf.bools.iter().enumerate() {
            match d {
                BoolDef::Not(a) => assert!((*a as usize) < i),
                BoolDef::And(v) | BoolDef::Or(v) => {
                    v.iter().for_each(|&a| assert!((a as usize) < i))
                }
                BoolDef::Iff(a, b) => assert!((*a as usize) < i && (*b as usize) < i),
                _ => {}
            }
        }
    }
}
