//! # optalloc-sat
//!
//! A conflict-driven clause-learning (CDCL) SAT solver with **native
//! pseudo-Boolean constraints**, built as the solver substrate for the
//! SAT-based task-allocation system of Metzner, Fränzle, Herde & Stierand,
//! *"An optimal approach to the task allocation problem on hierarchical
//! architectures"* (IPPS 2006). It plays the role the GOBLIN pseudo-Boolean
//! engine plays in the paper (§5.1).
//!
//! The solver accepts a conjunction of
//! - **clauses** — disjunctions of literals, and
//! - **pseudo-Boolean constraints** — linear inequalities `Σ aᵢ·lᵢ ⋈ k`
//!   over literals (`⋈ ∈ {≥, ≤, =}`),
//!
//! and decides satisfiability with full clause learning. Solving **under
//! assumptions** retains every learned clause across calls, which the
//! optimization layer exploits to make the paper's binary search incremental
//! (the §7 "reuse of derived facts" extension).
//!
//! ## Example
//!
//! ```
//! use optalloc_sat::{Solver, SolveResult, PbTerm, PbOp};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! let c = solver.new_var();
//!
//! // Exactly one of a, b, c …
//! let one_of = [
//!     PbTerm::new(a.positive(), 1),
//!     PbTerm::new(b.positive(), 1),
//!     PbTerm::new(c.positive(), 1),
//! ];
//! solver.add_pb(&one_of, PbOp::Eq, 1);
//! // … and it is not a.
//! solver.add_clause(&[a.negative()]);
//!
//! assert_eq!(solver.solve(&[]), SolveResult::Sat);
//! assert!(!solver.model_value(a.positive()));
//! assert!(solver.model_value(b.positive()) ^ solver.model_value(c.positive()));
//! ```

#![warn(missing_docs)]

mod clause;
mod drat;
mod exchange;
mod formula;
mod heap;
mod pb;
mod solver;
mod types;

pub use drat::{check_proof, CheckError, CheckedProof, ProofLog, ProofStep};
pub use exchange::{ClauseExchange, EXCHANGE_SLOTS, MAX_SHARED_LITS};
pub use formula::{Formula, ParseError};
pub use pb::{normalize_ge, to_ge_constraints, Normalized, PbOp, PbTerm};
pub use solver::{
    paranoid_env, RestartPolicy, SearchEngine, SolveResult, Solver, SolverConfig, SolverStats,
};
pub use types::{LBool, Lit, Var};
