#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small value-tree serialization framework under the `serde` name: the
//! [`Serialize`] / [`Deserialize`] traits convert to and from a JSON-like
//! [`Value`], and the companion `serde_derive` proc-macro derives them for
//! plain structs and enums (externally tagged, like real serde's default).
//! `serde_json` (also vendored) renders [`Value`] to JSON text and back.
//!
//! Supported shapes: named-field structs, tuple/newtype structs, unit
//! structs, and enums with unit / tuple / named-field variants — no
//! generics, lifetimes, or field attributes, which is all this workspace
//! needs.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

/// A JSON-like value tree — the serialization data model of the stub.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer (negative values).
    Int(i64),
    /// Unsigned integer (non-negative values).
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries if `self` is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The elements if `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Looks up a key if `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization failure.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An arbitrary-message error.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }

    /// A "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> DeError {
        DeError {
            msg: format!("expected {what}, found {found:?}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types convertible to a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Str(s) => s
                        .parse::<u64>()
                        .map_err(|_| DeError::expected("unsigned integer", v))?,
                    _ => return Err(DeError::expected("unsigned integer", v)),
                };
                <$t>::try_from(u).map_err(|_| DeError::custom(format!(
                    "value {u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::expected("integer", v))?,
                    Value::Str(s) => s
                        .parse::<i64>()
                        .map_err(|_| DeError::expected("integer", v))?,
                    _ => return Err(DeError::expected("integer", v)),
                };
                <$t>::try_from(i).map_err(|_| DeError::custom(format!(
                    "value {i} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(DeError::expected("number", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ---------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<(A, B), DeError> {
        match v.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", v)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<BTreeSet<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        // Sort rendered elements for deterministic output.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(|v| format!("{v:?}"));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<HashSet<T>, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

/// Renders a scalar value as a JSON object key (real serde_json stringifies
/// integer map keys the same way).
fn key_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key {other:?}"),
    }
}

fn key_value(s: &str) -> Value {
    if let Ok(u) = s.parse::<u64>() {
        Value::UInt(u)
    } else if let Ok(i) = s.parse::<i64>() {
        Value::Int(i)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<HashMap<K, V>, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&key_value(k))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<BTreeMap<K, V>, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&key_value(k))?, V::from_value(val)?)))
            .collect()
    }
}

/// Helper used by derived code: extracts and deserializes one struct field.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => Err(DeError::custom(format!("missing field `{name}`"))),
    }
}

/// Reads the named field of an object value, falling back to
/// `T::default()` when the field is absent — the behaviour of serde's
/// `#[serde(default)]` field attribute.
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv).map_err(|e| DeError::custom(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}
