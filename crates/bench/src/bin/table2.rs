//! **Table 2** — complexity vs. architectural size.
//!
//! Paper: 30 tasks with chains and extra requirements on a token ring of
//! 8 / 16 / 25 / 32 / 45 / 64 ECUs; runtime and formula size grow with the
//! ECU count, but much more slowly than with the task count (Table 3) —
//! "in case of an architectural growth [the number of formulae] is not"
//! directly task-dependent.
//!
//! Quick mode uses a 14-task set over the same ECU sweep; `--full` runs
//! the paper's 30-task set.

use optalloc::{Objective, Optimizer};
use optalloc_bench::{emit, parse_cli, solve_options, Row};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_workloads::{architecture_scaling, generate, GenParams, TABLE2_ECUS};

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();

    let ecu_counts: &[usize] = if cli.full {
        &TABLE2_ECUS
    } else {
        &TABLE2_ECUS[..4]
    };

    for &ecus in ecu_counts {
        let w = if cli.full {
            architecture_scaling(ecus)
        } else {
            generate(&GenParams {
                name: format!("table2q-e{ecus}"),
                n_tasks: 14,
                n_chains: 4,
                n_ecus: ecus,
                seed: 0x7ab1_e200 + ecus as u64,
                utilization: 0.35,
                restricted_fraction: 0.2,
                redundant_pairs: 1,
                token_ring: true,
                deadline_slack: 1.4,
            })
        };
        let result = Optimizer::new(&w.arch, &w.tasks)
            .with_options(solve_options(cli.full))
            .minimize(&Objective::TokenRotationTime(MediumId(0)));
        match result {
            Ok(r) => rows.push(Row::from_report(
                format!("{ecus} ECUs"),
                &r,
                format!("TRT = {:.2}ms", ticks_to_ms(r.cost as u64)),
            )),
            Err(optalloc::OptError::Budget { incumbent }) => rows.push(Row {
                experiment: format!("{ecus} ECUs"),
                result: match incumbent {
                    Some((c, _)) => format!("≤ {:.2}ms (budget)", ticks_to_ms(c as u64)),
                    None => "budget exhausted".into(),
                },
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: "conflict budget hit; rerun with --full".into(),
            }),
            Err(e) => rows.push(Row {
                experiment: format!("{ecus} ECUs"),
                result: format!("{e}"),
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: String::new(),
            }),
        }
    }

    emit(
        "Table 2: complexity vs architecture size (token ring, TRT objective)",
        &rows,
        &cli,
    );
    println!(
        "paper (30 tasks): 8→64 ECUs: 0h13–13h00, 100k–206k var, 602k–1304k lit \
         (sub-exponential growth in ECUs)"
    );
}
