//! Optimality certificates for `BIN_SEARCH`.
//!
//! A [`Certificate`] packages the two halves of an optimality claim for a
//! minimized cost variable:
//!
//! 1. a **witness** — the SAT model attaining the optimum, replayable
//!    through an independent feasibility checker without touching the
//!    encoder, and
//! 2. **refutation proofs** — per-solver extended DRAT traces
//!    ([`optalloc_sat::ProofLog`]) each certifying one or more cost
//!    *windows* as unsatisfiable, whose union must cover every cost value
//!    strictly below the optimum down to the variable's lower range bound.
//!
//! Window claims come in two shapes. An incremental prober probes
//! `lo ≤ cost ≤ hi` under a fresh guard assumption; an UNSAT answer is
//! certified by the derived clause `¬guard` in that solver's trace (the
//! failed-assumption clause). A fresh-solver probe asserts the bounds
//! outright, so its UNSAT answer is certified by the trace proving global
//! unsatisfiability — recorded as an empty claim.
//!
//! [`Certificate::verify`] re-checks every trace with the built-in forward
//! DRAT checker ([`optalloc_sat::check_proof`]), confirms each window's
//! claim is actually proved by its trace, rejects any certified window that
//! contains the claimed optimum (it would refute the witness), and finally
//! checks that the certified windows, merged, cover `[cost_lo, optimum − 1]`
//! without gaps. Witness replay lives a layer up (in `optalloc-core`), where
//! the domain semantics are known.
//!
//! For parallel runs (portfolio racing, window search) each worker
//! contributes a [`WindowProof`]; soundness of stitching follows from the
//! bound-lattice publication discipline — a worker only publishes a lower
//! bound after an exhaustive UNSAT verdict on a window anchored at the
//! then-global lower bound, so the union of all workers' certified windows
//! is gap-free whenever the race reached `Optimal`. `verify` does not trust
//! that argument: it re-checks coverage from the recorded windows alone.

use crate::problem::Model;
use optalloc_sat::{check_proof, CheckError, Lit};
use std::sync::Arc;

/// One cost window `lo ≤ cost ≤ hi` refuted by a proof trace, together
/// with the clause that certifies the refutation inside that trace.
#[derive(Clone, Debug)]
pub struct CertifiedWindow {
    /// Inclusive window lower bound.
    pub lo: i64,
    /// Inclusive window upper bound.
    pub hi: i64,
    /// The claim clause the trace must prove: `[¬guard]` for a guarded
    /// incremental probe, empty for a fresh solver that proved its whole
    /// formula (base problem plus hard window bounds) unsatisfiable.
    pub claim: Vec<Lit>,
}

/// One solver's proof trace plus the cost windows it certifies. A single
/// incremental solver certifies many windows in one trace; a fresh-mode
/// probe certifies exactly one.
#[derive(Clone, Debug)]
pub struct WindowProof {
    /// The extended DRAT trace recorded by the solver.
    pub log: Arc<optalloc_sat::ProofLog>,
    /// Windows this trace refutes, in probe order.
    pub windows: Vec<CertifiedWindow>,
}

/// A complete optimality certificate: witness at the optimum plus DRAT
/// refutations covering every smaller cost (see the module docs).
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The claimed optimal cost.
    pub optimum: i64,
    /// Lower end of the cost variable's declared range; refutation
    /// coverage must start here.
    pub cost_lo: i64,
    /// The model attaining `optimum`, for independent replay.
    pub witness: Model,
    /// Refutation proofs from every participating solver.
    pub proofs: Vec<WindowProof>,
}

/// Aggregate numbers from a successful [`Certificate::verify`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct CertificateSummary {
    /// Proof traces checked.
    pub proofs: usize,
    /// Certified windows confirmed.
    pub windows: usize,
    /// Total proof steps across all traces.
    pub steps: usize,
    /// Derived clauses that passed their RUP check, across all traces.
    pub adds_verified: usize,
    /// Clause deletions applied across all traces.
    pub deletions: usize,
}

impl std::fmt::Display for CertificateSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} proof(s), {} window(s), {} steps, {} adds verified, {} deletions",
            self.proofs, self.windows, self.steps, self.adds_verified, self.deletions
        )
    }
}

/// Why a certificate failed verification.
#[derive(Clone, Debug)]
pub enum CertificateError {
    /// A proof trace failed the forward DRAT check.
    ProofRejected {
        /// Index into [`Certificate::proofs`].
        proof: usize,
        /// The checker's rejection.
        error: CheckError,
    },
    /// A trace checked out but does not prove the claim attached to one of
    /// its windows.
    ClaimUnproved {
        /// Index into [`Certificate::proofs`].
        proof: usize,
        /// The window whose claim is missing from the trace.
        window: (i64, i64),
    },
    /// A certified-UNSAT window contains the claimed optimum, refuting the
    /// witness.
    OptimumRefuted {
        /// The offending window.
        window: (i64, i64),
    },
    /// The certified windows do not cover `[cost_lo, optimum − 1]`.
    CoverageGap {
        /// Smallest cost value with no covering refutation.
        uncovered: i64,
    },
}

impl std::fmt::Display for CertificateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertificateError::ProofRejected { proof, error } => {
                write!(f, "proof {proof} rejected by the DRAT checker: {error}")
            }
            CertificateError::ClaimUnproved { proof, window } => write!(
                f,
                "proof {proof} does not prove the claim for window [{}, {}]",
                window.0, window.1
            ),
            CertificateError::OptimumRefuted { window } => write!(
                f,
                "certified-UNSAT window [{}, {}] contains the claimed optimum",
                window.0, window.1
            ),
            CertificateError::CoverageGap { uncovered } => write!(
                f,
                "no refutation covers cost value {uncovered} below the optimum"
            ),
        }
    }
}

impl std::error::Error for CertificateError {}

impl Certificate {
    /// Checks the certificate end to end: every trace forward-checked,
    /// every window claim proved, no certified window containing the
    /// optimum, and gap-free coverage of `[cost_lo, optimum − 1]`.
    ///
    /// This validates *optimality of the cost value* given the encoded
    /// formula. Feasibility of the witness itself is validated separately
    /// by replaying the model through the domain analysis (see
    /// `optalloc-core`), which also closes the encoder out of the trusted
    /// base.
    pub fn verify(&self) -> Result<CertificateSummary, CertificateError> {
        let mut summary = CertificateSummary::default();
        // (lo, hi) pairs clipped to the range that matters for coverage.
        let mut covered: Vec<(i64, i64)> = Vec::new();
        for (pi, proof) in self.proofs.iter().enumerate() {
            let checked = check_proof(&proof.log)
                .map_err(|error| CertificateError::ProofRejected { proof: pi, error })?;
            summary.proofs += 1;
            summary.steps += checked.steps;
            summary.adds_verified += checked.adds_verified;
            summary.deletions += checked.deletions;
            for w in &proof.windows {
                if w.lo > w.hi {
                    continue; // vacuous window, nothing to certify
                }
                if !checked.proves_clause(&w.claim) {
                    return Err(CertificateError::ClaimUnproved {
                        proof: pi,
                        window: (w.lo, w.hi),
                    });
                }
                if w.lo <= self.optimum && self.optimum <= w.hi {
                    return Err(CertificateError::OptimumRefuted {
                        window: (w.lo, w.hi),
                    });
                }
                summary.windows += 1;
                if w.lo < self.optimum {
                    covered.push((w.lo, w.hi.min(self.optimum - 1)));
                }
            }
        }
        // Merge-sweep: the certified windows must cover [cost_lo, optimum-1].
        if self.optimum > self.cost_lo {
            covered.sort_unstable();
            let mut up_to = self.cost_lo - 1; // highest covered value so far
            for (lo, hi) in covered {
                if lo > up_to + 1 {
                    break; // gap at up_to + 1
                }
                up_to = up_to.max(hi);
            }
            if up_to < self.optimum - 1 {
                return Err(CertificateError::CoverageGap {
                    uncovered: up_to + 1,
                });
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_sat::ProofLog;

    fn lit(i: i64) -> Lit {
        let v = optalloc_sat::Var::from_index(i.unsigned_abs() as usize - 1);
        if i > 0 {
            v.positive()
        } else {
            v.negative()
        }
    }

    /// A trace deriving `claim` by RUP from inputs (x1) and (¬x1 ∨ claim);
    /// an empty claim yields a globally UNSAT trace instead.
    fn proof_deriving(claim: &[Lit], windows: Vec<CertifiedWindow>) -> WindowProof {
        let mut log = ProofLog::new();
        if claim.is_empty() {
            log.input_clause(&[lit(1)]);
            log.input_clause(&[lit(-1)]);
            log.add(&[]);
        } else {
            log.input_clause(&[lit(1)]);
            let mut implied = vec![lit(-1)];
            implied.extend_from_slice(claim);
            log.input_clause(&implied);
            if claim.len() == 1 {
                log.add(claim);
            }
        }
        WindowProof {
            log: Arc::new(log),
            windows,
        }
    }

    fn cert(optimum: i64, cost_lo: i64, proofs: Vec<WindowProof>) -> Certificate {
        Certificate {
            optimum,
            cost_lo,
            witness: Model::default(),
            proofs,
        }
    }

    fn win(lo: i64, hi: i64, claim: &[Lit]) -> CertifiedWindow {
        CertifiedWindow {
            lo,
            hi,
            claim: claim.to_vec(),
        }
    }

    #[test]
    fn contiguous_windows_verify() {
        let claim = [lit(2)];
        let c = cert(
            10,
            0,
            vec![
                proof_deriving(&claim, vec![win(0, 4, &claim)]),
                proof_deriving(&claim, vec![win(5, 9, &claim)]),
            ],
        );
        let s = c.verify().expect("contiguous coverage");
        assert_eq!(s.proofs, 2);
        assert_eq!(s.windows, 2);
    }

    #[test]
    fn overlapping_windows_verify() {
        let claim = [lit(2)];
        let c = cert(
            7,
            2,
            vec![proof_deriving(
                &claim,
                vec![win(2, 5, &claim), win(4, 6, &claim)],
            )],
        );
        c.verify().expect("overlap is fine");
    }

    #[test]
    fn gap_is_rejected() {
        let claim = [lit(2)];
        let c = cert(
            10,
            0,
            vec![
                proof_deriving(&claim, vec![win(0, 3, &claim)]),
                proof_deriving(&claim, vec![win(5, 9, &claim)]),
            ],
        );
        match c.verify() {
            Err(CertificateError::CoverageGap { uncovered }) => assert_eq!(uncovered, 4),
            r => panic!("expected coverage gap, got {r:?}"),
        }
    }

    #[test]
    fn window_containing_optimum_is_rejected() {
        let claim = [lit(2)];
        let c = cert(5, 0, vec![proof_deriving(&claim, vec![win(0, 5, &claim)])]);
        assert!(matches!(
            c.verify(),
            Err(CertificateError::OptimumRefuted { window: (0, 5) })
        ));
    }

    #[test]
    fn unproved_claim_is_rejected() {
        // The trace derives x2 but the window claims x3.
        let derived = [lit(2)];
        let mut proof = proof_deriving(&derived, vec![]);
        proof.windows.push(win(0, 4, &[lit(3)]));
        let c = cert(5, 0, vec![proof]);
        assert!(matches!(
            c.verify(),
            Err(CertificateError::ClaimUnproved {
                proof: 0,
                window: (0, 4)
            })
        ));
    }

    #[test]
    fn global_unsat_trace_certifies_any_window() {
        // Fresh-mode shape: empty claim, trace proves UNSAT outright.
        let c = cert(3, 0, vec![proof_deriving(&[], vec![win(0, 2, &[])])]);
        c.verify().expect("unsat trace covers its window");
    }

    #[test]
    fn optimum_at_range_lower_bound_needs_no_proofs() {
        let c = cert(0, 0, vec![]);
        let s = c.verify().expect("nothing below the optimum");
        assert_eq!(s.windows, 0);
    }

    #[test]
    fn missing_proofs_fail_when_range_extends_below() {
        let c = cert(3, 0, vec![]);
        assert!(matches!(
            c.verify(),
            Err(CertificateError::CoverageGap { uncovered: 0 })
        ));
    }

    #[test]
    fn vacuous_windows_are_skipped() {
        let claim = [lit(2)];
        let c = cert(
            4,
            0,
            vec![proof_deriving(
                &claim,
                vec![win(9, 3, &claim), win(0, 3, &claim)],
            )],
        );
        let s = c.verify().expect("empty window ignored");
        assert_eq!(s.windows, 1);
    }
}
