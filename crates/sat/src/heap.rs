//! Indexed max-heap over variable activities (the EVSIDS decision order).
//!
//! The heap stores variable indices ordered by an external activity array;
//! `positions` gives O(1) membership tests and in-place `decrease`/`increase`
//! sift operations when an activity is bumped.

use crate::types::Var;

/// Binary max-heap of variables keyed by activity, with index tracking.
#[derive(Default)]
pub struct VarOrderHeap {
    heap: Vec<u32>,
    /// `positions[v]` is the heap slot of variable `v`, or `u32::MAX`.
    positions: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

impl VarOrderHeap {
    /// Creates an empty heap.
    pub fn new() -> VarOrderHeap {
        VarOrderHeap::default()
    }

    /// Grows the position table to cover `n` variables.
    pub fn grow_to(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
    }

    /// Number of enqueued variables.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if `v` is currently in the heap.
    pub fn contains(&self, v: Var) -> bool {
        self.positions.get(v.index()).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `v` (no-op if present), restoring heap order by `activity`.
    pub fn insert(&mut self, v: Var, activity: &[f64]) {
        self.grow_to(v.index() + 1);
        if self.contains(v) {
            return;
        }
        let slot = self.heap.len();
        self.heap.push(v.0);
        self.positions[v.index()] = slot as u32;
        self.sift_up(slot, activity);
    }

    /// Removes and returns the variable with maximal activity.
    pub fn pop_max(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().unwrap();
        self.positions[top as usize] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.positions[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(Var(top))
    }

    /// Restores order after the activity of `v` increased.
    pub fn increased(&mut self, v: Var, activity: &[f64]) {
        if let Some(&p) = self.positions.get(v.index()) {
            if p != ABSENT {
                self.sift_up(p as usize, activity);
            }
        }
    }

    /// Rebuilds the heap after a global activity rescale (order unchanged,
    /// so this is a no-op kept for interface clarity).
    pub fn rescaled(&mut self) {}

    fn sift_up(&mut self, mut slot: usize, activity: &[f64]) {
        let v = self.heap[slot];
        while slot > 0 {
            let parent = (slot - 1) / 2;
            let pv = self.heap[parent];
            if activity[pv as usize] >= activity[v as usize] {
                break;
            }
            self.heap[slot] = pv;
            self.positions[pv as usize] = slot as u32;
            slot = parent;
        }
        self.heap[slot] = v;
        self.positions[v as usize] = slot as u32;
    }

    fn sift_down(&mut self, mut slot: usize, activity: &[f64]) {
        let v = self.heap[slot];
        loop {
            let left = 2 * slot + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let best = if right < self.heap.len()
                && activity[self.heap[right] as usize] > activity[self.heap[left] as usize]
            {
                right
            } else {
                left
            };
            let bv = self.heap[best];
            if activity[v as usize] >= activity[bv as usize] {
                break;
            }
            self.heap[slot] = bv;
            self.positions[bv as usize] = slot as u32;
            slot = best;
        }
        self.heap[slot] = v;
        self.positions[v as usize] = slot as u32;
    }

    #[cfg(test)]
    fn check_invariant(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                activity[self.heap[parent] as usize] >= activity[self.heap[i] as usize],
                "heap order violated at {i}"
            );
        }
        for (i, &h) in self.heap.iter().enumerate() {
            assert_eq!(self.positions[h as usize], i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_returns_max_activity_order() {
        let activity = vec![0.5, 2.0, 1.0, 3.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..4 {
            heap.insert(Var::from_index(i), &activity);
        }
        heap.check_invariant(&activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(3)));
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(1)));
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(2)));
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
        assert_eq!(heap.pop_max(&activity), None);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(0), &activity);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn increased_restores_order() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarOrderHeap::new();
        for i in 0..3 {
            heap.insert(Var::from_index(i), &activity);
        }
        activity[0] = 10.0;
        heap.increased(Var::from_index(0), &activity);
        heap.check_invariant(&activity);
        assert_eq!(heap.pop_max(&activity), Some(Var::from_index(0)));
    }

    /// Drains the heap, returning variables in pop order.
    fn drain(heap: &mut VarOrderHeap, activity: &[f64]) -> Vec<u32> {
        std::iter::from_fn(|| heap.pop_max(activity).map(|v| v.0)).collect()
    }

    #[test]
    fn evsids_decay_orders_recent_bumps_first() {
        // EVSIDS decays by *growing the increment*: bumping v later adds a
        // larger var_inc, so recently-bumped variables overtake earlier
        // ones of equal bump count. Simulate the solver's loop (decay 0.95)
        // and check the heap tracks each re-ordering via `increased`.
        let n = 4;
        let mut activity = vec![0.0f64; n];
        let mut var_inc = 1.0f64;
        let mut heap = VarOrderHeap::new();
        for i in 0..n {
            heap.insert(Var::from_index(i), &activity);
        }
        // Bump in order 0,1,2,3 with decay between bumps: 3 ends hottest.
        for i in 0..n {
            activity[i] += var_inc;
            heap.increased(Var::from_index(i), &activity);
            heap.check_invariant(&activity);
            var_inc /= 0.95;
        }
        assert_eq!(drain(&mut heap, &activity), vec![3, 2, 1, 0]);
    }

    #[test]
    fn rescale_on_overflow_preserves_pop_order() {
        // The solver multiplies every activity by 1e-100 when one crosses
        // 1e100. Uniform scaling must not change the relative order the
        // heap yields (`rescaled` is a no-op precisely because of this).
        let mut activity = vec![3e100, 1e100, 7e100, 5e100];
        let mut heap = VarOrderHeap::new();
        for i in 0..activity.len() {
            heap.insert(Var::from_index(i), &activity);
        }
        let reference = heap_clone_order(&activity);
        for a in &mut activity {
            *a *= 1e-100;
        }
        heap.rescaled();
        heap.check_invariant(&activity);
        assert_eq!(drain(&mut heap, &activity), reference);
    }

    /// Pop order the activities imply, computed independently of the heap.
    fn heap_clone_order(activity: &[f64]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..activity.len() as u32).collect();
        idx.sort_by(|&a, &b| activity[b as usize].total_cmp(&activity[a as usize]));
        idx
    }

    #[test]
    fn rebuild_after_resize_keeps_old_entries() {
        // grow_to must extend the position table without disturbing queued
        // variables; inserting far past the old capacity self-grows too.
        let mut activity = vec![2.0, 1.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(1), &activity);
        activity.resize(10, 0.0);
        heap.grow_to(10);
        assert!(heap.contains(Var::from_index(0)));
        assert!(heap.contains(Var::from_index(1)));
        assert!(!heap.contains(Var::from_index(9)));
        activity[9] = 5.0;
        heap.insert(Var::from_index(9), &activity);
        heap.check_invariant(&activity);
        assert_eq!(drain(&mut heap, &activity), vec![9, 0, 1]);
    }

    #[test]
    fn pop_from_grown_but_empty_heap_is_none() {
        let mut heap = VarOrderHeap::new();
        heap.grow_to(16);
        assert_eq!(heap.pop_max(&[0.0; 16]), None);
        assert_eq!(heap.len(), 0);
    }

    #[test]
    fn reinsert_after_pop() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarOrderHeap::new();
        heap.insert(Var::from_index(0), &activity);
        heap.insert(Var::from_index(1), &activity);
        let top = heap.pop_max(&activity).unwrap();
        assert!(!heap.contains(top));
        heap.insert(top, &activity);
        assert!(heap.contains(top));
        assert_eq!(heap.len(), 2);
        heap.check_invariant(&activity);
    }
}
