//! Deep solver-invariant checking ([`SolverConfig::paranoid`]).
//!
//! Fuzz campaigns that only look at final optima discover corruption long
//! after the fact, on instances too large to debug. This module walks the
//! whole solver state — watch lists, trail, PB counters, learned-clause DB,
//! elimination stack, decision order — and panics *at the corruption point*,
//! so a metamorphic campaign shrinks the instance against the first broken
//! invariant rather than against a wrong answer three layers downstream.
//!
//! Every check is `O(formula)` or worse; `solve` only calls them at
//! quiescent points (solve entry after preprocessing, restart boundaries,
//! solve exit) and only when [`SolverConfig::paranoid`] is set.
//!
//! Deliberate non-checks, each load-bearing:
//! - eliminated variables MAY appear in old *learned* clauses and MAY be
//!   assigned (a stale learned clause can still propagate them); only their
//!   absence from live input clauses and PB constraints is an invariant,
//! - the order heap may contain assigned or eliminated variables (decision
//!   picking skips them lazily); only the converse — every undecided,
//!   non-eliminated variable is present — must hold,
//! - trail segments may be empty (assumption levels whose literal was
//!   already true), so the first literal of a segment need not be a
//!   decision.
//!
//! [`SolverConfig::paranoid`]: super::SolverConfig::paranoid

use std::collections::{HashMap, HashSet};

use super::{Reason, Solver};
use crate::clause::ClauseRef;
use crate::types::{LBool, Lit, Var};

impl Solver {
    /// Walks every deep solver invariant and panics (with `site` in the
    /// message) on the first violation. See the module docs for the exact
    /// catalogue and the deliberate non-checks.
    pub fn check_invariants(&self, site: &str) {
        self.check_watch_coherence(site);
        self.check_trail(site);
        self.check_pb_counters(site);
        self.check_learnt_db(site);
        self.check_elim_state(site);
        self.check_decision_order(site);
    }

    /// Watch coherence: every live clause of length ≥ 2 is watched exactly
    /// twice, every watcher points at a live clause through one of its first
    /// two literals, blockers belong to their clause, and binary lists hold
    /// only binary clauses.
    fn check_watch_coherence(&self, site: &str) {
        let mut entries: HashMap<ClauseRef, usize> = HashMap::new();
        for li in 0..self.watches.len() {
            // `watches[lit]` is walked when `lit` becomes true, i.e. it
            // holds the clauses watching `¬lit`.
            let watched = !Lit::from_index(li);
            for w in &self.watches[li] {
                assert!(
                    !self.db.is_deleted(w.cref),
                    "[{site}] watcher of {watched:?} points at a deleted clause"
                );
                let lits = self.db.lits(w.cref);
                assert!(
                    lits[0] == watched || lits[1] == watched,
                    "[{site}] watch entry for {watched:?} not in the first two \
                     literals of {lits:?}"
                );
                assert!(
                    lits.contains(&w.blocker),
                    "[{site}] blocker {:?} not in clause {lits:?}",
                    w.blocker
                );
                *entries.entry(w.cref).or_default() += 1;
            }
        }
        for li in 0..self.bin_watches.len() {
            let watched = !Lit::from_index(li);
            for w in &self.bin_watches[li] {
                assert!(
                    !self.db.is_deleted(w.cref),
                    "[{site}] binary watcher of {watched:?} points at a deleted clause"
                );
                let lits = self.db.lits(w.cref);
                assert_eq!(
                    lits.len(),
                    2,
                    "[{site}] non-binary clause {lits:?} on a binary watch list"
                );
                assert!(
                    lits.contains(&watched) && lits.contains(&w.other) && watched != w.other,
                    "[{site}] binary watch ({watched:?}, {:?}) does not match clause {lits:?}",
                    w.other
                );
                *entries.entry(w.cref).or_default() += 1;
            }
        }
        for cref in self.db.iter_refs() {
            let n = entries.get(&cref).copied().unwrap_or(0);
            assert_eq!(
                n,
                2,
                "[{site}] live clause {:?} has {n} watch entries (want 2)",
                self.db.lits(cref)
            );
        }
    }

    /// Trail/level consistency: the propagation queue is drained, every
    /// trail literal is true with the right recorded position and level,
    /// every clause reason is live with the propagated literal first and
    /// the rest false earlier on the trail, and the set of assigned
    /// variables is exactly the set on the trail.
    fn check_trail(&self, site: &str) {
        assert_eq!(
            self.qhead,
            self.trail.len(),
            "[{site}] propagation queue not drained"
        );
        for w in self.trail_lim.windows(2) {
            assert!(w[0] <= w[1], "[{site}] decision marks out of order");
        }
        if let Some(&last) = self.trail_lim.last() {
            assert!(
                last <= self.trail.len(),
                "[{site}] decision mark past trail end"
            );
        }
        for (idx, &l) in self.trail.iter().enumerate() {
            let v = l.var();
            // A variable's level is the number of decision marks at or
            // before its trail position (empty segments collapse).
            let expect_level = self.trail_lim.iter().take_while(|&&lim| lim <= idx).count() as u32;
            assert_eq!(
                self.value_lit(l),
                LBool::True,
                "[{site}] trail literal {l:?} not assigned true"
            );
            assert_eq!(
                self.trail_pos[v.index()] as usize,
                idx,
                "[{site}] trail_pos of {v:?} disagrees with its trail slot"
            );
            assert_eq!(
                self.level[v.index()],
                expect_level,
                "[{site}] recorded level of {v:?} disagrees with its trail segment"
            );
            match self.reason[v.index()] {
                Reason::None => {}
                Reason::Clause(c) => {
                    assert!(
                        !self.db.is_deleted(c),
                        "[{site}] reason clause of {v:?} was deleted while locked"
                    );
                    let lits = self.db.lits(c);
                    assert_eq!(
                        lits[0], l,
                        "[{site}] reason clause of {v:?} does not lead with its literal"
                    );
                    for &o in &lits[1..] {
                        assert_eq!(
                            self.value_lit(o),
                            LBool::False,
                            "[{site}] reason clause of {v:?} has a non-false tail literal"
                        );
                        assert!(
                            (self.trail_pos[o.var().index()] as usize) < idx,
                            "[{site}] reason antecedent of {v:?} assigned after it"
                        );
                    }
                }
                Reason::Pb(pi) => {
                    assert!(
                        (pi as usize) < self.pbs.len(),
                        "[{site}] dangling PB reason index {pi}"
                    );
                }
            }
        }
        let mut on_trail = vec![false; self.assigns.len()];
        for &l in &self.trail {
            on_trail[l.var().index()] = true;
        }
        for (v, assign) in self.assigns.iter().enumerate() {
            assert_eq!(
                assign.is_assigned(),
                on_trail[v],
                "[{site}] assignment of var {v} disagrees with trail membership"
            );
        }
    }

    /// PB counter agreement: each constraint's incrementally-maintained
    /// `slack` equals the sum of coefficients of its non-false literals
    /// minus the bound, and `max_coef` is the true maximum.
    fn check_pb_counters(&self, site: &str) {
        for (pi, pb) in self.pbs.iter().enumerate() {
            let recomputed: i64 = pb
                .lits
                .iter()
                .zip(pb.coefs.iter())
                .filter(|(l, _)| self.value_lit(**l) != LBool::False)
                .map(|(_, &a)| a as i64)
                .sum::<i64>()
                - pb.bound as i64;
            assert_eq!(
                pb.slack, recomputed,
                "[{site}] PB {pi} slack counter drifted from its assignment"
            );
            assert_eq!(
                pb.max_coef,
                pb.coefs.iter().copied().max().unwrap_or(0),
                "[{site}] PB {pi} max_coef stale"
            );
        }
    }

    /// Learned-DB integrity: `learnts` lists each live learned clause
    /// exactly once, and nothing else.
    fn check_learnt_db(&self, site: &str) {
        let mut tracked: HashSet<ClauseRef> = HashSet::with_capacity(self.learnts.len());
        for &c in &self.learnts {
            assert!(
                !self.db.is_deleted(c),
                "[{site}] deleted clause still tracked in learnts"
            );
            assert!(
                self.db.is_learnt(c),
                "[{site}] input clause tracked in learnts"
            );
            assert!(tracked.insert(c), "[{site}] duplicate learnts entry");
        }
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                assert!(
                    tracked.contains(&cref),
                    "[{site}] live learned clause missing from learnts"
                );
            }
        }
    }

    /// Elimination-stack consistency: the `eliminated` marks, the
    /// `elim_pos` indirection and the stack agree (with stale entries of
    /// re-eliminated variables correctly orphaned), frozen variables are
    /// never eliminated, the depth gauge matches, and no eliminated
    /// variable occurs in a live input clause or a PB constraint.
    fn check_elim_state(&self, site: &str) {
        let mut live = 0u64;
        for v in 0..self.eliminated.len() {
            if self.eliminated[v] {
                live += 1;
                assert!(
                    !self.frozen[v],
                    "[{site}] frozen var {v} was eliminated anyway"
                );
                let gi = self.elim_pos[v];
                assert!(
                    gi != u32::MAX && (gi as usize) < self.elim_stack.len(),
                    "[{site}] eliminated var {v} has no live stack group"
                );
                assert_eq!(
                    self.elim_stack[gi as usize].var,
                    Var::from_index(v),
                    "[{site}] elim_pos of var {v} points at another variable's group"
                );
            } else {
                assert_eq!(
                    self.elim_pos[v],
                    u32::MAX,
                    "[{site}] restored var {v} still has a live stack pointer"
                );
            }
        }
        assert_eq!(
            live, self.stats.elim_stack_depth,
            "[{site}] elim_stack_depth gauge drifted"
        );
        // Eliminated variables were distributed away: they must not occur
        // in any live *input* clause or PB constraint. (Old *learned*
        // clauses may still mention them — that is sound and unchecked.)
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                continue;
            }
            for &l in self.db.lits(cref) {
                assert!(
                    !self.eliminated[l.var().index()],
                    "[{site}] eliminated {:?} occurs in live input clause {:?}",
                    l.var(),
                    self.db.lits(cref)
                );
            }
        }
        for (pi, pb) in self.pbs.iter().enumerate() {
            for &l in pb.lits.iter() {
                assert!(
                    !self.eliminated[l.var().index()],
                    "[{site}] eliminated {:?} occurs in PB constraint {pi}",
                    l.var()
                );
            }
        }
    }

    /// Decision-order completeness: every unassigned, non-eliminated
    /// variable is present in the order heap (the heap may hold assigned or
    /// eliminated variables too; picking skips those lazily).
    fn check_decision_order(&self, site: &str) {
        for v in 0..self.assigns.len() {
            if self.assigns[v] == LBool::Undef && !self.eliminated[v] {
                assert!(
                    self.order.contains(Var::from_index(v)),
                    "[{site}] undecided var {v} missing from the order heap"
                );
            }
        }
    }
}
