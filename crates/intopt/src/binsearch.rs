//! The `BIN_SEARCH` optimization scheme (paper §5.2).
//!
//! `SOLVE(φ)` returns the cost value of *some* satisfying assignment, or −1
//! when unsatisfiable; binary search over the cost range then converges on
//! the optimum:
//!
//! ```text
//! L := cost.lo ;  R := SOLVE(φ)
//! while (L < R) do
//!     M := (L + R) div 2
//!     K := SOLVE(φ ∧ cost ≥ L ∧ cost ≤ M)
//!     if (K = −1) then L := M + 1 else R := K
//! done
//! ```
//!
//! (The paper prints `L := M` in the UNSAT branch, which fails to terminate
//! for `R = L + 1`; the intended update is `L := M + 1` — UNSAT in `[L, M]`
//! proves the optimum exceeds `M`.)
//!
//! Two modes are provided:
//!
//! * [`BinSearchMode::Fresh`] — every `SOLVE` builds a new solver and
//!   re-encodes the constraints with the bounds asserted hard. This is the
//!   paper's baseline formulation.
//! * [`BinSearchMode::Incremental`] — one solver instance; bounds enter as
//!   *guard literals* passed as assumptions, so every learned clause
//!   persists across the whole search. This is the paper's §7 extension,
//!   reported to give ≥2× speedups.

use std::sync::Arc;

use crate::blast::{blast_with, Backend, EncoderOpt};
use crate::bounds::{BoundLattice, BoundWatch};
use crate::certificate::{Certificate, CertifiedWindow, WindowProof};
use crate::prober::{CostProber, Probe};
use crate::problem::{IntProblem, Model};
use crate::IntVar;
use optalloc_obs::Phase;
use optalloc_sat::{SolveResult, Solver, SolverConfig, SolverStats};

/// How the sequence of `SOLVE` calls shares work.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinSearchMode {
    /// Re-encode and solve from scratch for every probe (paper baseline).
    Fresh,
    /// One incremental solver; learned clauses persist (paper §7).
    Incremental,
}

/// Callback invoked whenever the search finds a new best (cost, model)
/// incumbent — before the search has proven it optimal.
pub type IncumbentCallback = Arc<dyn Fn(i64, &Model) + Send + Sync>;

/// Options for [`IntProblem::minimize`].
#[derive(Clone)]
pub struct MinimizeOptions {
    /// Gate encoding backend.
    pub backend: Backend,
    /// Work sharing across the probe sequence.
    pub mode: BinSearchMode,
    /// Per-call conflict budget; exhausting it aborts with
    /// [`MinimizeStatus::Unknown`].
    pub max_conflicts: Option<u64>,
    /// Known feasible upper bound on the cost (e.g. from a heuristic
    /// incumbent). The first probe is bounded by it, which can skip the
    /// expensive unbounded `SOLVE(φ)` and halve the search range.
    pub initial_upper: Option<i64>,
    /// Base solver tunables applied to every solver the search creates —
    /// including the cooperative [`SolverConfig::interrupt`] flag and the
    /// diversification knobs (`phase_seed`, `restart_unit`, decays) used by
    /// the portfolio runner. `max_conflicts` above, when set, overrides
    /// `solver_config.max_conflicts`.
    pub solver_config: SolverConfig,
    /// Two-sided cost bounds shared between cooperating searches (portfolio
    /// or window-search workers). Both sides are folded in between `SOLVE`
    /// calls: the probe range tightens to `[max(L, lattice.lower),
    /// min(U, lattice.upper))`. Written on every move — locally found
    /// incumbents tighten the upper side (`fetch_min`), UNSAT probes
    /// certify `mid + 1` into the lower side (`fetch_max`), so any worker's
    /// refutation shrinks everyone's window. When the search bottoms out
    /// against an external upper bound it reports
    /// [`MinimizeStatus::ExternalOptimal`] since the witnessing model lives
    /// in another worker.
    pub bounds: Option<Arc<BoundLattice>>,
    /// Invoked with every new local incumbent (cost, model) as it is found.
    pub on_incumbent: Option<IncumbentCallback>,
    /// Encoder-level optimizations (hash-consing, interval narrowing, SAT
    /// preprocessing) applied to every encoding the search builds. All on
    /// by default; [`EncoderOpt::none`] reproduces the unoptimized baseline
    /// for ablations.
    pub encoder_opt: EncoderOpt,
    /// Record DRAT proof traces in every solver and assemble an optimality
    /// [`Certificate`] on [`MinimizeStatus::Optimal`] (witness model plus
    /// refutations of every cheaper cost window; see
    /// [`crate::certificate`]). Implies [`SolverConfig::proof`], which
    /// disables importing foreign shared clauses — exporting still works —
    /// so cooperating certified workers trade some sharing for
    /// checkability.
    pub certify: bool,
}

impl std::fmt::Debug for MinimizeOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MinimizeOptions")
            .field("backend", &self.backend)
            .field("mode", &self.mode)
            .field("max_conflicts", &self.max_conflicts)
            .field("initial_upper", &self.initial_upper)
            .field("solver_config", &self.solver_config)
            .field("bounds", &self.bounds)
            .field("on_incumbent", &self.on_incumbent.as_ref().map(|_| ".."))
            .field("encoder_opt", &self.encoder_opt)
            .field("certify", &self.certify)
            .finish()
    }
}

impl Default for MinimizeOptions {
    fn default() -> MinimizeOptions {
        MinimizeOptions {
            backend: Backend::PseudoBoolean,
            mode: BinSearchMode::Incremental,
            max_conflicts: None,
            initial_upper: None,
            solver_config: SolverConfig::default(),
            bounds: None,
            on_incumbent: None,
            encoder_opt: EncoderOpt::default(),
            certify: false,
        }
    }
}

impl MinimizeOptions {
    /// A fresh solver configured per these options.
    pub(crate) fn new_solver(&self) -> Solver {
        let mut solver = Solver::new();
        solver.config = self.solver_config.clone();
        if self.max_conflicts.is_some() {
            solver.config.max_conflicts = self.max_conflicts;
        }
        // The encoder-opt switch masters the preprocessing stage so one
        // knob disables the whole optimization layer for ablations.
        if !self.encoder_opt.preprocess {
            solver.config.preprocess = false;
        }
        if self.certify {
            solver.config.proof = true;
        }
        solver
    }

    /// The externally shared incumbent cost, or `i64::MAX` when solo.
    pub(crate) fn external_upper(&self) -> i64 {
        self.bounds.as_ref().map(|b| b.upper()).unwrap_or(i64::MAX)
    }

    /// The externally certified lower bound, or `i64::MIN` when solo.
    pub(crate) fn external_lower(&self) -> i64 {
        self.bounds.as_ref().map(|b| b.lower()).unwrap_or(i64::MIN)
    }

    /// Publishes a new local incumbent to the cooperating searches.
    pub(crate) fn publish(&self, value: i64, model: &Model) {
        if let Some(bounds) = &self.bounds {
            bounds.publish_upper(value);
        }
        if let Some(cb) = &self.on_incumbent {
            cb(value, model);
        }
    }

    /// Publishes a certified lower bound (an UNSAT proof over the range
    /// below it) to the cooperating searches. Sound because every local
    /// lower bound is the join of globally valid facts: the chain of local
    /// UNSAT windows is anchored at `cost.lo` and each fold of the lattice
    /// lower bound is itself globally certified.
    pub(crate) fn publish_lower(&self, bound: i64) {
        if let Some(bounds) = &self.bounds {
            bounds.publish_lower(bound);
        }
    }
}

/// Verdict of a minimization run.
#[derive(Clone, Debug)]
pub enum MinimizeStatus {
    /// The minimum cost and a witnessing model.
    Optimal {
        /// Minimal value of the cost variable.
        value: i64,
        /// A model attaining it.
        model: Model,
    },
    /// The constraints admit no solution at all.
    Infeasible,
    /// Budget exhausted; carries the best incumbent, if any was found.
    Unknown {
        /// Best (value, model) discovered before giving up.
        incumbent: Option<(i64, Model)>,
    },
    /// The cooperative cancellation flag was raised mid-search; carries the
    /// best incumbent, if any was found before the abort.
    Interrupted {
        /// Best (value, model) discovered before the interrupt.
        incumbent: Option<(i64, Model)>,
    },
    /// The search proved no solution cheaper than the externally shared
    /// incumbent exists, so the optimum equals that value — but the
    /// witnessing model belongs to the cooperating search that published it
    /// (see [`MinimizeOptions::shared_bound`]).
    ExternalOptimal {
        /// The proven optimal cost, attained by another worker's model.
        value: i64,
    },
}

/// Size of the propositional encoding — the paper's complexity columns
/// ("Var." and "Lit.").
#[derive(Copy, Clone, Debug, Default)]
pub struct EncodeStats {
    /// Propositional variables.
    pub bool_vars: u64,
    /// Literal occurrences over all constraints.
    pub literals: u64,
    /// Constraints (clauses + PB).
    pub constraints: u64,
    /// Wall-clock milliseconds spent encoding (triplet rewriting, interval
    /// narrowing, and bit-blasting), accumulated over every `SOLVE` call —
    /// split out from [`SolverStats::solve_ms`] so ablation rows attribute
    /// time to the right stage.
    pub encode_ms: f64,
}

/// Full result of a minimization run.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// Optimal / infeasible / unknown.
    pub status: MinimizeStatus,
    /// Number of `SOLVE` invocations.
    pub solve_calls: u32,
    /// Size of the (first complete) propositional encoding.
    pub encode: EncodeStats,
    /// Aggregated solver statistics over all calls.
    pub stats: SolverStats,
    /// Proof traces recorded when [`MinimizeOptions::certify`] is set —
    /// present on *every* status (an interrupted worker still contributes
    /// its certified windows to a cooperating run's stitched certificate).
    pub proofs: Vec<WindowProof>,
    /// The assembled optimality certificate; `Some` only for a certified
    /// run that ended [`MinimizeStatus::Optimal`]. A solo run's certificate
    /// is self-contained; a cooperating worker's may have coverage gaps
    /// filled by other workers (the portfolio layer stitches the merged
    /// certificate from all workers' `proofs`).
    pub certificate: Option<Certificate>,
}

pub(crate) fn minimize(
    problem: &IntProblem,
    cost: IntVar,
    opts: &MinimizeOptions,
) -> MinimizeOutcome {
    match opts.mode {
        BinSearchMode::Incremental => minimize_incremental(problem, cost, opts),
        BinSearchMode::Fresh => minimize_fresh(problem, cost, opts),
    }
}

fn minimize_incremental(
    problem: &IntProblem,
    cost: IntVar,
    opts: &MinimizeOptions,
) -> MinimizeOutcome {
    let mut prober = CostProber::new(problem, cost, opts);
    let mut outcome = MinimizeOutcome {
        status: MinimizeStatus::Infeasible,
        solve_calls: 0,
        encode: prober.encode(),
        stats: SolverStats::default(),
        proofs: Vec::new(),
        certificate: None,
    };
    let finish = |mut o: MinimizeOutcome, prober: &mut CostProber, cost_lo: i64| {
        o.solve_calls = prober.solve_calls();
        o.stats = prober.stats().clone();
        // Guard-bound emission accrues per probe; refresh the snapshot.
        o.encode = prober.encode();
        if let Some(proof) = prober.take_proof() {
            o.proofs.push(proof);
        }
        if opts.certify {
            if let MinimizeStatus::Optimal { value, model } = &o.status {
                o.certificate = Some(Certificate {
                    optimum: *value,
                    cost_lo,
                    witness: model.clone(),
                    proofs: o.proofs.clone(),
                });
            }
        }
        o
    };

    if prober.trivially_unsat() {
        return outcome;
    }

    // R := SOLVE(φ), optionally warm-started with a known upper bound:
    // R := SOLVE(φ ∧ cost ≤ U) — falling back to the unbounded call if the
    // hint turns out infeasible.
    let first = match opts.initial_upper {
        Some(u) if u >= cost.lo => match prober.probe(Some((cost.lo, u))) {
            // Bad hint; retry unbounded.
            Probe::Unsat => prober.probe(None),
            r => r,
        },
        _ => prober.probe(None),
    };
    let (mut best_value, mut best_model) = match first {
        Probe::Unsat => return finish(outcome, &mut prober, cost.lo),
        Probe::Unknown => {
            outcome.status = MinimizeStatus::Unknown { incumbent: None };
            return finish(outcome, &mut prober, cost.lo);
        }
        Probe::Interrupted => {
            outcome.status = MinimizeStatus::Interrupted { incumbent: None };
            return finish(outcome, &mut prober, cost.lo);
        }
        Probe::Sat { value, model } => (value, model),
    };
    opts.publish(best_value, &best_model);
    let mut lower = cost.lo;
    let mut upper = best_value;
    // Checked mode: this reader's view of the shared lattice must be
    // monotone (lower only rises, upper only falls).
    let mut bound_watch = opts.solver_config.paranoid.then(BoundWatch::new);

    let external = loop {
        if let (Some(w), Some(b)) = (bound_watch.as_mut(), opts.bounds.as_deref()) {
            w.observe(b);
        }
        // Between SOLVE calls, fold in both sides of the shared lattice:
        // nothing at or above `min(upper, external upper)` needs probing
        // (somebody already holds a model that cheap), and nothing below
        // the external lower bound can exist (somebody refuted it). The
        // lower bound may overtake the upper mid-probe — that simply means
        // the window is exhausted, and the loop terminates.
        let external = opts.external_upper();
        let proven_hi = upper.min(external);
        lower = lower.max(opts.external_lower());
        if lower >= proven_hi {
            break external;
        }
        let mid = lower + (proven_hi - lower) / 2;
        match prober.probe(Some((lower, mid))) {
            Probe::Sat { value: k, model } => {
                debug_assert!(k >= lower && k <= mid);
                best_value = k;
                best_model = model;
                opts.publish(best_value, &best_model);
                upper = k;
            }
            Probe::Unsat => {
                // UNSAT over [L, M] proves the optimum exceeds M, hence
                // `L := M + 1`. (The paper's §5.2 listing prints `L := M`,
                // which never terminates once R = L + 1: M = L, the probe
                // over [L, L] repeats forever. See the regression test
                // `terminates_from_r_equals_l_plus_one` below.) The new
                // lower bound is globally certified: share it.
                lower = mid + 1;
                opts.publish_lower(lower);
            }
            Probe::Unknown => {
                outcome.status = MinimizeStatus::Unknown {
                    incumbent: Some((best_value, best_model)),
                };
                return finish(outcome, &mut prober, cost.lo);
            }
            Probe::Interrupted => {
                outcome.status = MinimizeStatus::Interrupted {
                    incumbent: Some((best_value, best_model)),
                };
                return finish(outcome, &mut prober, cost.lo);
            }
        }
    };

    outcome.status = if upper <= external {
        MinimizeStatus::Optimal {
            value: best_value,
            model: best_model,
        }
    } else {
        // The search bottomed out against an external incumbent strictly
        // better than the local one: the optimum is proven to equal it, but
        // the model lives in the worker that published the bound.
        MinimizeStatus::ExternalOptimal { value: external }
    };
    finish(outcome, &mut prober, cost.lo)
}

fn minimize_fresh(problem: &IntProblem, cost: IntVar, opts: &MinimizeOptions) -> MinimizeOutcome {
    let mut outcome = MinimizeOutcome {
        status: MinimizeStatus::Infeasible,
        solve_calls: 0,
        encode: EncodeStats::default(),
        stats: SolverStats::default(),
        proofs: Vec::new(),
        certificate: None,
    };

    // One probe: fresh solver, bounds asserted hard — except under
    // certification, where window bounds enter through a guard literal
    // instead: hard-asserted bounds are folded into the encoding by
    // interval narrowing, which can refute the window *before* the solver
    // runs and leave no proof trace. The guard keeps the refutation inside
    // the trace, certified by the failed-assumption clause ¬guard.
    let probe = |bounds: Option<(i64, i64)>,
                 outcome: &mut MinimizeOutcome|
     -> (SolveResult, Option<(i64, Model)>) {
        let use_guard = opts.certify && bounds.is_some();
        let mut solver = opts.new_solver();
        let mut p = problem.clone();
        if !use_guard {
            if let Some((lo, hi)) = bounds {
                p.assert(cost.expr().ge(lo).and(cost.expr().le(hi)));
            }
        }
        // One `bisect-window` span per fresh-mode probe, with the `encode`
        // and `search` spans nested inside; the same stopwatch f64 feeds
        // `encode_ms` so the trace and stats agree exactly.
        let mut probe_sw = solver.config.obs.stopwatch(Phase::BisectWindow);
        if probe_sw.recording() {
            if let Some((lo, hi)) = bounds {
                probe_sw.attr("lo", lo.to_string());
                probe_sw.attr("hi", hi.to_string());
            }
        }
        let sw = solver.config.obs.stopwatch(Phase::Encode);
        let (form, decls) = p.prepare(&opts.encoder_opt);
        let mut bl = blast_with(&form, &decls, &mut solver, opts.backend, &opts.encoder_opt);
        let guard = use_guard.then(|| {
            let (lo, hi) = bounds.unwrap();
            let guard = solver.new_var().positive();
            bl.add_guarded_bounds(&mut solver, cost, lo, hi, guard);
            guard
        });
        let encode_ms = sw.finish();
        if outcome.solve_calls == 0 {
            outcome.encode = EncodeStats {
                bool_vars: solver.num_vars() as u64,
                literals: solver.num_literals(),
                constraints: solver.num_constraints(),
                encode_ms: 0.0,
            };
        }
        outcome.encode.encode_ms += encode_ms;
        outcome.solve_calls += 1;
        if bl.trivially_unsat() {
            return (SolveResult::Unsat, None);
        }
        solver.config.progress_window = bounds;
        let r = match guard {
            Some(g) => solver.solve(&[g]),
            None => solver.solve(&[]),
        };
        probe_sw.finish();
        outcome.stats.absorb(&solver.stats);
        if opts.certify && r == SolveResult::Unsat {
            if let Some(log) = solver.take_proof() {
                // Bounded refutation: claim ¬guard over the window. An
                // unbounded one means overall infeasibility — keep the
                // trace (it proves UNSAT outright) with no window.
                let windows = match (bounds, guard) {
                    (Some((lo, hi)), Some(g)) => vec![CertifiedWindow {
                        lo,
                        hi,
                        claim: vec![!g],
                    }],
                    _ => Vec::new(),
                };
                outcome.proofs.push(WindowProof {
                    log: Arc::new(log),
                    windows,
                });
            }
        }
        let witness = (r == SolveResult::Sat).then(|| {
            (
                bl.int_value(&solver, cost),
                problem.extract_model(&solver, &bl),
            )
        });
        (r, witness)
    };

    let first_bounds = opts
        .initial_upper
        .filter(|&u| u >= cost.lo)
        .map(|u| (cost.lo, u));
    let (r0, w0) = match probe(first_bounds, &mut outcome) {
        // A bad warm-start hint must not report Infeasible; retry unbounded.
        (SolveResult::Unsat, _) if first_bounds.is_some() => probe(None, &mut outcome),
        other => other,
    };
    let (mut best_value, mut best_model) = match r0 {
        SolveResult::Unsat => return outcome,
        SolveResult::Unknown => {
            outcome.status = MinimizeStatus::Unknown { incumbent: None };
            return outcome;
        }
        SolveResult::Interrupted => {
            outcome.status = MinimizeStatus::Interrupted { incumbent: None };
            return outcome;
        }
        SolveResult::Sat => w0.unwrap(),
    };
    opts.publish(best_value, &best_model);
    let mut lower = cost.lo;
    let mut upper = best_value;
    let mut bound_watch = opts.solver_config.paranoid.then(BoundWatch::new);

    let external = loop {
        if let (Some(w), Some(b)) = (bound_watch.as_mut(), opts.bounds.as_deref()) {
            w.observe(b);
        }
        // Fold in both sides of the shared lattice (see the incremental
        // variant for the protocol).
        let external = opts.external_upper();
        let proven_hi = upper.min(external);
        lower = lower.max(opts.external_lower());
        if lower >= proven_hi {
            break external;
        }
        let mid = lower + (proven_hi - lower) / 2;
        let (r, w) = probe(Some((lower, mid)), &mut outcome);
        match r {
            SolveResult::Sat => {
                let (k, m) = w.unwrap();
                debug_assert!(k >= lower && k <= mid);
                best_value = k;
                best_model = m;
                opts.publish(best_value, &best_model);
                upper = k;
            }
            // UNSAT over [L, M] proves the optimum exceeds M: `L := M + 1`,
            // not the paper's misprinted `L := M` (which loops forever once
            // R = L + 1 — see `terminates_from_r_equals_l_plus_one`).
            SolveResult::Unsat => {
                lower = mid + 1;
                opts.publish_lower(lower);
            }
            SolveResult::Unknown => {
                outcome.status = MinimizeStatus::Unknown {
                    incumbent: Some((best_value, best_model)),
                };
                return outcome;
            }
            SolveResult::Interrupted => {
                outcome.status = MinimizeStatus::Interrupted {
                    incumbent: Some((best_value, best_model)),
                };
                return outcome;
            }
        }
    };

    outcome.status = if upper <= external {
        MinimizeStatus::Optimal {
            value: best_value,
            model: best_model,
        }
    } else {
        MinimizeStatus::ExternalOptimal { value: external }
    };
    if opts.certify {
        if let MinimizeStatus::Optimal { value, model } = &outcome.status {
            outcome.certificate = Some(Certificate {
                optimum: *value,
                cost_lo: cost.lo,
                witness: model.clone(),
                proofs: outcome.proofs.clone(),
            });
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Regression for the paper's §5.2 off-by-one: from the terminal state
    /// R = L + 1 (here L = 0, R = 1 with optimum 1) the probe over [L, M] =
    /// [0, 0] is UNSAT and must advance `L := M + 1 = 1` to terminate. The
    /// paper's printed `L := M` would re-probe [0, 0] forever. Pins both
    /// termination and the optimum for both modes.
    #[test]
    fn terminates_from_r_equals_l_plus_one() {
        for mode in [BinSearchMode::Incremental, BinSearchMode::Fresh] {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 1);
            p.assert(x.expr().ge(1));
            let out = p.minimize(
                x,
                &MinimizeOptions {
                    mode,
                    ..MinimizeOptions::default()
                },
            );
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 1, "{mode:?}"),
                ref s => panic!("{mode:?}: expected Optimal, got {s:?}"),
            }
            // SOLVE(φ) finds x = 1, then exactly one probe over [0, 0]
            // refutes anything cheaper. A third call would mean the search
            // revisited the refuted half.
            assert_eq!(out.solve_calls, 2, "{mode:?}");
        }
    }

    /// End-to-end certification in both modes: the optimum comes with a
    /// certificate whose DRAT refutations cover every cheaper cost value,
    /// and `verify()` accepts it. Without `certify` nothing is recorded.
    #[test]
    fn certified_optimum_verifies_in_both_modes() {
        for mode in [BinSearchMode::Incremental, BinSearchMode::Fresh] {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 100);
            p.assert(x.expr().ge(7));
            let opts = MinimizeOptions {
                mode,
                certify: true,
                ..MinimizeOptions::default()
            };
            let out = p.minimize(x, &opts);
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 7, "{mode:?}"),
                ref s => panic!("{mode:?}: expected Optimal, got {s:?}"),
            }
            let cert = out.certificate.as_ref().expect("certificate assembled");
            assert_eq!(cert.optimum, 7, "{mode:?}");
            assert_eq!(cert.cost_lo, 0, "{mode:?}");
            assert_eq!(cert.witness.int(x), 7, "{mode:?}");
            let summary = cert.verify().unwrap_or_else(|e| panic!("{mode:?}: {e}"));
            assert!(summary.windows > 0, "{mode:?}: refutations recorded");

            // Off by default: no traces, no certificate.
            let out = p.minimize(x, &MinimizeOptions::default());
            assert!(out.proofs.is_empty());
            assert!(out.certificate.is_none());
        }
    }

    /// A certified warm start whose hint is below the true optimum records
    /// the failed warm-start window too, keeping coverage gap-free.
    #[test]
    fn certified_bad_warm_start_still_covers() {
        for mode in [BinSearchMode::Incremental, BinSearchMode::Fresh] {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 50);
            p.assert(x.expr().ge(20));
            let opts = MinimizeOptions {
                mode,
                certify: true,
                initial_upper: Some(5), // infeasible hint: [0, 5] is UNSAT
                ..MinimizeOptions::default()
            };
            let out = p.minimize(x, &opts);
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 20, "{mode:?}"),
                ref s => panic!("{mode:?}: expected Optimal, got {s:?}"),
            }
            let cert = out.certificate.as_ref().expect("certificate assembled");
            cert.verify().unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        }
    }

    /// A pre-raised interrupt flag aborts before any verdict and carries no
    /// incumbent; clearing it lets the same options solve to optimality.
    #[test]
    fn interrupt_aborts_minimization() {
        let flag = Arc::new(AtomicBool::new(true));
        let mut opts = MinimizeOptions::default();
        opts.solver_config.interrupt = Some(flag.clone());

        let mut p = IntProblem::new();
        let x = p.int_var(0, 10);
        p.assert(x.expr().ge(3));
        match p.minimize(x, &opts).status {
            MinimizeStatus::Interrupted { incumbent } => assert!(incumbent.is_none()),
            ref s => panic!("expected Interrupted, got {s:?}"),
        }

        flag.store(false, Ordering::Relaxed);
        match p.minimize(x, &opts).status {
            MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 3),
            ref s => panic!("expected Optimal, got {s:?}"),
        }
    }

    /// A shared bound below the local optimum is picked up between probes:
    /// the search proves nothing cheaper exists locally and defers to the
    /// external witness.
    #[test]
    fn external_bound_short_circuits() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 100);
        p.assert(x.expr().ge(7));

        // Another "worker" already holds a model of cost 7.
        let shared = Arc::new(BoundLattice::new());
        shared.publish_upper(7);
        let opts = MinimizeOptions {
            bounds: Some(shared.clone()),
            ..MinimizeOptions::default()
        };
        match p.minimize(x, &opts).status {
            // Either the local probe also reached 7 (Optimal) or the search
            // bottomed out against the shared bound first.
            MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 7),
            MinimizeStatus::ExternalOptimal { value } => assert_eq!(value, 7),
            ref s => panic!("unexpected status {s:?}"),
        }
        // The local search must never publish anything worse than 7, and it
        // certifies the matching lower bound (UNSAT below 7).
        assert_eq!(shared.upper(), 7);
        assert!(shared.lower() <= 7);
    }

    /// An externally certified lower bound skips the cheap half outright:
    /// with `lower = optimum` pre-seeded, the search needs no refutation
    /// probes at all — one SAT call lands on the optimum and the fold
    /// closes the window.
    #[test]
    fn external_lower_bound_prunes_probes() {
        for mode in [BinSearchMode::Incremental, BinSearchMode::Fresh] {
            let mut p = IntProblem::new();
            let x = p.int_var(0, 100);
            p.assert(x.expr().ge(7));

            let shared = Arc::new(BoundLattice::new());
            shared.publish_lower(7);
            let opts = MinimizeOptions {
                mode,
                bounds: Some(shared.clone()),
                // Warm-start the incumbent at the optimum so the remaining
                // window [7, 7) is empty after the first fold.
                initial_upper: Some(7),
                ..MinimizeOptions::default()
            };
            let out = p.minimize(x, &opts);
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 7, "{mode:?}"),
                ref s => panic!("{mode:?}: expected Optimal, got {s:?}"),
            }
            assert_eq!(out.solve_calls, 1, "{mode:?}: expected a single probe");
        }
    }

    /// Bound-crossing race: the `fetch_max` lower bound overtaking the
    /// `fetch_min` upper bound must terminate the search, not loop or
    /// panic. Covers both a *pre-crossed* lattice and a crossing that lands
    /// *mid-search* (published from the incumbent callback, i.e. while the
    /// search holds a model but has not folded the lattice yet).
    #[test]
    fn bound_crossing_terminates() {
        for mode in [BinSearchMode::Incremental, BinSearchMode::Fresh] {
            // Pre-crossed: lower = 50 > upper = 3 before the search starts.
            let mut p = IntProblem::new();
            let x = p.int_var(0, 100);
            p.assert(x.expr().ge(7));
            let crossed = Arc::new(BoundLattice::with_bounds(50, 3));
            let opts = MinimizeOptions {
                mode,
                bounds: Some(crossed),
                ..MinimizeOptions::default()
            };
            // Must return; any verdict is acceptable under a (deliberately
            // unsound) pre-crossed lattice, panics and hangs are not.
            let _ = p.minimize(x, &opts);

            // Mid-search crossing: as soon as the first incumbent appears,
            // "another worker" slams the lower bound far above it.
            let lattice = Arc::new(BoundLattice::new());
            let cb_lattice = Arc::clone(&lattice);
            let opts = MinimizeOptions {
                mode,
                bounds: Some(Arc::clone(&lattice)),
                on_incumbent: Some(Arc::new(move |value, _| {
                    cb_lattice.publish_lower(value + 10);
                })),
                ..MinimizeOptions::default()
            };
            let out = p.minimize(x, &opts);
            // The next fold sees lower > upper and stops with the incumbent.
            match out.status {
                MinimizeStatus::Optimal { value, .. } => assert!(value >= 7, "{mode:?}"),
                ref s => panic!("{mode:?}: expected Optimal, got {s:?}"),
            }
        }
    }
}
