//! **Certification ablation** — what does DRAT proof logging cost, and do
//! the certificates actually check out?
//!
//! Table-3-style instances (token-ring task-set scaling), TRT objective,
//! cold start. Four modes per instance:
//!
//! - `single` — plain incremental binary search, certification **off**:
//!   the baseline the overhead column divides by (and a check that the
//!   zero-cost path stays zero-cost: no proofs, no certificate);
//! - `single+certify` — the same search with `--certify`: every probe is
//!   proof-logged, the optimum ships with a verified certificate;
//! - `portfolio+certify` — 2 deterministic racing workers, per-worker
//!   traces stitched into one certificate;
//! - `window+certify` — 2 deterministic window-search workers, the
//!   refutation region partitioned across workers and re-assembled.
//!
//! For every certified mode the harness **re-verifies** the certificate
//! itself (it does not trust the optimizer's internal check), asserts the
//! optimum matches the uncertified baseline, and records the checker's
//! workload (trace steps, RUP-verified additions). `overhead_vs_single`
//! is the wall-clock ratio against the uncertified single search — the
//! acceptance bar is < 2.5× for `single+certify`.
//!
//! Deterministic parallel modes are used so two runs of this harness
//! produce bit-identical certificates (checked in the portfolio test
//! suite); here determinism just keeps the measurement stable.
//!
//! `OPTALLOC_ABLATION_SIZES` (comma-separated task counts) overrides the
//! instance grid, e.g. `OPTALLOC_ABLATION_SIZES=12`.

use optalloc::{Objective, Optimizer, SolveOptions, Strategy};
use optalloc_bench::{parse_cli, solve_options};
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;
use serde::Serialize;
use std::time::Instant;

/// One measurement of the certification grid.
#[derive(Debug, Serialize)]
struct CertifyRow {
    instance: String,
    tasks: usize,
    /// `single`, `single+certify`, `portfolio+certify`, `window+certify`.
    mode: &'static str,
    workers: usize,
    /// Proven optimal TRT in ticks (identical across all modes — asserted).
    cost: i64,
    time_s: f64,
    solve_calls: u32,
    conflicts: u64,
    /// `time_s / time_s(single)` — the proof-logging overhead.
    overhead_vs_single: f64,
    /// Whether a certificate was produced and re-verified by this harness
    /// (always `false` for the uncertified baseline).
    certified: bool,
    /// DRAT traces in the certificate (one per contributing solver).
    proofs: usize,
    /// Certified UNSAT cost windows across all traces.
    windows: usize,
    /// Total trace steps the forward checker replayed.
    proof_steps: usize,
    /// Derived clause additions that passed the RUP check.
    adds_verified: usize,
}

fn main() {
    let cli = parse_cli();
    let ring = MediumId(0);
    let objective = Objective::TokenRotationTime(ring);
    let default_sizes: &[usize] = if cli.full { &[12, 20, 30] } else { &[12, 20] };
    let sizes: Vec<usize> = match std::env::var("OPTALLOC_ABLATION_SIZES") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => default_sizes.to_vec(),
    };
    let grid: &[(&'static str, bool, usize)] = &[
        ("single", false, 1),
        ("single+certify", true, 1),
        ("portfolio+certify", true, 2),
        ("window+certify", true, 2),
    ];

    let mut rows: Vec<CertifyRow> = Vec::new();
    for &n in &sizes {
        let w = task_scaling(n);
        let base_opts = solve_options(cli.full);
        let mut single_time = f64::NAN;
        let mut single_cost = 0i64;

        for &(mode, certify, workers) in grid {
            let opts = SolveOptions {
                certify,
                strategy: match mode {
                    "portfolio+certify" => Strategy::Portfolio {
                        workers,
                        deterministic: true,
                    },
                    "window+certify" => Strategy::WindowSearch {
                        workers,
                        deterministic: true,
                    },
                    _ => Strategy::Single,
                },
                ..base_opts.clone()
            };
            let start = Instant::now();
            let r = Optimizer::new(&w.arch, &w.tasks)
                .with_options(opts)
                .minimize(&objective)
                .unwrap_or_else(|e| panic!("{n} tasks, {mode}: {e}"));
            let total = start.elapsed().as_secs_f64();
            if mode == "single" {
                single_time = total;
                single_cost = r.cost;
                assert!(
                    r.certificate.is_none(),
                    "{n} tasks: uncertified run must not carry a certificate"
                );
            }
            assert_eq!(
                r.cost, single_cost,
                "{n} tasks: {mode} optimum diverged from the uncertified search"
            );

            let (proofs, windows, steps, adds) = match &r.certificate {
                Some(report) => {
                    // Independent re-check: don't trust the optimizer's
                    // internal verification.
                    let summary = report
                        .certificate
                        .verify()
                        .unwrap_or_else(|e| panic!("{n} tasks, {mode}: certificate rejected: {e}"));
                    (
                        summary.proofs,
                        summary.windows,
                        summary.steps,
                        summary.adds_verified,
                    )
                }
                None => {
                    assert!(!certify, "{n} tasks: {mode} produced no certificate");
                    (0, 0, 0, 0)
                }
            };
            let overhead = total / single_time;
            eprintln!(
                "{n} tasks, {mode}: TRT = {} in {total:.2}s ({overhead:.2}x single); \
                 {proofs} proof(s), {windows} window(s), {adds} RUP-checked adds",
                r.cost,
            );
            rows.push(CertifyRow {
                instance: w.name.clone(),
                tasks: n,
                mode,
                workers,
                cost: r.cost,
                time_s: total,
                solve_calls: r.solve_calls,
                conflicts: r.stats.conflicts,
                overhead_vs_single: overhead,
                certified: r.certificate.is_some(),
                proofs,
                windows,
                proof_steps: steps,
                adds_verified: adds,
            });
        }
    }

    let json = serde_json::to_string_pretty(&rows).expect("rows serialize");
    println!("{json}");
    if let Some(path) = &cli.json {
        std::fs::write(path, &json).expect("write json");
        eprintln!("(rows written to {})", path.display());
    }
}
