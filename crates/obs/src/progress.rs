//! Throttled solver progress events.
//!
//! The SAT solver's conflict loop is the hottest code in the system, so the
//! progress stream is designed around two costs:
//!
//! 1. **No hook installed** (the default): the per-conflict cost is a single
//!    `Option` branch in the solver.
//! 2. **Hook installed**: the per-conflict cost is one integer comparison
//!    ([`ProgressThrottle::due`]'s fast path); `Instant::now` and the
//!    callback run only every `every_conflicts` conflicts, further limited
//!    to one event per `min_interval_ms` of wall time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// One progress sample from a running solver. All counters are cumulative
/// for the emitting solver; rates are computed over the interval since the
/// previous event.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// Worker index, when the solver runs inside a portfolio/window search.
    pub worker: Option<usize>,
    /// Conflicts analyzed so far.
    pub conflicts: u64,
    /// Conflict rate over the last inter-event interval (per second).
    pub conflicts_per_s: f64,
    /// Propagations so far.
    pub propagations: u64,
    /// Restarts so far.
    pub restarts: u64,
    /// Learned clauses currently retained in the CORE tier.
    pub learnt_core: u64,
    /// Learned clauses currently retained in TIER2.
    pub learnt_mid: u64,
    /// Learned clauses currently retained in the LOCAL tier.
    pub learnt_local: u64,
    /// The cost window `[lo, hi]` currently being probed, when the solver
    /// runs under the `BIN_SEARCH` bisection.
    pub window: Option<(i64, i64)>,
    /// Variables removed by bounded variable elimination so far.
    pub elim_vars: u64,
}

/// A shared callback receiving [`ProgressEvent`]s. Cheap to clone; wrap in
/// `Some(..)` on `SolverConfig::progress` to subscribe.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> ProgressHook {
        ProgressHook(Arc::new(f))
    }

    /// Delivers one event.
    #[inline]
    pub fn emit(&self, ev: &ProgressEvent) {
        (self.0)(ev)
    }

    /// A hook that forwards to `f` after stamping the worker index —
    /// how a portfolio tags each worker's stream before merging.
    pub fn with_worker(&self, worker: usize) -> ProgressHook {
        let inner = self.clone();
        ProgressHook::new(move |ev| {
            let mut ev = ev.clone();
            ev.worker = Some(worker);
            inner.emit(&ev);
        })
    }
}

impl fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Decides *when* to emit: every `every_conflicts` conflicts, at most one
/// event per `min_interval_ms` of wall time.
#[derive(Debug)]
pub struct ProgressThrottle {
    every_conflicts: u64,
    min_interval_ms: u64,
    /// Conflict count at which the next (integer-only) check fires.
    next_check: u64,
    /// `(wall time, conflict count)` of the last emitted event.
    last: Option<(Instant, u64)>,
}

impl ProgressThrottle {
    /// A throttle emitting every `every_conflicts` conflicts but at most
    /// once per `min_interval_ms` milliseconds.
    pub fn new(every_conflicts: u64, min_interval_ms: u64) -> ProgressThrottle {
        let every = every_conflicts.max(1);
        ProgressThrottle {
            every_conflicts: every,
            min_interval_ms,
            next_check: every,
            last: None,
        }
    }

    /// Called once per conflict with the cumulative conflict count. Returns
    /// `Some(conflicts_per_s)` when an event should be emitted now. The
    /// fast path — almost every call — is one integer comparison.
    #[inline]
    pub fn due(&mut self, conflicts: u64) -> Option<f64> {
        if conflicts < self.next_check {
            return None;
        }
        self.due_slow(conflicts)
    }

    #[cold]
    fn due_slow(&mut self, conflicts: u64) -> Option<f64> {
        self.next_check = conflicts + self.every_conflicts;
        let now = Instant::now();
        match self.last {
            None => {
                self.last = Some((now, conflicts));
                // First event: no interval yet, report a zero rate.
                Some(0.0)
            }
            Some((t, c)) => {
                let dt = now.duration_since(t).as_secs_f64();
                if dt * 1e3 < self.min_interval_ms as f64 {
                    return None;
                }
                self.last = Some((now, conflicts));
                Some((conflicts - c) as f64 / dt.max(1e-9))
            }
        }
    }
}

/// Renders a compact single-line summary of an event — the CLI's
/// `--progress` live line.
pub fn format_progress_line(ev: &ProgressEvent) -> String {
    let worker = match ev.worker {
        Some(w) => format!("w{w} "),
        None => String::new(),
    };
    let window = match ev.window {
        Some((lo, hi)) => format!(" win=[{lo},{hi}]"),
        None => String::new(),
    };
    format!(
        "{worker}conflicts={} ({:.0}/s) restarts={} learnts={}/{}/{} elim={}{window}",
        ev.conflicts,
        ev.conflicts_per_s,
        ev.restarts,
        ev.learnt_core,
        ev.learnt_mid,
        ev.learnt_local,
        ev.elim_vars,
    )
}
