//! Whole-system feasibility validation.
//!
//! Checks an [`Allocation`] against every constraint the paper's encoding
//! enforces (§3–§4): placement permissions, separation sets, memory
//! capacities, gateway task bans, deadline-monotonic priorities (eq. 10),
//! task response times vs. deadlines (eq. 13), route existence and endpoint
//! validity (eq. 14, `v(h)`), local-deadline budgets with gateway service
//! cost, slot fit on TDMA media, and per-medium message response times with
//! jitter propagation.
//!
//! This module is the *independent oracle*: every allocation the SAT
//! optimizer emits is re-validated here before being returned, and the
//! heuristic baselines use it as their feasibility test.

use crate::msg_rta::message_response_time;
use crate::task_rta::{task_response_time, ResponseTime};
use optalloc_model::{
    endpoints_valid, gateways_along, path_exists, Allocation, Architecture, EcuId, MediumId,
    MediumKind, MsgId, TaskId, TaskSet, Time,
};

/// Analysis knobs shared by the validator and the encoder.
#[derive(Copy, Clone, Debug)]
pub struct AnalysisConfig {
    /// Include interferer release jitter in task RTA (extension; the paper's
    /// eq. 1 is jitterless).
    pub task_jitter: bool,
    /// Service cost charged per gateway crossing (the paper's `serv`
    /// contribution per hop).
    pub gateway_service: Time,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            task_jitter: false,
            gateway_service: 2,
        }
    }
}

/// One constraint violation discovered by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Task placed on an ECU outside its permission set πᵢ.
    ForbiddenPlacement(TaskId, EcuId),
    /// Task placed on a pure-gateway ECU.
    TaskOnGateway(TaskId, EcuId),
    /// Two separated (redundant) tasks share an ECU.
    SeparationViolated(TaskId, TaskId, EcuId),
    /// Sum of task memory exceeds the ECU capacity.
    MemoryOverflow(EcuId),
    /// Priorities contradict deadline-monotonic order (eq. 10).
    NotDeadlineMonotonic(TaskId, TaskId),
    /// Task response time exceeds its deadline (eq. 13).
    TaskUnschedulable(TaskId),
    /// Message route uses media not linked by gateways.
    RouteBroken(MsgId),
    /// Route endpoints inconsistent with task placement (`v(h)`).
    RouteEndpoints(MsgId),
    /// Local deadlines plus gateway service exceed the message deadline Δ.
    DeadlineBudgetExceeded(MsgId),
    /// Message response time exceeds its local deadline on a medium.
    MessageUnschedulable(MsgId, MediumId),
    /// A frame does not fit in its sender's TDMA slot.
    SlotTooSmall(MsgId, MediumId),
    /// Route visits the same medium twice.
    RouteNotSimple(MsgId),
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::ForbiddenPlacement(t, p) => write!(f, "{t} placed on forbidden {p}"),
            Violation::TaskOnGateway(t, p) => write!(f, "{t} placed on gateway-only {p}"),
            Violation::SeparationViolated(a, b, p) => {
                write!(f, "separated tasks {a} and {b} share {p}")
            }
            Violation::MemoryOverflow(p) => write!(f, "memory capacity of {p} exceeded"),
            Violation::NotDeadlineMonotonic(a, b) => {
                write!(f, "priorities of {a} and {b} contradict deadline order")
            }
            Violation::TaskUnschedulable(t) => write!(f, "{t} misses its deadline"),
            Violation::RouteBroken(m) => write!(f, "route of {m} does not exist in topology"),
            Violation::RouteEndpoints(m) => write!(f, "route endpoints of {m} invalid"),
            Violation::DeadlineBudgetExceeded(m) => {
                write!(f, "local deadlines of {m} exceed its end-to-end deadline")
            }
            Violation::MessageUnschedulable(m, k) => {
                write!(f, "{m} misses its local deadline on {k}")
            }
            Violation::SlotTooSmall(m, k) => {
                write!(f, "frame of {m} does not fit its TDMA slot on {k}")
            }
            Violation::RouteNotSimple(m) => write!(f, "route of {m} repeats a medium"),
        }
    }
}

/// The full feasibility report.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Violations found (empty ⇔ feasible).
    pub violations: Vec<Violation>,
    /// Task response times (`None` = diverged), indexed by task.
    pub task_response_times: Vec<Option<Time>>,
    /// Per-(message, medium) response times for scheduled messages.
    pub message_response_times: Vec<(MsgId, MediumId, Option<Time>)>,
}

impl Report {
    /// `true` when the allocation satisfies every constraint.
    pub fn is_feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Validates `alloc` against the complete constraint system.
pub fn validate(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    config: &AnalysisConfig,
) -> Report {
    let mut report = Report::default();
    if let Err(e) = alloc.validate_shape(tasks) {
        panic!("malformed allocation: {e}");
    }

    // Placement constraints (eq. 4) and platform restrictions.
    for (tid, t) in tasks.iter() {
        let p = alloc.ecu_of(tid);
        if !t.may_run_on(p) {
            report
                .violations
                .push(Violation::ForbiddenPlacement(tid, p));
        }
        if !arch.ecu(p).hosts_tasks {
            report.violations.push(Violation::TaskOnGateway(tid, p));
        }
        for &other in &t.separation {
            if other > tid && alloc.ecu_of(other) == p {
                report
                    .violations
                    .push(Violation::SeparationViolated(tid, other, p));
            }
        }
    }

    // Memory capacities.
    for (pid, ecu) in arch.iter_ecus() {
        if ecu.memory_capacity == u64::MAX {
            continue;
        }
        let used: u64 = tasks
            .iter()
            .filter(|&(tid, _)| alloc.ecu_of(tid) == pid)
            .map(|(_, t)| t.memory)
            .sum();
        if used > ecu.memory_capacity {
            report.violations.push(Violation::MemoryOverflow(pid));
        }
    }

    // Deadline-monotonic priority consistency (eq. 10).
    for (a, ta) in tasks.iter() {
        for (b, tb) in tasks.iter() {
            if a < b && ta.deadline < tb.deadline && !alloc.outranks(a, b) {
                report
                    .violations
                    .push(Violation::NotDeadlineMonotonic(a, b));
            }
        }
    }

    // Task response times (eq. 1, eq. 13).
    for (tid, _) in tasks.iter() {
        // Skip RTA when placement is already illegal for this task.
        if !tasks.task(tid).may_run_on(alloc.ecu_of(tid)) {
            report.task_response_times.push(None);
            continue;
        }
        match task_response_time(tasks, alloc, tid, config.task_jitter) {
            ResponseTime::Converged(r) => report.task_response_times.push(Some(r)),
            ResponseTime::ExceedsDeadline => {
                report.task_response_times.push(None);
                report.violations.push(Violation::TaskUnschedulable(tid));
            }
        }
    }

    // Messages: routes, budgets, per-medium schedulability.
    for (mid, m) in tasks.messages() {
        let route = alloc.route(mid);
        let sender_ecu = alloc.ecu_of(mid.sender);
        let receiver_ecu = alloc.ecu_of(m.to);

        // Simple path check.
        let mut media_sorted = route.media.clone();
        media_sorted.sort_unstable();
        media_sorted.dedup();
        if media_sorted.len() != route.media.len() {
            report.violations.push(Violation::RouteNotSimple(mid));
            continue;
        }
        if !path_exists(arch, &route.media) {
            report.violations.push(Violation::RouteBroken(mid));
            continue;
        }
        if !endpoints_valid(arch, &route.media, sender_ecu, receiver_ecu) {
            report.violations.push(Violation::RouteEndpoints(mid));
            continue;
        }

        // Deadline budget: Σ local deadlines + gateway service ≤ Δ.
        let service = gateways_along(arch, &route.media).len() as Time * config.gateway_service;
        let budget: Time = route.local_deadlines.iter().sum();
        if budget + service > m.deadline {
            report
                .violations
                .push(Violation::DeadlineBudgetExceeded(mid));
        }

        // Per-medium schedulability.
        for &k in &route.media {
            // Slot fit on TDMA media.
            let med = arch.medium(k);
            if let MediumKind::Tdma { slots } = &med.kind {
                let slots = alloc.effective_slots(k, slots);
                if let Some(fwd) = crate::msg_rta::forwarder(arch, alloc, mid, k) {
                    if let Some(idx) = med.members.iter().position(|&p| p == fwd) {
                        if med.transmission_time(m.size) > slots[idx] {
                            report.violations.push(Violation::SlotTooSmall(mid, k));
                        }
                    }
                }
            }
            let rt = message_response_time(arch, tasks, alloc, mid, k);
            if rt.is_none() {
                report
                    .violations
                    .push(Violation::MessageUnschedulable(mid, k));
            }
            report.message_response_times.push((mid, k, rt));
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Ecu, Medium, MessageRoute, Task};

    /// p0, p1 on a CAN bus; a on p0 sends to b on p1.
    fn feasible_system() -> (Architecture, TaskSet, Allocation) {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1));

        let mut ts = TaskSet::new();
        ts.push(
            Task::new("a", 100, 50, vec![(EcuId(0), 5), (EcuId(1), 5)]).sends(TaskId(1), 4, 30),
        );
        ts.push(Task::new("b", 100, 80, vec![(EcuId(0), 5), (EcuId(1), 5)]));

        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        *alloc.route_mut(MsgId {
            sender: TaskId(0),
            index: 0,
        }) = MessageRoute::single_hop(MediumId(0), 28);
        (arch, ts, alloc)
    }

    #[test]
    fn feasible_system_passes() {
        let (arch, ts, alloc) = feasible_system();
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report.is_feasible(), "{:?}", report.violations);
        assert_eq!(report.task_response_times, vec![Some(5), Some(5)]);
        assert_eq!(report.message_response_times.len(), 1);
        assert_eq!(report.message_response_times[0].2, Some(5));
    }

    #[test]
    fn forbidden_placement_detected() {
        let (arch, mut ts, alloc) = feasible_system();
        ts.tasks[0].wcet.remove(&EcuId(0));
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::ForbiddenPlacement(TaskId(0), EcuId(0))));
    }

    #[test]
    fn gateway_only_ecu_rejects_tasks() {
        let (mut arch, ts, alloc) = feasible_system();
        arch.ecus[0] = Ecu::new("p0").gateway_only();
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::TaskOnGateway(TaskId(0), EcuId(0))));
    }

    #[test]
    fn separation_violation_detected() {
        let (arch, mut ts, mut alloc) = feasible_system();
        ts.tasks[0].separation.insert(TaskId(1));
        ts.tasks[1].separation.insert(TaskId(0));
        alloc.placement = vec![EcuId(0), EcuId(0)];
        // Fix the route to co-located so only the separation violation fires.
        *alloc.route_mut(MsgId {
            sender: TaskId(0),
            index: 0,
        }) = MessageRoute::colocated();
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report.violations.contains(&Violation::SeparationViolated(
            TaskId(0),
            TaskId(1),
            EcuId(0)
        )));
    }

    #[test]
    fn memory_overflow_detected() {
        let (mut arch, mut ts, alloc) = feasible_system();
        arch.ecus[0] = Ecu::new("p0").with_memory(100);
        ts.tasks[0].memory = 200;
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::MemoryOverflow(EcuId(0))));
    }

    #[test]
    fn non_dm_priorities_detected() {
        let (arch, ts, mut alloc) = feasible_system();
        // a has d=50 < b's 80, so a must outrank b; swap priorities.
        alloc.priorities = vec![1, 0];
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::NotDeadlineMonotonic(TaskId(0), TaskId(1))));
    }

    #[test]
    fn broken_route_detected() {
        let (arch, ts, mut alloc) = feasible_system();
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        alloc.route_mut(msg).media = vec![MediumId(0), MediumId(0)];
        alloc.route_mut(msg).local_deadlines = vec![10, 10];
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report.violations.contains(&Violation::RouteNotSimple(msg)));
    }

    #[test]
    fn endpoint_mismatch_detected() {
        let (arch, ts, mut alloc) = feasible_system();
        // Put both tasks on p0 but keep the bus route: receiver endpoint ok
        // (p0 is on the bus), but co-located pairs routed over the bus are
        // fine per v(h) — instead move receiver off the bus is impossible
        // here, so test the colocated-route-with-split-placement case:
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute::colocated();
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        // placement is split p0/p1, but the route claims co-location.
        assert!(report.violations.contains(&Violation::RouteEndpoints(msg)));
    }

    #[test]
    fn budget_overflow_detected() {
        let (arch, ts, mut alloc) = feasible_system();
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        alloc.route_mut(msg).local_deadlines = vec![31]; // Δ = 30
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::DeadlineBudgetExceeded(msg)));
    }

    #[test]
    fn unschedulable_task_detected() {
        let (arch, mut ts, alloc) = feasible_system();
        ts.tasks[0].wcet.insert(EcuId(0), 60); // d = 50
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        assert!(report
            .violations
            .contains(&Violation::TaskUnschedulable(TaskId(0))));
        assert_eq!(report.task_response_times[0], None);
    }

    #[test]
    fn slot_fit_checked_on_tdma() {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        arch.push_medium(Medium::tdma(
            "ring",
            vec![EcuId(0), EcuId(1)],
            vec![3, 3],
            1,
            1,
        ));
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 100, 50, vec![(EcuId(0), 5)]).sends(TaskId(1), 8, 40));
        ts.push(Task::new("b", 100, 80, vec![(EcuId(1), 5)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute::single_hop(MediumId(0), 38);
        let report = validate(&arch, &ts, &alloc, &AnalysisConfig::default());
        // ρ = 1 + 8 = 9 > slot 3.
        assert!(report
            .violations
            .contains(&Violation::SlotTooSmall(msg, MediumId(0))));
    }
}
