//! Property tests for the heuristic baselines: results are always
//! shape-valid, energies are consistent with the independent analysis, and
//! the documented quality ordering holds where everything is feasible.

use optalloc_analysis::{validate, AnalysisConfig};
use optalloc_heuristics::{
    anneal, energy, greedy, HeuristicObjective, SaParams, VIOLATION_PENALTY,
};
use optalloc_model::MediumId;
use optalloc_workloads::{generate, GenParams};
use proptest::prelude::*;

fn params(seed: u64, n_tasks: usize, token_ring: bool) -> GenParams {
    GenParams {
        name: format!("hprop-{seed}"),
        n_tasks,
        n_chains: (n_tasks / 3).max(1),
        n_ecus: 3,
        seed,
        utilization: 0.35,
        restricted_fraction: 0.25,
        redundant_pairs: 1,
        token_ring,
        deadline_slack: 1.5,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every annealing result is shape-valid, and its reported energy
    /// equals an independent re-evaluation.
    #[test]
    fn sa_results_are_consistent(seed in 0u64..1000, n_tasks in 5usize..10) {
        let w = generate(&params(seed, n_tasks, true));
        let objective = HeuristicObjective::TokenRotationTime(MediumId(0));
        let sa = anneal(&w.arch, &w.tasks, &objective, &SaParams {
            seed,
            restarts: 2,
            iters_per_stage: 60,
            stages: 15,
            max_slot: 16,
            ..Default::default()
        });
        prop_assert!(sa.allocation.validate_shape(&w.tasks).is_ok());
        let (e, report) = energy(
            &w.arch, &w.tasks, &sa.allocation, &objective,
            &AnalysisConfig::default(),
        );
        prop_assert_eq!(e, sa.energy, "reported energy out of sync");
        prop_assert_eq!(report.is_feasible(), sa.feasible);
        if sa.feasible {
            prop_assert!(sa.energy < VIOLATION_PENALTY);
        }
    }

    /// Greedy is shape-valid and honest about feasibility.
    #[test]
    fn greedy_results_are_consistent(seed in 0u64..1000, n_tasks in 5usize..10) {
        let w = generate(&params(seed, n_tasks, false));
        let objective = HeuristicObjective::MaxUtilizationPermille;
        let g = greedy(&w.arch, &w.tasks, &objective);
        prop_assert!(g.allocation.validate_shape(&w.tasks).is_ok());
        let report = validate(
            &w.arch, &w.tasks, &g.allocation, &AnalysisConfig::default(),
        );
        prop_assert_eq!(report.is_feasible(), g.feasible);
    }

    /// On generated instances the planted witness exists, so a feasible SA
    /// outcome must never beat it by violating constraints: feasible SA
    /// energies are pure objective values.
    #[test]
    fn sa_feasible_energy_is_objective(seed in 0u64..500) {
        let w = generate(&params(seed, 8, true));
        let objective = HeuristicObjective::SumTokenRotationTimes;
        let sa = anneal(&w.arch, &w.tasks, &objective, &SaParams {
            seed,
            restarts: 2,
            iters_per_stage: 80,
            stages: 20,
            max_slot: 16,
            ..Default::default()
        });
        if sa.feasible {
            prop_assert_eq!(sa.energy, sa.objective);
        }
    }
}
