//! Integration tests for hierarchical architectures (paper §4): multi-hop
//! routing through gateways, path-closure selection, local deadline
//! budgets, jitter propagation and gateway service cost.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_model::Task;
use optalloc_model::{gateways_along, Architecture, Ecu, EcuId, Medium, MsgId, TaskId, TaskSet};

/// Two CAN buses joined by a dedicated gateway: p0,p1 on k0; p2,p3 on k1;
/// gw (p4) on both.
fn two_bus_arch() -> Architecture {
    let mut arch = Architecture::new();
    for i in 0..4 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_ecu(Ecu::new("gw").gateway_only());
    arch.push_medium(Medium::priority(
        "k0",
        vec![EcuId(0), EcuId(1), EcuId(4)],
        1,
        1,
    ));
    arch.push_medium(Medium::priority(
        "k1",
        vec![EcuId(2), EcuId(3), EcuId(4)],
        1,
        1,
    ));
    arch
}

#[test]
fn message_crosses_gateway_when_forced() {
    let arch = two_bus_arch();
    let mut tasks = TaskSet::new();
    // Sender restricted to bus k0, receiver to bus k1 → 2-hop route forced.
    tasks.push(Task::new("src", 200, 200, vec![(EcuId(0), 10)]).sends(TaskId(1), 4, 100));
    tasks.push(Task::new("dst", 200, 180, vec![(EcuId(2), 10)]));

    let sol = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    let msg = MsgId {
        sender: TaskId(0),
        index: 0,
    };
    let route = sol.allocation.route(msg);
    assert_eq!(route.media.len(), 2, "route: {route:?}");
    assert_eq!(gateways_along(&arch, &route.media), vec![EcuId(4)]);
    // Budget: Σ local deadlines + gateway service (2) ≤ Δ (100).
    let budget: u64 = route.local_deadlines.iter().sum();
    assert!(budget + 2 <= 100);
    assert!(sol.report.is_feasible());
}

#[test]
fn colocation_preferred_under_bus_load_objective() {
    let arch = two_bus_arch();
    let mut tasks = TaskSet::new();
    // Both tasks can live anywhere; minimizing k0 load should avoid k0.
    let everywhere = vec![
        (EcuId(0), 10),
        (EcuId(1), 10),
        (EcuId(2), 10),
        (EcuId(3), 10),
    ];
    tasks.push(Task::new("src", 200, 200, everywhere.clone()).sends(TaskId(1), 4, 100));
    tasks.push(Task::new("dst", 200, 180, everywhere));

    let k0 = optalloc_model::MediumId(0);
    let result = Optimizer::new(&arch, &tasks)
        .minimize(&Objective::BusLoadPermille(k0))
        .unwrap();
    assert_eq!(result.cost, 0);
    assert!(result.solution.report.is_feasible());
}

#[test]
fn gateway_only_node_hosts_no_tasks() {
    let arch = two_bus_arch();
    let mut tasks = TaskSet::new();
    // The task *claims* it can run on the gateway; the platform forbids it.
    tasks.push(Task::new("t", 100, 100, vec![(EcuId(4), 5), (EcuId(0), 5)]));
    let sol = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    assert_eq!(sol.allocation.ecu_of(TaskId(0)), EcuId(0));
}

#[test]
fn infeasible_when_only_gateway_is_allowed() {
    let arch = two_bus_arch();
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("t", 100, 100, vec![(EcuId(4), 5)]));
    match Optimizer::new(&arch, &tasks).find_feasible() {
        Err(optalloc::OptError::Infeasible) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn three_bus_chain_routes_over_two_gateways() {
    // k0 -gw4- k1 -gw5- k2 with hosts on the ends only.
    let mut arch = Architecture::new();
    for i in 0..4 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_ecu(Ecu::new("gw4").gateway_only());
    arch.push_ecu(Ecu::new("gw5").gateway_only());
    arch.push_medium(Medium::priority(
        "k0",
        vec![EcuId(0), EcuId(1), EcuId(4)],
        1,
        1,
    ));
    arch.push_medium(Medium::priority("k1", vec![EcuId(4), EcuId(5)], 1, 1));
    arch.push_medium(Medium::priority(
        "k2",
        vec![EcuId(2), EcuId(3), EcuId(5)],
        1,
        1,
    ));

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("src", 400, 400, vec![(EcuId(0), 10)]).sends(TaskId(1), 4, 200));
    tasks.push(Task::new("dst", 400, 350, vec![(EcuId(3), 10)]));

    let sol = Optimizer::new(&arch, &tasks).find_feasible().unwrap();
    let route = sol.allocation.route(MsgId {
        sender: TaskId(0),
        index: 0,
    });
    assert_eq!(route.media.len(), 3);
    assert_eq!(
        gateways_along(&arch, &route.media),
        vec![EcuId(4), EcuId(5)]
    );
    assert!(sol.report.is_feasible());
}

#[test]
fn tdma_ring_pair_with_sum_trt_objective() {
    // Two token rings sharing a task-hosting gateway (architecture C shape).
    let mut arch = Architecture::new();
    for i in 0..5 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_medium(Medium::tdma(
        "ring0",
        vec![EcuId(0), EcuId(1), EcuId(2)],
        vec![8, 8, 8],
        1,
        1,
    ));
    arch.push_medium(Medium::tdma(
        "ring1",
        vec![EcuId(0), EcuId(3), EcuId(4)],
        vec![8, 8, 8],
        1,
        1,
    ));

    let mut tasks = TaskSet::new();
    // One forced crossing on ring0 (p1 → p2), everything else free.
    tasks.push(Task::new("a", 300, 300, vec![(EcuId(1), 10)]).sends(TaskId(1), 4, 150));
    tasks.push(Task::new("b", 300, 250, vec![(EcuId(2), 10)]));
    tasks.push(Task::new(
        "c",
        300,
        200,
        vec![(EcuId(3), 10), (EcuId(4), 10)],
    ));

    let result = Optimizer::new(&arch, &tasks)
        .with_options(SolveOptions {
            max_slot: 16,
            ..Default::default()
        })
        .minimize(&Objective::SumTokenRotationTimes)
        .unwrap();
    // ring0 needs the 5-tick frame from p1's slot + two 1-tick slots = 7;
    // ring1 carries nothing: 3 × 1 = 3. Total 10.
    assert_eq!(result.cost, 10);
    assert!(result.solution.report.is_feasible());
}
