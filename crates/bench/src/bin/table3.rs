//! **Table 3** — complexity vs. task-set size.
//!
//! Paper: partitions of the \[5\] benchmark with 7 / 12 / 20 / 30 / 43 tasks
//! on 8 ECUs; runtime blows up almost exponentially in the task count
//! because the number of formulae (pairwise preemption constraints) grows
//! quadratically and the decision space exponentially.
//!
//! Quick mode runs the 7/12/20-task partitions; `--full` adds 30 and 43.

use optalloc::{Objective, Optimizer};
use optalloc_bench::{emit, parse_cli, solve_options, Row};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_workloads::{task_scaling, TABLE3_TASKS};

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();

    let sizes: &[usize] = if cli.full {
        &TABLE3_TASKS
    } else {
        &TABLE3_TASKS[..3]
    };

    for &n in sizes {
        let w = task_scaling(n);
        let result = Optimizer::new(&w.arch, &w.tasks)
            .with_options(solve_options(cli.full))
            .minimize(&Objective::TokenRotationTime(MediumId(0)));
        match result {
            Ok(r) => rows.push(Row::from_report(
                format!("{n} tasks"),
                &r,
                format!("TRT = {:.2}ms", ticks_to_ms(r.cost as u64)),
            )),
            Err(optalloc::OptError::Budget { incumbent }) => rows.push(Row {
                experiment: format!("{n} tasks"),
                result: match incumbent {
                    Some((c, _)) => format!("≤ {:.2}ms (budget)", ticks_to_ms(c as u64)),
                    None => "budget exhausted".into(),
                },
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: "conflict budget hit; rerun with --full".into(),
            }),
            Err(e) => rows.push(Row {
                experiment: format!("{n} tasks"),
                result: format!("{e}"),
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: String::new(),
            }),
        }
    }

    emit(
        "Table 3: complexity vs task-set size (8-ECU token ring, TRT objective)",
        &rows,
        &cli,
    );
    println!(
        "paper: 7→43 tasks: 23s → 48min, 5k→174k var, 22k→995k lit \
         (near-exponential growth in tasks)"
    );
}
