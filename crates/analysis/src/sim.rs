//! Discrete-event simulation of preemptive fixed-priority scheduling from
//! the critical instant.
//!
//! Releases every task on one ECU simultaneously at `t = 0` (the critical
//! instant), runs an exact preemptive fixed-priority processor, and records
//! the completion time of each task's **first job**. By the classic
//! busy-period argument this equals the response-time fixed point of
//! eq. (1), giving an independent oracle for the analytical RTA — used by
//! the property tests.

use optalloc_model::{Allocation, EcuId, TaskId, TaskSet, Time};

/// Simulates one ECU from the critical instant until every first job placed
/// there finished or `horizon` elapsed. Returns first-job completion times
/// (`None` = not finished by the horizon), indexed by task id (tasks on
/// other ECUs get `None`).
pub fn simulate_critical_instant(
    tasks: &TaskSet,
    alloc: &Allocation,
    ecu: EcuId,
    horizon: Time,
) -> Vec<Option<Time>> {
    let local: Vec<TaskId> = alloc.tasks_on(ecu); // priority order, highest first
    let remaining: Vec<Time> = local
        .iter()
        .map(|&t| tasks.task(t).wcet_on(ecu).expect("placement must be legal"))
        .collect();
    let mut next_release: Vec<Time> = vec![0; local.len()];
    let mut pending: Vec<Time> = vec![0; local.len()]; // outstanding work
    let mut first_done: Vec<Option<Time>> = vec![None; tasks.len()];
    let mut first_job_left: Vec<Time> = remaining.clone();

    // Event-step simulation in unit ticks would be slow for long horizons;
    // instead advance from event to event (releases and completions).
    let mut now: Time = 0;
    // Initial releases at t = 0 happen in the loop below.
    while now < horizon {
        // Process releases due at `now`.
        for (i, _) in local.iter().enumerate() {
            while next_release[i] <= now {
                pending[i] += remaining[i];
                next_release[i] += tasks.task(local[i]).period;
            }
        }
        // Highest-priority task with pending work.
        let running = (0..local.len()).find(|&i| pending[i] > 0);
        let next_rel = next_release.iter().copied().min().unwrap_or(horizon);
        match running {
            None => {
                // Idle until the next release (or horizon).
                if local.iter().all(|&t| first_done[t.index()].is_some()) {
                    break;
                }
                now = next_rel.min(horizon);
            }
            Some(i) => {
                // Run task i until it finishes its current work or a release
                // occurs (releases can only preempt via higher priority, but
                // re-evaluating at each release is simplest and exact).
                let finish_at = now + pending[i].min(first_job_left[i].max(1));
                let step_end = finish_at.min(next_rel).min(horizon);
                let ran = step_end - now;
                pending[i] -= ran;
                if first_done[local[i].index()].is_none() {
                    first_job_left[i] = first_job_left[i].saturating_sub(ran);
                    if first_job_left[i] == 0 {
                        first_done[local[i].index()] = Some(step_end);
                    }
                }
                now = step_end;
                if local.iter().all(|&t| first_done[t.index()].is_some()) {
                    break;
                }
            }
        }
    }
    first_done
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task_rta::all_task_response_times;
    use optalloc_model::{Allocation, Task, TaskSet};

    #[test]
    fn simulation_matches_rta_on_classic_set() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("t1", 4, 4, w(1)));
        ts.push(Task::new("t2", 6, 6, w(2)));
        ts.push(Task::new("t3", 12, 12, w(3)));
        let alloc = Allocation::skeleton(&ts);
        let sim = simulate_critical_instant(&ts, &alloc, EcuId(0), 1000);
        let rta = all_task_response_times(&ts, &alloc, false);
        assert_eq!(sim, rta);
        assert_eq!(sim, vec![Some(1), Some(3), Some(10)]);
    }

    #[test]
    fn simulation_handles_idle_gaps() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("quick", 10, 10, w(1)));
        let alloc = Allocation::skeleton(&ts);
        let sim = simulate_critical_instant(&ts, &alloc, EcuId(0), 100);
        assert_eq!(sim, vec![Some(1)]);
    }

    #[test]
    fn horizon_limits_unfinished_jobs() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("hog", 5, 5, w(5))); // 100% load
        ts.push(Task::new("starved", 100, 100, w(1)));
        let alloc = Allocation::skeleton(&ts);
        let sim = simulate_critical_instant(&ts, &alloc, EcuId(0), 50);
        assert_eq!(sim[0], Some(5));
        assert_eq!(sim[1], None); // never gets the CPU
    }
}
