//! **§5.1 ablation** — pseudo-Boolean vs pure-CNF gate encodings, and the
//! paper-literal eq. (7) product vs per-ECU case-split preemption costs.
//!
//! The paper keeps the encoding "compact" by emitting pseudo-Boolean
//! constraints (e.g. a full-adder carry as two PB inequalities instead of
//! six clauses). This harness quantifies the difference on real allocation
//! encodings: constraint counts, literal counts and solve time per
//! backend × product-encoding combination.

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_bench::{emit, parse_cli, Row};
use optalloc_intopt::Backend;
use optalloc_model::MediumId;
use optalloc_workloads::task_scaling;

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();
    let sizes: &[usize] = if cli.full { &[12, 20] } else { &[7, 12] };

    for &n in sizes {
        let w = task_scaling(n);
        for backend in [Backend::Cnf, Backend::PseudoBoolean] {
            for product_elimination in [false, true] {
                let opts = SolveOptions {
                    backend,
                    product_elimination,
                    max_slot: 48,
                    max_conflicts: if cli.full { None } else { Some(5_000_000) },
                    ..Default::default()
                };
                let label = format!(
                    "{n} tasks, {}{}",
                    match backend {
                        Backend::Cnf => "CNF",
                        Backend::PseudoBoolean => "PB",
                    },
                    if product_elimination {
                        " + case-split"
                    } else {
                        ""
                    }
                );
                match Optimizer::new(&w.arch, &w.tasks)
                    .with_options(opts)
                    .minimize(&Objective::TokenRotationTime(MediumId(0)))
                {
                    Ok(r) => rows.push(Row {
                        note: format!(
                            "{} constraints, {} conflicts",
                            r.encode.constraints, r.stats.conflicts
                        ),
                        ..Row::from_report(label, &r, format!("TRT = {}", r.cost))
                    }),
                    Err(e) => rows.push(Row {
                        experiment: label,
                        result: format!("{e}"),
                        time_s: 0.0,
                        vars_k: 0.0,
                        lits_k: 0.0,
                        note: String::new(),
                    }),
                }
            }
        }
    }

    emit(
        "§5.1 ablation: CNF vs pseudo-Boolean encodings (same optima required)",
        &rows,
        &cli,
    );
    println!(
        "expected: identical optima everywhere; PB strictly fewer constraints \
         than CNF for the same instance"
    );
}
