//! Cross-solver learned-clause exchange.
//!
//! A bounded, lock-free broadcast ring for sharing *short* learned clauses
//! between cooperating solvers that work on the **same base encoding** —
//! the multi-thread analogue of the paper's §7 incremental learned-clause
//! reuse. Portfolio / window-search workers solve near-identical formulas
//! (one shared encoding plus per-probe bound assumptions), so a clause one
//! worker learns prunes the others' searches too.
//!
//! ## Protocol
//!
//! The ring holds [`EXCHANGE_SLOTS`] fixed-capacity slots. Writers claim a
//! slot with a single `fetch_add` on the head counter and publish with a
//! seqlock: the slot's sequence word is set to an *odd* value while the
//! literals are written and to the even value `2·pos + 2` once the slot is
//! consistent. Readers keep a private cursor, validate the sequence word
//! before **and** after copying the literals, and simply skip slots that a
//! faster writer has recycled in the meantime. Nobody ever blocks: a
//! writer that loses the claim race drops its clause (sharing is
//! best-effort), a reader that observes a torn slot skips it.
//!
//! ## Soundness contract
//!
//! Only clauses that are logical consequences of the **shared base
//! encoding** may be published. CDCL learned clauses are consequences of
//! the clause database (never of the assumptions), but the database also
//! holds solver-local bound clauses guarded by local variables; the
//! [`crate::SolverConfig::share_var_limit`] filter therefore admits only
//! clauses whose variables all lie inside the base encoding — any clause
//! depending on a guarded bound carries the guard literal and is filtered
//! out (guards are allocated above the base range, and closed guards enter
//! the database only as negative units, so assigning every guard false
//! extends any base model to a database model).

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

use crate::types::Lit;

/// Number of slots in the broadcast ring.
pub const EXCHANGE_SLOTS: usize = 4096;

/// Hard cap on the length of a shareable clause (slot capacity).
pub const MAX_SHARED_LITS: usize = 8;

struct Slot {
    /// Seqlock word: `0` = never written, odd = write in progress,
    /// `2·pos + 2` = published by the claim of ring position `pos`.
    seq: AtomicU64,
    /// Id of the publishing worker, so readers can skip their own clauses.
    writer: AtomicU32,
    len: AtomicU32,
    lits: [AtomicU32; MAX_SHARED_LITS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            writer: AtomicU32::new(u32::MAX),
            len: AtomicU32::new(0),
            lits: Default::default(),
        }
    }
}

/// A bounded lock-free clause broadcast ring (see the module docs).
pub struct ClauseExchange {
    slots: Vec<Slot>,
    /// Total clauses ever claimed; `head % slots.len()` is the next slot.
    head: AtomicU64,
}

impl std::fmt::Debug for ClauseExchange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClauseExchange")
            .field("slots", &self.slots.len())
            .field("published", &self.published())
            .finish()
    }
}

impl Default for ClauseExchange {
    fn default() -> ClauseExchange {
        ClauseExchange::new()
    }
}

impl ClauseExchange {
    /// Creates an empty exchange with the default ring capacity.
    pub fn new() -> ClauseExchange {
        ClauseExchange {
            slots: (0..EXCHANGE_SLOTS).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of clauses ever published (including since-recycled ones).
    pub fn published(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Publishes a clause. Returns `false` when the clause is too long for
    /// a slot or the claim race was lost (both are fine — sharing is
    /// best-effort, never load-bearing).
    pub fn publish(&self, writer: u32, lits: &[Lit]) -> bool {
        if lits.is_empty() || lits.len() > MAX_SHARED_LITS {
            return false;
        }
        let pos = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(pos % self.slots.len() as u64) as usize];
        // Claim: flip the sequence word odd. If it was already odd another
        // writer is mid-publish on a recycled claim; walk away.
        let prev = slot.seq.fetch_or(1, Ordering::Acquire);
        if prev & 1 == 1 {
            return false;
        }
        slot.writer.store(writer, Ordering::Relaxed);
        slot.len.store(lits.len() as u32, Ordering::Relaxed);
        for (cell, &l) in slot.lits.iter().zip(lits) {
            cell.store(l.index() as u32, Ordering::Relaxed);
        }
        slot.seq.store(2 * pos + 2, Ordering::Release);
        true
    }

    /// Drains clauses published since `cursor` (as returned by the previous
    /// call), skipping those written by `reader`. Clauses that were
    /// recycled before the reader got to them are silently lost; the
    /// returned cursor always catches up with the head.
    pub fn drain(&self, reader: u32, cursor: u64, mut sink: impl FnMut(&[Lit])) -> u64 {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        // Anything older than one full ring revolution is gone.
        let start = cursor.max(head.saturating_sub(cap));
        let mut buf = [Lit::from_index(0); MAX_SHARED_LITS];
        for pos in start..head {
            let slot = &self.slots[(pos % cap) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * pos + 2 {
                continue; // unpublished, torn, or already recycled
            }
            if slot.writer.load(Ordering::Relaxed) == reader {
                continue;
            }
            let len = (slot.len.load(Ordering::Relaxed) as usize).min(MAX_SHARED_LITS);
            for (dst, cell) in buf[..len].iter_mut().zip(&slot.lits) {
                *dst = Lit::from_index(cell.load(Ordering::Relaxed) as usize);
            }
            // Seqlock validation: a writer recycling the slot mid-copy
            // changes the sequence word; reject the torn read.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) == seq {
                sink(&buf[..len]);
            }
        }
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Var;
    use std::sync::Arc;

    fn clause(ids: &[usize]) -> Vec<Lit> {
        ids.iter()
            .map(|&i| Var::from_index(i / 2).lit(i % 2 == 0))
            .collect()
    }

    #[test]
    fn publish_then_drain_roundtrip() {
        let ex = ClauseExchange::new();
        assert!(ex.publish(0, &clause(&[2, 5, 9])));
        assert!(ex.publish(0, &clause(&[4])));
        let mut seen: Vec<Vec<Lit>> = Vec::new();
        let cursor = ex.drain(1, 0, |c| seen.push(c.to_vec()));
        assert_eq!(cursor, 2);
        assert_eq!(seen, vec![clause(&[2, 5, 9]), clause(&[4])]);
        // A second drain from the returned cursor sees nothing new.
        let mut again = 0;
        ex.drain(1, cursor, |_| again += 1);
        assert_eq!(again, 0);
    }

    #[test]
    fn own_clauses_are_skipped() {
        let ex = ClauseExchange::new();
        ex.publish(7, &clause(&[2, 4]));
        ex.publish(3, &clause(&[6, 8]));
        let mut seen = 0;
        ex.drain(7, 0, |_| seen += 1);
        assert_eq!(seen, 1);
    }

    #[test]
    fn oversized_clauses_are_rejected() {
        let ex = ClauseExchange::new();
        let long: Vec<Lit> = (0..MAX_SHARED_LITS + 1)
            .map(|i| Var::from_index(i).positive())
            .collect();
        assert!(!ex.publish(0, &long));
        assert!(!ex.publish(0, &[]));
        assert_eq!(ex.published(), 0);
    }

    #[test]
    fn ring_wrap_around_drops_oldest_keeps_newest() {
        let ex = ClauseExchange::new();
        let extra = 100usize;
        for i in 0..EXCHANGE_SLOTS + extra {
            assert!(ex.publish(0, &clause(&[2 * i])));
        }
        // A reader whose cursor predates the last full revolution only sees
        // the surviving ring contents: exactly the newest EXCHANGE_SLOTS
        // clauses, in publication order.
        let mut seen: Vec<usize> = Vec::new();
        let cursor = ex.drain(1, 0, |c| seen.push(c[0].var().index()));
        assert_eq!(cursor, (EXCHANGE_SLOTS + extra) as u64);
        assert_eq!(seen.len(), EXCHANGE_SLOTS);
        assert_eq!(seen.first().copied(), Some(extra));
        assert_eq!(seen.last().copied(), Some(EXCHANGE_SLOTS + extra - 1));
        assert!(seen.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn share_var_limit_gates_the_export_path() {
        use crate::solver::{SolveResult, Solver, SolverConfig};

        // Pigeonhole 5→4: UNSAT, learns plenty of short clauses.
        fn build(solver: &mut Solver) {
            let vars: Vec<Vec<crate::types::Var>> = (0..5)
                .map(|_| (0..4).map(|_| solver.new_var()).collect())
                .collect();
            for p in &vars {
                let cl: Vec<Lit> = p.iter().map(|v| v.positive()).collect();
                solver.add_clause(&cl);
            }
            #[allow(clippy::needless_range_loop)] // h indexes two different rows at once
            for h in 0..4 {
                for a in 0..5 {
                    for b in a + 1..5 {
                        solver.add_clause(&[vars[a][h].negative(), vars[b][h].negative()]);
                    }
                }
            }
        }

        let run = |limit: usize| {
            let ex = Arc::new(ClauseExchange::new());
            let mut solver = Solver::new();
            solver.config = SolverConfig {
                exchange: Some(Arc::clone(&ex)),
                share_writer: 0,
                share_var_limit: limit,
                ..SolverConfig::default()
            };
            build(&mut solver);
            assert_eq!(solver.solve(&[]), SolveResult::Unsat);
            (solver.stats.exported, ex)
        };

        // The default limit of 0 exports nothing.
        let (exported, ex) = run(0);
        assert_eq!(exported, 0);
        assert_eq!(ex.published(), 0);

        // With the limit at the full encoding size, short clauses flow.
        let (exported, ex) = run(20);
        assert!(exported > 0);
        assert_eq!(ex.published(), exported);

        // A partial limit: everything drained respects it.
        let (_, ex) = run(10);
        ex.drain(u32::MAX, 0, |c| {
            assert!(c.iter().all(|l| l.var().index() < 10));
        });
    }

    #[test]
    fn two_thread_torn_reads_are_rejected() {
        // One writer recycling the ring at full speed, one reader draining
        // concurrently: every clause the reader accepts must be internally
        // consistent (all lits share one variable tag, length derived from
        // it), i.e. the seqlock validation rejected every torn slot.
        let ex = Arc::new(ClauseExchange::new());
        let writer = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || {
                for i in 0..20 * EXCHANGE_SLOTS {
                    let len = i % MAX_SHARED_LITS + 1;
                    let l = Var::from_index(i).positive();
                    let lits = vec![l; len];
                    ex.publish(0, &lits);
                }
            })
        };
        let reader = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut seen = 0usize;
                for _ in 0..400 {
                    cursor = ex.drain(1, cursor, |c| {
                        let tag = c[0].var().index();
                        assert_eq!(c.len(), tag % MAX_SHARED_LITS + 1, "torn length");
                        assert!(
                            c.iter().all(|&l| l == Lit::from_index(2 * tag)),
                            "torn literal mix"
                        );
                        seen += 1;
                    });
                    std::thread::yield_now();
                }
                seen
            })
        };
        writer.join().unwrap();
        assert!(reader.join().unwrap() > 0);
    }

    #[test]
    fn concurrent_publish_drain_is_safe_and_untorn() {
        let ex = Arc::new(ClauseExchange::new());
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let ex = Arc::clone(&ex);
                std::thread::spawn(move || {
                    for i in 0..5_000usize {
                        // Every published clause has lits [k, k+1, k+2]
                        // for k = 3·i, so a torn read is detectable.
                        let k = 3 * i;
                        ex.publish(w, &clause(&[2 * k, 2 * (k + 1), 2 * (k + 2)]));
                    }
                })
            })
            .collect();
        let reader = {
            let ex = Arc::clone(&ex);
            std::thread::spawn(move || {
                let mut cursor = 0;
                let mut seen = 0usize;
                for _ in 0..200 {
                    cursor = ex.drain(u32::MAX, cursor, |c| {
                        assert_eq!(c.len(), 3, "torn length");
                        let base = c[0].var().index();
                        assert_eq!(c[1].var().index(), base + 1, "torn clause");
                        assert_eq!(c[2].var().index(), base + 2, "torn clause");
                        seen += 1;
                    });
                    std::thread::yield_now();
                }
                seen
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        assert!(reader.join().unwrap() > 0);
    }
}
