//! Agreement property: on random optimization instances, the paper's two
//! `BIN_SEARCH` modes (each with the encoder optimization layer on and
//! off), the portfolio (deterministic and racing), the parallel window
//! search (deterministic and racing), and every point of the search-engine
//! grid (restart policy × tiered DB × vivification) all prove the same
//! optimal cost — neither parallel flavour, the optimized encoder, nor any
//! search-core axis trades correctness for speed.

use optalloc_intopt::{
    BinSearchMode, BoolExpr, EncoderOpt, IntExpr, IntProblem, IntVar, MinimizeOptions,
    MinimizeStatus, RestartPolicy, SearchEngine,
};
use optalloc_portfolio::{minimize_portfolio, minimize_window_search, PortfolioOptions};
use proptest::prelude::*;

/// Recipe for a random affine-ish expression over 3 variables.
#[derive(Debug, Clone)]
enum ExprRecipe {
    Var(usize),
    Const(i64),
    Add(Box<ExprRecipe>, Box<ExprRecipe>),
    Mul(Box<ExprRecipe>, Box<ExprRecipe>),
}

fn build(recipe: &ExprRecipe, vars: &[IntVar]) -> IntExpr {
    match recipe {
        ExprRecipe::Var(i) => vars[i % vars.len()].expr(),
        ExprRecipe::Const(v) => IntExpr::constant(*v),
        ExprRecipe::Add(a, b) => build(a, vars) + build(b, vars),
        ExprRecipe::Mul(a, b) => build(a, vars) * build(b, vars),
    }
}

fn arb_expr() -> impl Strategy<Value = ExprRecipe> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(ExprRecipe::Var),
        (0i64..=4).prop_map(ExprRecipe::Const),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| ExprRecipe::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| ExprRecipe::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

/// Optimal cost per strategy, `None` for infeasible. Panics on any
/// non-decisive verdict (no budgets or interrupts are configured here).
fn optimum_single(
    p: &IntProblem,
    cost: IntVar,
    mode: BinSearchMode,
    encoder_opt: EncoderOpt,
) -> Option<i64> {
    let out = p.minimize(
        cost,
        &MinimizeOptions {
            mode,
            encoder_opt,
            ..MinimizeOptions::default()
        },
    );
    match out.status {
        MinimizeStatus::Optimal { value, .. } => Some(value),
        MinimizeStatus::Infeasible => None,
        ref s => panic!("{mode:?} ({encoder_opt:?}): unexpected {s:?}"),
    }
}

/// Optimal cost under one search-engine configuration (incremental mode,
/// which exercises the engine across re-solves under assumptions).
fn optimum_engine(p: &IntProblem, cost: IntVar, engine: SearchEngine) -> Option<i64> {
    let mut opts = MinimizeOptions {
        mode: BinSearchMode::Incremental,
        ..MinimizeOptions::default()
    };
    engine.configure(&mut opts.solver_config);
    let out = p.minimize(cost, &opts);
    match out.status {
        MinimizeStatus::Optimal { value, .. } => Some(value),
        MinimizeStatus::Infeasible => None,
        ref s => panic!("engine {}: unexpected {s:?}", engine.label()),
    }
}

fn optimum_portfolio(p: &IntProblem, cost: IntVar, deterministic: bool) -> Option<i64> {
    let out = minimize_portfolio(
        p,
        cost,
        &PortfolioOptions {
            workers: 4,
            deterministic,
            ..PortfolioOptions::default()
        },
    );
    match out.status {
        MinimizeStatus::Optimal { value, ref model } => {
            // The witnessing model must attain the claimed cost.
            assert_eq!(
                model.int(cost),
                value,
                "witness does not attain the optimum"
            );
            Some(value)
        }
        MinimizeStatus::Infeasible => None,
        ref s => panic!("portfolio(det={deterministic}): unexpected {s:?}"),
    }
}

fn optimum_window(p: &IntProblem, cost: IntVar, deterministic: bool) -> Option<i64> {
    let out = minimize_window_search(
        p,
        cost,
        &PortfolioOptions {
            workers: 4,
            deterministic,
            ..PortfolioOptions::default()
        },
    );
    match out.status {
        MinimizeStatus::Optimal { value, ref model } => {
            assert_eq!(
                model.int(cost),
                value,
                "window-search witness does not attain the optimum"
            );
            Some(value)
        }
        MinimizeStatus::Infeasible => None,
        ref s => panic!("window(det={deterministic}): unexpected {s:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_strategies_agree_on_the_optimum(
        objective in arb_expr(),
        bound in 2i64..=10,
        sum_lo in 0i64..=8,
    ) {
        let mut p = IntProblem::new();
        let vars: Vec<IntVar> = (0..3).map(|_| p.int_var(0, bound)).collect();
        let exprs: Vec<BoolExpr> = vec![
            vars.iter().fold(IntExpr::constant(0), |a, v| a + v.expr()).ge(sum_lo),
        ];
        for e in &exprs {
            p.assert(e.clone());
        }
        let obj = build(&objective, &vars);
        let (_, obj_hi) = obj.range();
        let cost = p.int_var(0, obj_hi.max(0));
        p.assert(cost.expr().eq(obj));

        let fresh = optimum_single(&p, cost, BinSearchMode::Fresh, EncoderOpt::default());
        let incremental =
            optimum_single(&p, cost, BinSearchMode::Incremental, EncoderOpt::default());
        let fresh_unopt = optimum_single(&p, cost, BinSearchMode::Fresh, EncoderOpt::none());
        let incremental_unopt =
            optimum_single(&p, cost, BinSearchMode::Incremental, EncoderOpt::none());
        let det = optimum_portfolio(&p, cost, true);
        let racing = optimum_portfolio(&p, cost, false);
        let window_det = optimum_window(&p, cost, true);
        let window_racing = optimum_window(&p, cost, false);

        prop_assert_eq!(fresh, incremental, "fresh vs incremental");
        prop_assert_eq!(incremental, fresh_unopt, "optimized vs unoptimized fresh encoder");
        prop_assert_eq!(
            fresh_unopt, incremental_unopt,
            "unoptimized fresh vs unoptimized incremental"
        );
        prop_assert_eq!(incremental_unopt, det, "incremental vs deterministic portfolio");
        prop_assert_eq!(det, racing, "deterministic vs racing portfolio");
        prop_assert_eq!(racing, window_det, "racing portfolio vs deterministic window search");
        prop_assert_eq!(window_det, window_racing, "deterministic vs racing window search");

        // The search-engine grid: restart policy × tiered DB × vivification
        // (binary watches on throughout — the legacy all-off point is
        // already covered, every default run above used the full engine).
        for restart in [RestartPolicy::Luby, RestartPolicy::Ema] {
            for tiered_db in [false, true] {
                for vivify in [false, true] {
                    let engine = SearchEngine {
                        binary_watches: true,
                        tiered_db,
                        restart,
                        vivify,
                        elim: vivify,
                    };
                    prop_assert_eq!(
                        optimum_engine(&p, cost, engine),
                        incremental,
                        "engine {} vs default incremental",
                        engine.label()
                    );
                }
            }
        }
    }
}
