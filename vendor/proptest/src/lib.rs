#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `proptest`.
//!
//! Implements the strategy/runner surface this workspace's property tests
//! use: `Strategy` with `prop_map` / `prop_flat_map` / `prop_recursive` /
//! `boxed`, integer-range and tuple strategies, `Just`, `any`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build:
//! - **No shrinking.** A failing case panics with the `Debug` rendering of
//!   its inputs; pin interesting cases as plain `#[test]`s.
//! - **`proptest-regressions` files are ignored** (they encode real
//!   proptest's RNG, which this stub does not reproduce).
//! - The RNG is seeded deterministically from the test name, so runs are
//!   reproducible without a persistence file.
//!
//! Environment knobs (all optional, used to pin CI runs — see
//! `docs/TESTING.md`):
//! - `PROPTEST_CASES`: overrides the case count of every
//!   [`ProptestConfig`] (including explicit `with_cases` configs), e.g.
//!   `PROPTEST_CASES=16` for a quick smoke or `=2048` for a deep soak.
//! - `PROPTEST_RNG_SEED`: a `u64` mixed into every per-test seed, so CI can
//!   pin one reproducible stream (`PROPTEST_RNG_SEED=0` is the implicit
//!   default) or rotate nightly for fresh coverage.
//! - `PROPTEST_REGRESSIONS_DIR`: when set, the inputs of every failing case
//!   are appended to `<dir>/<test_name>.txt` (with the active seed/case
//!   knobs) before the panic, so a CI failure can be replayed locally by
//!   exporting the same environment.

use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic test RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A reproducible RNG seeded from the test name, with the
    /// `PROPTEST_RNG_SEED` environment value (if any) mixed in so CI can
    /// pin or rotate the stream without code changes.
    pub fn deterministic(name: &str) -> TestRng {
        let mut seed: u64 = 0x9e37_79b9_7f4a_7c15 ^ env_rng_seed();
        for b in name.bytes() {
            seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform-ish usize in `[lo, hi]` (modulo bias is irrelevant here).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy trait + combinators
// ---------------------------------------------------------------------

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps a
    /// strategy for depth `d` into one for depth `d + 1`. `_desired_size`
    /// and `_expected_branch` are accepted for API compatibility; recursion
    /// depth alone bounds the stub's tree sizes.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            // Two leaf tickets to one recursive ticket keeps trees small.
            cur = Union::new(vec![leaf.clone(), leaf.clone(), f(cur).boxed()]).boxed();
        }
        cur
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe mirror of [`Strategy`] used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between equally-weighted alternative strategies
/// (the expansion of [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.usize_inclusive(0, self.options.len() - 1);
        self.options[i].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                ((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                ((lo as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed; the test panics.
    Fail(String),
}

/// Runner configuration (only `cases` is honored by the stub).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases (`PROPTEST_CASES` overrides it).
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: env_cases().unwrap_or(256),
        }
    }
}

/// The `PROPTEST_CASES` override, if set and parseable.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.trim().parse().ok()
}

/// The `PROPTEST_RNG_SEED` stream selector (0 when unset/unparseable,
/// matching historical behaviour).
fn env_rng_seed() -> u64 {
    std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0)
}

/// Appends a failing case's inputs to `$PROPTEST_REGRESSIONS_DIR/<test>.txt`
/// so CI failures can be replayed locally. Best-effort: IO errors are
/// swallowed (the test is about to panic with the same information anyway).
#[doc(hidden)]
pub fn persist_failure(test_name: &str, inputs: &str, message: &str) {
    let Ok(dir) = std::env::var("PROPTEST_REGRESSIONS_DIR") else {
        return;
    };
    if dir.trim().is_empty() {
        return;
    }
    let _ = std::fs::create_dir_all(&dir);
    // `module::path::test` → a flat, filesystem-safe file name.
    let file: String = test_name
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    let path = std::path::Path::new(&dir).join(format!("{file}.txt"));
    let entry = format!(
        "# {test_name} (PROPTEST_RNG_SEED={}, PROPTEST_CASES={})\n# {message}\n{inputs}\n",
        env_rng_seed(),
        env_cases().map_or_else(|| "default".to_string(), |c| c.to_string()),
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(entry.as_bytes());
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines property tests (stub of proptest's entry-point macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            // A body ending in a diverging assertion makes the closure's
            // trailing `Ok(())` unreachable; that's fine for a test macro.
            #[allow(unreachable_code)]
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let __max_attempts = __cfg.cases.saturating_mul(20).max(1000);
                let mut __passed = 0u32;
                let mut __attempts = 0u32;
                while __passed < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __max_attempts {
                        panic!(
                            "proptest stub: {} rejected too many cases ({} passed of {} wanted)",
                            stringify!($name), __passed, __cfg.cases
                        );
                    }
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("" $(, stringify!($arg), " = {:?}; ")*),
                        $(&$arg),*
                    );
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __passed += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            let __test_name =
                                concat!(module_path!(), "::", stringify!($name));
                            $crate::persist_failure(__test_name, &__inputs, &msg);
                            panic!(
                                "proptest stub: {} failed: {}\n  inputs: {}",
                                stringify!($name), msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?} == {:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?} != {:?}`: {}", __l, __r, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (retried with new inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = (-4i64..=2).generate(&mut rng);
            assert!((-4..=2).contains(&v));
            let u = (3usize..8).generate(&mut rng);
            assert!((3..8).contains(&u));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::deterministic("vecs");
        for _ in 0..100 {
            let v = crate::collection::vec(0u32..5, 1..=4).generate(&mut rng);
            assert!((1..=4).contains(&v.len()));
            let exact = crate::collection::vec(Just(7u8), 3).generate(&mut rng);
            assert_eq!(exact.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn runner_drives_cases(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x > 0);
            prop_assert!(x < 100, "x = {x}");
            let y = if flip { x } else { x + 1 };
            prop_assert_ne!(y, 0);
            prop_assert_eq!(x.min(99), x);
        }
    }
}
