//! End-to-end tests of the fuzzing subsystem itself: a short in-process
//! checked campaign must come back clean, replay must agree with the
//! campaign, and a deliberately-injected solver soundness bug (skipping
//! one elimination-stack restore during model reconstruction) must be
//! caught and shrunk to a tiny reproducer.

use optalloc_testkit::campaign::{replay, run_campaign, splitmix, CampaignConfig, CampaignSummary};
use optalloc_testkit::gen::GenConfig;
use optalloc_testkit::relations::RelationKind;

#[test]
fn checked_campaign_is_clean() {
    let cfg = CampaignConfig {
        seed: 0x5eed,
        iterations: 12,
        paranoid: true,
        regressions_dir: None,
        ..CampaignConfig::default()
    };
    let summary = run_campaign(&cfg, |_| {});
    assert_eq!(summary.iterations_run, 12);
    assert!(
        summary.clean(),
        "metamorphic violations on a healthy solver: {:#?}",
        summary.violations
    );
    assert!(
        summary.checks_passed > 0,
        "a clean campaign must actually have checked something"
    );
}

#[test]
fn replay_agrees_with_a_clean_campaign() {
    // Replaying any seed of a clean campaign must also be clean — this is
    // the contract the CI loop relies on (campaign reports a seed, the
    // developer replays it locally).
    let gen = GenConfig::default();
    let seed = splitmix(0x5eed); // iteration 0 of the campaign above
    for (kind, verdict) in replay(seed, &gen, &RelationKind::all(), true) {
        assert!(
            verdict.is_ok(),
            "replay of clean seed {seed:#x} violated '{}': {verdict:?}",
            kind.name()
        );
    }
}

/// Acceptance test for the whole find→shrink→persist loop: with the
/// elimination-restore fault injected into the solver, the campaign binary
/// must exit nonzero, report the violation, and shrink the reproducer to a
/// handful of tasks.
#[test]
fn injected_soundness_bug_is_caught_and_shrunk() {
    let dir = std::env::temp_dir().join(format!("optalloc-fuzz-inject-{}", std::process::id()));
    let summary_path = dir.join("summary.json");
    std::fs::create_dir_all(&dir).expect("temp dir");

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_optalloc-fuzz"))
        .args([
            "campaign",
            "--seed",
            "7",
            "--iters",
            "40",
            "--checked",
            "--max-violations",
            "1",
            "--quiet",
            "--regressions",
        ])
        .arg(&dir)
        .arg("--summary")
        .arg(&summary_path)
        // The engine-grid/warm-delta relations spend several solves per
        // seed; the cheap single-solve relations catch this bug just as
        // well because *every* SAT model goes through reconstruction.
        .args(["--relations", "rename,monotone"])
        .env("OPTALLOC_TESTKIT_INJECT", "skip-elim-restore")
        .env("OPTALLOC_PARANOID", "1")
        .output()
        .expect("spawn optalloc-fuzz");

    assert!(
        !output.status.success(),
        "campaign must fail under fault injection; stderr:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let summary: CampaignSummary = serde_json::from_str(
        &std::fs::read_to_string(&summary_path).expect("summary file written"),
    )
    .expect("summary parses");
    assert!(
        !summary.violations.is_empty(),
        "the injected bug must surface as a violation"
    );
    let v = &summary.violations[0];
    assert!(
        v.shrunk_tasks <= 5,
        "reproducer should shrink to <= 5 tasks, got {}",
        v.shrunk_tasks
    );
    let regression = v
        .regression_file
        .as_ref()
        .expect("violation must persist a regression file");
    let content = std::fs::read_to_string(regression).expect("regression file readable");
    assert!(
        content.contains("optalloc-fuzz-regression-v1"),
        "regression file must carry the schema tag"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
