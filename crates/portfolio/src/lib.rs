//! # optalloc-portfolio
//!
//! Parallel **portfolio optimization** in two flavours over the *same*
//! encoded [`IntProblem`]:
//!
//! * [`minimize_portfolio`] — N diversified `BIN_SEARCH` workers race full
//!   binary searches; the first to prove an optimum wins. Exploits the
//!   run-to-run variance of CDCL search (decision phases, restart
//!   schedules, encoding backends, probe-sharing modes).
//! * [`minimize_window_search`] — N identical workers split the remaining
//!   cost interval into **disjoint sub-windows**, so the terminal UNSAT
//!   certification — which racing repeats N times — is solved once,
//!   divided across workers (see the [`window`] module docs).
//!
//! Three cooperation channels make the workers more than the sum of their
//! parts:
//!
//! * **Two-sided bound sharing** — a [`BoundLattice`] carries the best
//!   *witnessed* upper bound (a worker that finds a model of cost `c`
//!   publishes it with `fetch_min`) and the best *certified* lower bound
//!   (an UNSAT probe over `[L, M]` publishes `M + 1` with `fetch_max`).
//!   Every worker folds both sides in between `SOLVE` calls, so any
//!   worker's refutation shrinks everyone's window. A worker that bottoms
//!   out against a foreign bound returns
//!   [`MinimizeStatus::ExternalOptimal`] and the portfolio supplies the
//!   witnessing model from its shared incumbent registry.
//! * **Learned-clause sharing** — workers that solve the *same base
//!   encoding* (incremental mode, same backend) exchange short, low-glue
//!   learned clauses over a lock-free [`ClauseExchange`] ring — the
//!   multi-thread analogue of the paper's §7 incremental clause reuse.
//! * **Cooperative cancellation** — the first worker reaching a decisive
//!   verdict (optimal / infeasible) raises a shared [`AtomicBool`]; the
//!   CDCL search loops of the others observe it at the next conflict or
//!   decision boundary and abort with
//!   [`optalloc_sat::SolveResult::Interrupted`].
//!
//! ## Determinism contract
//!
//! * `deterministic: false` (racing) — minimal wall-clock: the result is
//!   the first *proven* optimum. The optimal **cost** is always the same,
//!   but which equal-cost model witnesses it (and which worker wins, and
//!   how many solve calls are reported) depends on thread timing.
//! * `deterministic: true` — no bound sharing, no clause sharing, no
//!   cancellation; all workers run to completion and the lowest-index
//!   decisive worker is the winner. Output is bit-stable across runs at
//!   the price of racing speedups. (For the window-search variant's
//!   deterministic protocol — barrier rounds with an index-ordered fold —
//!   see the [`window`] module docs.)

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use optalloc_intopt::{
    Backend, BinSearchMode, BoundLattice, Certificate, EncodeStats, IncumbentCallback, IntProblem,
    IntVar, MinimizeOptions, MinimizeOutcome, MinimizeStatus, Model,
};
use optalloc_sat::{ClauseExchange, RestartPolicy, SolverStats};

pub mod window;

pub use window::minimize_window_search;

/// Options for [`minimize_portfolio`].
#[derive(Clone, Debug)]
pub struct PortfolioOptions {
    /// Number of workers. Worker 0 always runs the base configuration, so a
    /// 1-worker portfolio degenerates to a plain [`IntProblem::minimize`].
    pub workers: usize,
    /// `true` runs every worker to completion without cross-talk and picks
    /// the lowest-index decisive worker — bit-stable output. `false` races:
    /// first proven optimum wins, the rest are cancelled.
    pub deterministic: bool,
    /// Base minimization options diversified per worker by
    /// [`worker_options`]. Its own `bounds` / `on_incumbent` /
    /// `solver_config.exchange` fields are overwritten by the portfolio.
    /// `solver_config.interrupt` is honoured as the **job-scoped** cancel
    /// flag: raising it aborts every worker cooperatively (the hook a
    /// service timeout or shutdown uses). In racing mode it doubles as the
    /// internal first-decisive-worker cancel signal, so the portfolio may
    /// *raise* it on completion — reset it between jobs when reusing one
    /// flag.
    pub base: MinimizeOptions,
    /// Print one stats line per worker to stderr after the run.
    pub verbose: bool,
}

impl Default for PortfolioOptions {
    fn default() -> PortfolioOptions {
        PortfolioOptions {
            workers: 4,
            deterministic: false,
            base: MinimizeOptions::default(),
            verbose: false,
        }
    }
}

/// What one worker's minimization ended as (model-free summary).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkerVerdict {
    /// Proved the optimum with its own witnessing model.
    Optimal,
    /// Proved the constraints infeasible.
    Infeasible,
    /// Proved the optimum equals a cost another worker published.
    ExternalOptimal,
    /// Conflict budget ran out first.
    Unknown,
    /// Cancelled after another worker won the race.
    Interrupted,
}

/// Per-worker execution record, for stats lines and ablation tables.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Worker index (0 = base configuration).
    pub index: usize,
    /// Human-readable configuration descriptor, e.g. `incr/pb/seed42`.
    pub config: String,
    /// How the worker's search ended.
    pub verdict: WorkerVerdict,
    /// The cost the worker proved or last incumbent it held, if any.
    pub value: Option<i64>,
    /// `SOLVE` calls the worker issued.
    pub solve_calls: u32,
    /// The worker's solver counters.
    pub stats: SolverStats,
    /// Wall-clock time of the worker's search.
    pub wall: Duration,
    /// Whether this worker decided the portfolio's result.
    pub winner: bool,
    /// Cost windows this worker probed, in order (window-search mode only;
    /// empty for racing workers, whose probes follow their own binary
    /// search).
    pub windows: Vec<(i64, i64)>,
}

impl fmt::Display for WorkerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "worker {} [{}]{}: {:?}{} in {:.3}s — {} calls, {} conflicts, {} decisions, {} propagations, {} restarts, {} learned",
            self.index,
            self.config,
            if self.winner { " *winner*" } else { "" },
            self.verdict,
            match self.value {
                Some(v) => format!(" (cost {v})"),
                None => String::new(),
            },
            self.wall.as_secs_f64(),
            self.solve_calls,
            self.stats.conflicts,
            self.stats.decisions,
            self.stats.propagations,
            self.stats.restarts,
            self.stats.learned,
        )?;
        if !self.windows.is_empty() {
            write!(f, ", {} windows", self.windows.len())?;
        }
        Ok(())
    }
}

/// Result of a portfolio run.
#[derive(Clone, Debug)]
pub struct PortfolioOutcome {
    /// The combined verdict. An [`MinimizeStatus::ExternalOptimal`] from
    /// the winning worker is resolved to [`MinimizeStatus::Optimal`] using
    /// the shared incumbent registry, so callers see external optima and
    /// locally proven ones uniformly.
    pub status: MinimizeStatus,
    /// Total `SOLVE` calls across all workers.
    pub solve_calls: u32,
    /// Encoding size reported by the winning worker (worker 0 if no winner).
    pub encode: EncodeStats,
    /// Solver counters summed over all workers.
    pub stats: SolverStats,
    /// Index of the deciding worker, if any.
    pub winner: Option<usize>,
    /// Per-worker execution records, indexed by worker.
    pub workers: Vec<WorkerReport>,
    /// Optimality certificate stitched from *every* worker's proof traces
    /// — present when [`MinimizeOptions::certify`] was set on the base
    /// options and the run ended [`MinimizeStatus::Optimal`]. The winner
    /// alone may not cover the whole range (it folds lower bounds other
    /// workers refuted), so the merged set of certified windows is what
    /// [`Certificate::verify`] checks for gap-free coverage.
    pub certificate: Option<Certificate>,
}

/// Diversifies `base` for worker `index`; returns the options and a short
/// descriptor. The table cycles in blocks of four:
///
/// | `index % 4` | mode        | backend  | solver tweaks                      |
/// |-------------|-------------|----------|------------------------------------|
/// | 0           | base        | base     | none (baseline, incl. warm start)  |
/// | 1           | Fresh       | base     | no warm start (paper baseline)     |
/// | 2           | Incremental | base     | random phases, Luby restarts ×½, decay 0.90 |
/// | 3           | Incremental | flipped  | random phases, restarts ×2         |
///
/// Worker 2 forces [`RestartPolicy::Luby`] so its halved restart unit is
/// effective (the default adaptive EMA policy ignores `restart_unit`) and
/// the portfolio always mixes both restart disciplines.
///
/// Workers ≥ 4 additionally get a distinct phase seed so no two workers are
/// identical.
pub fn worker_options(base: &MinimizeOptions, index: usize) -> (MinimizeOptions, String) {
    let mut o = base.clone();
    let seed = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1);
    match index % 4 {
        0 => {}
        1 => {
            o.mode = BinSearchMode::Fresh;
            o.initial_upper = None;
        }
        2 => {
            o.mode = BinSearchMode::Incremental;
            o.solver_config.phase_seed = Some(seed);
            o.solver_config.restart_policy = RestartPolicy::Luby;
            o.solver_config.restart_unit = (base.solver_config.restart_unit / 2).max(1);
            o.solver_config.var_decay = 0.90;
        }
        _ => {
            o.mode = BinSearchMode::Incremental;
            o.backend = match base.backend {
                Backend::PseudoBoolean => Backend::Cnf,
                Backend::Cnf => Backend::PseudoBoolean,
            };
            o.solver_config.phase_seed = Some(seed);
            o.solver_config.restart_unit = base.solver_config.restart_unit * 2;
        }
    }
    if index >= 4 {
        o.solver_config.phase_seed = Some(seed);
    }
    let mode = match o.mode {
        BinSearchMode::Incremental => "incr",
        BinSearchMode::Fresh => "fresh",
    };
    let backend = match o.backend {
        Backend::PseudoBoolean => "pb",
        Backend::Cnf => "cnf",
    };
    let restart = match o.solver_config.restart_policy {
        RestartPolicy::Luby => format!("r{}", o.solver_config.restart_unit),
        RestartPolicy::Ema => "ema".to_string(),
    };
    let mut desc = format!("{mode}/{backend}/{restart}");
    if o.solver_config.phase_seed.is_some() {
        desc.push_str("/rnd");
    }
    if o.initial_upper.is_some() {
        desc.push_str("/warm");
    }
    (o, desc)
}

fn verdict_of(status: &MinimizeStatus) -> (WorkerVerdict, Option<i64>) {
    match status {
        MinimizeStatus::Optimal { value, .. } => (WorkerVerdict::Optimal, Some(*value)),
        MinimizeStatus::Infeasible => (WorkerVerdict::Infeasible, None),
        MinimizeStatus::ExternalOptimal { value } => (WorkerVerdict::ExternalOptimal, Some(*value)),
        MinimizeStatus::Unknown { incumbent } => {
            (WorkerVerdict::Unknown, incumbent.as_ref().map(|(v, _)| *v))
        }
        MinimizeStatus::Interrupted { incumbent } => (
            WorkerVerdict::Interrupted,
            incumbent.as_ref().map(|(v, _)| *v),
        ),
    }
}

fn decisive(status: &MinimizeStatus) -> bool {
    matches!(
        status,
        MinimizeStatus::Optimal { .. }
            | MinimizeStatus::Infeasible
            | MinimizeStatus::ExternalOptimal { .. }
    )
}

/// Minimizes `cost` over `problem` with a portfolio of diversified
/// `BIN_SEARCH` workers (see the module docs for the protocol and the
/// determinism contract).
pub fn minimize_portfolio(
    problem: &IntProblem,
    cost: IntVar,
    opts: &PortfolioOptions,
) -> PortfolioOutcome {
    let n = opts.workers.max(1);
    // The shared cancel flag *is* the caller's job-scoped interrupt flag
    // when one is configured, so an external raise (timeout, shutdown)
    // reaches every racing worker through the same channel the internal
    // first-decisive-worker cancellation uses. Deterministic mode never
    // overwrites per-worker interrupts, so the caller's flag propagates
    // through `worker_options` cloning instead.
    let cancel = opts
        .base
        .solver_config
        .interrupt
        .clone()
        .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    // Two-sided bound lattice: witnessed upper bounds and certified lower
    // bounds, folded by every worker between SOLVE calls. Models for every
    // published upper bound live in the registry, so an `ExternalOptimal`
    // verdict can always be resolved to a concrete model after the join.
    let lattice = Arc::new(BoundLattice::new());
    let registry: Arc<Mutex<Option<(i64, Model)>>> = Arc::new(Mutex::new(None));
    // usize::MAX = no winner yet; first decisive worker claims the slot.
    let race_winner = Arc::new(AtomicUsize::new(usize::MAX));
    // Learned-clause ring shared by the workers that solve the same base
    // encoding (incremental mode, base backend — fresh-mode and
    // flipped-backend workers number their variables differently and must
    // not participate). Disabled in deterministic mode: import order is
    // timing-dependent.
    let exchange = (!opts.deterministic && n >= 2)
        .then(ClauseExchange::new)
        .map(Arc::new);

    let results: Vec<(MinimizeOutcome, Duration, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let (mut wopts, desc) = worker_options(&opts.base, i);
                // Each worker's progress events and spans carry its index,
                // so merged streams stay attributable.
                wopts.solver_config.progress_worker = Some(i);
                let keep_model: IncumbentCallback = {
                    let registry = Arc::clone(&registry);
                    Arc::new(move |value, model: &Model| {
                        let mut best = registry.lock().unwrap();
                        if best.as_ref().is_none_or(|(b, _)| value < *b) {
                            *best = Some((value, model.clone()));
                        }
                    })
                };
                wopts.on_incumbent = Some(keep_model);
                if !opts.deterministic {
                    wopts.bounds = Some(Arc::clone(&lattice));
                    wopts.solver_config.interrupt = Some(Arc::clone(&cancel));
                }
                if wopts.mode == BinSearchMode::Incremental && wopts.backend == opts.base.backend {
                    if let Some(ex) = &exchange {
                        wopts.solver_config.exchange = Some(Arc::clone(ex));
                        wopts.solver_config.share_writer = i as u32;
                    }
                }
                let cancel = Arc::clone(&cancel);
                let race_winner = Arc::clone(&race_winner);
                let deterministic = opts.deterministic;
                scope.spawn(move || {
                    let start = Instant::now();
                    let out = problem.minimize(cost, &wopts);
                    if !deterministic && decisive(&out.status) {
                        let _ = race_winner.compare_exchange(
                            usize::MAX,
                            i,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        cancel.store(true, Ordering::Relaxed);
                    }
                    (out, start.elapsed(), desc)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Winner: racing mode recorded the first decisive worker; deterministic
    // mode picks the lowest decisive index, independent of thread timing.
    let winner = if opts.deterministic {
        results.iter().position(|(o, _, _)| decisive(&o.status))
    } else {
        Some(race_winner.load(Ordering::Acquire)).filter(|&w| w != usize::MAX)
    };

    let mut stats = SolverStats::default();
    let mut solve_calls = 0u32;
    let mut workers = Vec::with_capacity(n);
    for (i, (out, wall, desc)) in results.iter().enumerate() {
        stats.absorb(&out.stats);
        solve_calls += out.solve_calls;
        let (verdict, value) = verdict_of(&out.status);
        workers.push(WorkerReport {
            index: i,
            config: desc.clone(),
            verdict,
            value,
            solve_calls: out.solve_calls,
            stats: out.stats.clone(),
            wall: *wall,
            winner: winner == Some(i),
            windows: Vec::new(),
        });
    }

    let status = match winner {
        Some(w) => match results[w].0.status.clone() {
            MinimizeStatus::ExternalOptimal { value } => {
                // The winner proved optimality of a bound somebody else
                // witnessed; the registry holds that worker's model.
                let best = registry.lock().unwrap().clone();
                match best {
                    Some((v, model)) if v == value => MinimizeStatus::Optimal { value, model },
                    // Registry raced past the proof (should not happen, the
                    // bound is monotone); degrade soundly.
                    _ => MinimizeStatus::Unknown {
                        incumbent: best.filter(|(v, _)| *v <= value),
                    },
                }
            }
            decisive_status => decisive_status,
        },
        None => {
            // Nobody finished: surface the best incumbent seen anywhere. In
            // deterministic mode it is recomputed from the joined results so
            // ties resolve by worker index, not callback timing.
            let best = if opts.deterministic {
                let mut best: Option<(i64, Model)> = None;
                for (out, _, _) in &results {
                    if let MinimizeStatus::Unknown {
                        incumbent: Some((v, m)),
                    }
                    | MinimizeStatus::Interrupted {
                        incumbent: Some((v, m)),
                    } = &out.status
                    {
                        if best.as_ref().is_none_or(|(b, _)| *v < *b) {
                            best = Some((*v, m.clone()));
                        }
                    }
                }
                best
            } else {
                registry.lock().unwrap().clone()
            };
            MinimizeStatus::Unknown { incumbent: best }
        }
    };

    let encode = results[winner.unwrap_or(0)].0.encode;
    let certificate = match &status {
        MinimizeStatus::Optimal { value, model } if opts.base.certify => Some(Certificate {
            optimum: *value,
            cost_lo: cost.lo,
            witness: model.clone(),
            proofs: results
                .iter()
                .flat_map(|(o, _, _)| o.proofs.iter().cloned())
                .collect(),
        }),
        _ => None,
    };
    let outcome = PortfolioOutcome {
        status,
        solve_calls,
        encode,
        stats,
        winner,
        workers,
        certificate,
    };
    if opts.verbose {
        for w in &outcome.workers {
            eprintln!("{w}");
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small nonlinear instance with a known optimum (see the
    /// `optalloc-intopt` crate docs): min x·y + x s.t. x + y ≥ 10.
    fn instance() -> (IntProblem, IntVar) {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 20);
        let y = p.int_var(0, 20);
        let cost = p.int_var(0, 400);
        p.assert((x.expr() + y.expr()).ge(10));
        p.assert(cost.expr().eq(x.expr() * y.expr() + x.expr()));
        (p, cost)
    }

    #[test]
    fn racing_portfolio_finds_optimum() {
        let (p, cost) = instance();
        let out = minimize_portfolio(&p, cost, &PortfolioOptions::default());
        match out.status {
            MinimizeStatus::Optimal { value, ref model } => {
                assert_eq!(value, 0);
                assert_eq!(model.int(cost), 0);
            }
            ref s => panic!("expected Optimal, got {s:?}"),
        }
        assert!(out.winner.is_some());
        assert_eq!(out.workers.len(), 4);
        assert!(out.workers[out.winner.unwrap()].winner);
    }

    #[test]
    fn pre_raised_job_flag_cancels_a_racing_portfolio() {
        let (p, cost) = instance();
        let mut opts = PortfolioOptions::default();
        opts.base.solver_config.interrupt = Some(Arc::new(AtomicBool::new(true)));
        let out = minimize_portfolio(&p, cost, &opts);
        // Every worker aborts cooperatively before a decisive verdict; the
        // job ends with no winner instead of hanging or claiming optimality.
        assert!(out.winner.is_none());
        assert!(matches!(out.status, MinimizeStatus::Unknown { .. }));
    }

    #[test]
    fn pre_raised_job_flag_cancels_a_deterministic_portfolio() {
        let (p, cost) = instance();
        let mut opts = PortfolioOptions {
            deterministic: true,
            ..PortfolioOptions::default()
        };
        opts.base.solver_config.interrupt = Some(Arc::new(AtomicBool::new(true)));
        let out = minimize_portfolio(&p, cost, &opts);
        assert!(out.winner.is_none());
        assert!(matches!(out.status, MinimizeStatus::Unknown { .. }));
        assert!(out
            .workers
            .iter()
            .all(|w| w.verdict == WorkerVerdict::Interrupted));
    }

    #[test]
    fn racing_completion_raises_the_job_flag() {
        // The job-scoped flag doubles as the internal cancel signal in
        // racing mode, so a completed job leaves it raised — callers that
        // reuse one flag across jobs must reset it in between (the service
        // does exactly that).
        let (p, cost) = instance();
        let flag = Arc::new(AtomicBool::new(false));
        let mut opts = PortfolioOptions::default();
        opts.base.solver_config.interrupt = Some(Arc::clone(&flag));
        let out = minimize_portfolio(&p, cost, &opts);
        assert!(matches!(
            out.status,
            MinimizeStatus::Optimal { value: 0, .. }
        ));
        assert!(flag.load(Ordering::Relaxed));
        flag.store(false, Ordering::Relaxed);
        let again = minimize_portfolio(&p, cost, &opts);
        assert!(matches!(
            again.status,
            MinimizeStatus::Optimal { value: 0, .. }
        ));
    }

    #[test]
    fn deterministic_portfolio_is_bit_stable() {
        let (p, cost) = instance();
        let opts = PortfolioOptions {
            deterministic: true,
            ..PortfolioOptions::default()
        };
        let a = minimize_portfolio(&p, cost, &opts);
        let b = minimize_portfolio(&p, cost, &opts);
        assert_eq!(a.winner, b.winner);
        assert_eq!(a.solve_calls, b.solve_calls);
        assert_eq!(a.stats.conflicts, b.stats.conflicts);
        assert_eq!(a.stats.decisions, b.stats.decisions);
        match (&a.status, &b.status) {
            (
                MinimizeStatus::Optimal {
                    value: va,
                    model: ma,
                },
                MinimizeStatus::Optimal {
                    value: vb,
                    model: mb,
                },
            ) => {
                assert_eq!(va, vb);
                assert_eq!(*va, 0);
                assert_eq!(ma.int(cost), mb.int(cost));
            }
            (s, t) => panic!("expected Optimal twice, got {s:?} / {t:?}"),
        }
    }

    #[test]
    fn infeasible_instances_are_reported() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 5);
        p.assert(x.expr().ge(3));
        p.assert(x.expr().le(2));
        for deterministic in [false, true] {
            let out = minimize_portfolio(
                &p,
                x,
                &PortfolioOptions {
                    deterministic,
                    workers: 3,
                    ..PortfolioOptions::default()
                },
            );
            assert!(
                matches!(out.status, MinimizeStatus::Infeasible),
                "deterministic={deterministic}: got {:?}",
                out.status
            );
        }
    }

    #[test]
    fn single_worker_degenerates_to_plain_minimize() {
        let (p, cost) = instance();
        let solo = minimize_portfolio(
            &p,
            cost,
            &PortfolioOptions {
                workers: 1,
                deterministic: true,
                ..PortfolioOptions::default()
            },
        );
        let plain = p.minimize(cost, &MinimizeOptions::default());
        match (&solo.status, &plain.status) {
            (
                MinimizeStatus::Optimal { value: a, .. },
                MinimizeStatus::Optimal { value: b, .. },
            ) => assert_eq!(a, b),
            (s, t) => panic!("got {s:?} / {t:?}"),
        }
        assert_eq!(solo.solve_calls, plain.solve_calls);
    }

    /// Certified racing and deterministic portfolios: the stitched
    /// certificate (winner's witness + every worker's refutations) passes
    /// verification, covering all costs below the optimum.
    #[test]
    fn certified_portfolio_verifies() {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 100);
        p.assert(x.expr().ge(7));
        for deterministic in [false, true] {
            let opts = PortfolioOptions {
                deterministic,
                base: MinimizeOptions {
                    certify: true,
                    ..MinimizeOptions::default()
                },
                ..PortfolioOptions::default()
            };
            let out = minimize_portfolio(&p, x, &opts);
            match out.status {
                MinimizeStatus::Optimal { value, .. } => {
                    assert_eq!(value, 7, "det={deterministic}")
                }
                ref s => panic!("det={deterministic}: expected Optimal, got {s:?}"),
            }
            let cert = out.certificate.as_ref().expect("certificate stitched");
            assert_eq!(cert.optimum, 7);
            assert_eq!(cert.cost_lo, 0);
            let summary = cert
                .verify()
                .unwrap_or_else(|e| panic!("det={deterministic}: {e}"));
            assert!(summary.windows > 0, "det={deterministic}");
        }
        // Without certify: no certificate even on Optimal.
        let out = minimize_portfolio(&p, x, &PortfolioOptions::default());
        assert!(matches!(out.status, MinimizeStatus::Optimal { .. }));
        assert!(out.certificate.is_none());
    }

    #[test]
    fn worker_options_cycle_is_diverse() {
        let base = MinimizeOptions::default();
        let descs: Vec<String> = (0..6).map(|i| worker_options(&base, i).1).collect();
        // Worker 0 is the baseline; 1 is fresh-mode; 3 flips the backend.
        assert!(descs[0].starts_with("incr/pb"));
        assert!(descs[1].starts_with("fresh/pb"));
        assert!(descs[3].starts_with("incr/cnf"));
        // Worker 2 switches to Luby restarts (descriptor shows the unit);
        // the others inherit the default adaptive EMA policy.
        assert!(descs[2].contains("/r"), "{}", descs[2]);
        assert!(descs[0].contains("/ema"), "{}", descs[0]);
        let (o2, _) = worker_options(&base, 2);
        assert_eq!(o2.solver_config.restart_policy, RestartPolicy::Luby);
        // Workers ≥ 4 repeat the cycle but with their own phase seeds.
        let (o4, _) = worker_options(&base, 4);
        let (o0, _) = worker_options(&base, 0);
        assert!(o4.solver_config.phase_seed.is_some());
        assert!(o0.solver_config.phase_seed.is_none());
    }
}
