//! Message-side constraints: route selection over path closures (eq. 14),
//! local deadline budgets with gateway service, jitter propagation, and
//! per-medium message response-time analysis for priority (eq. 2) and TDMA
//! (eq. 3) buses — including the nonlinear blocking term the paper
//! highlights in §3/§5.

use super::{Encoding, MsgVars, RouteChoice};
use optalloc_intopt::{BoolExpr, IntExpr};
use optalloc_model::{EcuId, MediumId, MsgId, TaskId, Time};
use optalloc_sat::PbOp;
use std::collections::BTreeMap;

impl Encoding<'_> {
    pub(super) fn encode_messages(&mut self) {
        let msg_ids: Vec<(MsgId, TaskId)> =
            self.tasks.messages().map(|(id, m)| (id, m.to)).collect();

        // Pass 1: route choices, selectors, usage/deadline/jitter variables.
        for &(mid, receiver) in &msg_ids {
            let vars = self.encode_message_routing(mid, receiver);
            self.msgs.push(vars);
        }

        // Pass 2: response-time analysis per (message, medium). Needs all
        // messages' jitter/usage variables, hence a second pass.
        for idx in 0..self.msgs.len() {
            self.encode_message_rta(idx);
        }
    }

    /// Feasible route choices for a message, pruned by placement permission
    /// sets: a prefix is kept only if some allowed sender/receiver ECUs can
    /// satisfy the endpoint condition `v(h)`.
    fn route_choices(&self, sender: TaskId, receiver: TaskId) -> Vec<RouteChoice> {
        let a_s = self.allowed_ecus(sender);
        let a_v = self.allowed_ecus(receiver);
        let mut out = Vec::new();
        for (ci, closure) in self.closures.iter().enumerate() {
            for path in &closure.prefixes {
                let feasible = match path.as_slice() {
                    [] => a_s.iter().any(|p| a_v.contains(p)),
                    [k] => {
                        let med = self.arch.medium(*k);
                        a_s.iter().any(|&p| med.connects(p)) && a_v.iter().any(|&p| med.connects(p))
                    }
                    multi => {
                        let first = multi[0];
                        let second = multi[1];
                        let last = multi[multi.len() - 1];
                        let before_last = multi[multi.len() - 2];
                        let gw_in = self.arch.gateway_between(first, second);
                        let gw_out = self.arch.gateway_between(last, before_last);
                        a_s.iter()
                            .any(|&p| self.arch.medium(first).connects(p) && Some(p) != gw_in)
                            && a_v
                                .iter()
                                .any(|&p| self.arch.medium(last).connects(p) && Some(p) != gw_out)
                    }
                };
                if feasible {
                    out.push(RouteChoice {
                        closure: ci,
                        path: path.clone(),
                    });
                }
            }
        }
        out
    }

    /// The endpoint condition `v(h)` (§4) as a Boolean expression.
    fn endpoint_condition(&self, sender: TaskId, receiver: TaskId, path: &[MediumId]) -> BoolExpr {
        match path {
            [] => self.colocated(sender, receiver),
            [k] => {
                let med = self.arch.medium(*k);
                let s_on = BoolExpr::any(med.members.iter().map(|&p| self.placed_on(sender, p)));
                let v_on = BoolExpr::any(med.members.iter().map(|&p| self.placed_on(receiver, p)));
                s_on.and(v_on)
            }
            multi => {
                let first = multi[0];
                let second = multi[1];
                let last = multi[multi.len() - 1];
                let before_last = multi[multi.len() - 2];
                let gw_in = self.arch.gateway_between(first, second);
                let gw_out = self.arch.gateway_between(last, before_last);
                let s_on = BoolExpr::any(
                    self.arch
                        .medium(first)
                        .members
                        .iter()
                        .filter(|&&p| Some(p) != gw_in)
                        .map(|&p| self.placed_on(sender, p)),
                );
                let v_on = BoolExpr::any(
                    self.arch
                        .medium(last)
                        .members
                        .iter()
                        .filter(|&&p| Some(p) != gw_out)
                        .map(|&p| self.placed_on(receiver, p)),
                );
                s_on.and(v_on)
            }
        }
    }

    fn encode_message_routing(&mut self, mid: MsgId, receiver: TaskId) -> MsgVars {
        let m = self.tasks.message(mid).clone();
        let delta = m.deadline as i64;
        let sender = mid.sender;
        let routes = self.route_choices(sender, receiver);
        if routes.is_empty() {
            self.infeasible = true;
            self.problem.assert(BoolExpr::constant(false));
            return MsgVars {
                id: mid,
                routes,
                hsel: Vec::new(),
                media: Vec::new(),
                k_used: BTreeMap::new(),
                k_used_int: BTreeMap::new(),
                local_deadline: BTreeMap::new(),
                jitter: BTreeMap::new(),
                resp: BTreeMap::new(),
                fwd: BTreeMap::new(),
            };
        }

        // Selector per route choice; exactly one (realizes the Pf_m
        // selection together with eq. 14's sub-path disjunction).
        let hsel: Vec<_> = routes.iter().map(|_| self.problem.bool_var()).collect();
        let terms: Vec<(BoolExpr, i64)> = hsel.iter().map(|v| (v.expr(), 1)).collect();
        self.problem.assert_pb(terms, PbOp::Eq, 1);

        // v(h) under each selector.
        for (r, sel) in routes.iter().zip(&hsel) {
            let v = self.endpoint_condition(sender, receiver, &r.path);
            self.problem.assert(sel.expr().implies(v));
        }

        // Media union and usage expressions K_m^k.
        let mut media: Vec<MediumId> = routes.iter().flat_map(|r| r.path.clone()).collect();
        media.sort_unstable();
        media.dedup();
        let mut k_used = BTreeMap::new();
        let mut k_used_int = BTreeMap::new();
        for &k in &media {
            let users: Vec<BoolExpr> = routes
                .iter()
                .zip(&hsel)
                .filter(|(r, _)| r.path.contains(&k))
                .map(|(_, s)| s.expr())
                .collect();
            let used = BoolExpr::any(users);
            let as_int = self.b2i(&used);
            k_used.insert(k, used);
            k_used_int.insert(k, as_int);
        }

        // Local deadlines d_m^k; unused media get 0.
        let mut local_deadline = BTreeMap::new();
        for &k in &media {
            let d = self.problem.int_var(0, delta);
            self.problem
                .assert(k_used[&k].not().implies(d.expr().eq(0)));
            local_deadline.insert(k, d);
        }

        // Budget: Σ_k d_m^k + serv_m ≤ Δ_m, with the gateway service cost
        // constant per selected sub-path.
        let total: IntExpr = IntExpr::sum(local_deadline.values().map(|d| d.expr()));
        for (r, sel) in routes.iter().zip(&hsel) {
            let hops = r.path.len() as i64;
            let service = self.opts.gateway_service as i64 * (hops - 1).max(0);
            self.problem
                .assert(sel.expr().implies(total.le(delta - service)));
        }

        // Jitter propagation (§4): under a selector, the jitter on the k-th
        // medium of the closure's longest path h̃ accumulates upstream
        // local deadlines minus best-case transmission times.
        let release_jitter = self.tasks.task(sender).release_jitter as i64;
        let mut jitter = BTreeMap::new();
        for &k in &media {
            let j = self.problem.int_var(release_jitter, release_jitter + delta);
            self.problem
                .assert(k_used[&k].not().implies(j.expr().eq(release_jitter)));
            jitter.insert(k, j);
        }
        for (r, sel) in routes.iter().zip(&hsel) {
            for (pos, &k) in r.path.iter().enumerate() {
                let mut upstream = IntExpr::constant(release_jitter);
                for &up in &r.path[..pos] {
                    let beta = self.arch.medium(up).best_case_time(m.size) as i64;
                    upstream = upstream + (local_deadline[&up].expr() - beta);
                }
                self.problem
                    .assert(sel.expr().implies(jitter[&k].expr().eq(upstream)));
            }
        }

        // Forwarder one-hots on TDMA media (who owns the sending slot).
        let mut fwd_vars: BTreeMap<MediumId, BTreeMap<EcuId, optalloc_intopt::BoolVar>> =
            BTreeMap::new();
        for &k in &media {
            if !self.arch.medium(k).is_tdma() {
                continue;
            }
            // Possible forwarders: allowed sender ECUs on k (first hop) and
            // upstream gateways (later hops).
            let mut domain: Vec<EcuId> = Vec::new();
            for r in &routes {
                match r.path.iter().position(|&x| x == k) {
                    None => {}
                    Some(0) => {
                        for p in self.allowed_ecus(sender) {
                            if self.arch.medium(k).connects(p) {
                                domain.push(p);
                            }
                        }
                    }
                    Some(pos) => {
                        if let Some(gw) = self.arch.gateway_between(r.path[pos - 1], k) {
                            domain.push(gw);
                        }
                    }
                }
            }
            domain.sort_unstable();
            domain.dedup();
            let vars: BTreeMap<EcuId, optalloc_intopt::BoolVar> = domain
                .iter()
                .map(|&p| (p, self.problem.bool_var()))
                .collect();
            // Unused medium ⇒ no forwarder.
            for v in vars.values() {
                self.problem
                    .assert(k_used[&k].not().implies(v.expr().not()));
            }
            // Per-selector forwarder definition.
            for (r, sel) in routes.iter().zip(&hsel) {
                match r.path.iter().position(|&x| x == k) {
                    None => {
                        // Selector that does not use k: forwarder bits free
                        // but forced false via ¬K above only if no other
                        // route uses k — force explicitly.
                        for v in vars.values() {
                            self.problem.assert(sel.expr().implies(v.expr().not()));
                        }
                    }
                    Some(0) => {
                        for (&p, v) in &vars {
                            let src = self.placed_on(sender, p);
                            self.problem.assert(sel.expr().implies(v.expr().iff(src)));
                        }
                    }
                    Some(pos) => {
                        let gw = self
                            .arch
                            .gateway_between(r.path[pos - 1], k)
                            .expect("path choices are topology-valid");
                        for (&p, v) in &vars {
                            let want = BoolExpr::constant(p == gw);
                            self.problem.assert(sel.expr().implies(v.expr().iff(want)));
                        }
                    }
                }
            }
            fwd_vars.insert(k, vars);
        }

        MsgVars {
            id: mid,
            routes,
            hsel,
            media,
            k_used,
            k_used_int,
            local_deadline,
            jitter,
            resp: BTreeMap::new(),
            fwd: fwd_vars,
        }
    }

    /// Eq. (2)/(3): per-medium response times with ceiling-eliminated
    /// interference and the TDMA blocking term.
    fn encode_message_rta(&mut self, idx: usize) {
        let mid = self.msgs[idx].id;
        let m = self.tasks.message(mid).clone();
        let delta = m.deadline as i64;
        let media = self.msgs[idx].media.clone();

        for &k in &media {
            let med = self.arch.medium(k).clone();
            let rho = med.transmission_time(m.size) as i64;
            let r = self.problem.int_var(rho, delta.max(rho));
            let used = self.msgs[idx].k_used[&k].clone();

            // Schedulability on the medium: r ≤ local deadline when used.
            let d = self.msgs[idx].local_deadline[&k];
            self.problem
                .assert(used.clone().implies(r.expr().le(d.expr())));

            // Interference from statically higher-priority messages that
            // can also use k.
            let mut interference: Vec<IntExpr> = Vec::new();
            let hp: Vec<usize> = (0..self.msgs.len())
                .filter(|&j| j != idx)
                .filter(|&j| {
                    let other = self.msgs[j].id;
                    self.msg_outranks(other, mid) && self.msgs[j].media.contains(&k)
                })
                .collect();
            for j in hp {
                let other_id = self.msgs[j].id;
                let om = self.tasks.message(other_id).clone();
                let operiod = self.tasks.task(other_id.sender).period;
                let orho = med.transmission_time(om.size) as i64;
                let both = used.clone().and(self.msgs[j].k_used[&k].clone());
                // On TDMA media interference additionally requires sharing
                // the forwarding slot.
                let both = if med.is_tdma() {
                    let same_slot =
                        BoolExpr::any(self.msgs[idx].fwd[&k].iter().filter_map(|(p, v)| {
                            self.msgs[j].fwd[&k].get(p).map(|w| v.expr().and(w.expr()))
                        }));
                    both.and(same_slot)
                } else {
                    both
                };

                let imax = (m.deadline + self.jitter_hi(j)).div_ceil(operiod).max(1);
                let i_var = self.problem.int_var(0, imax as i64);
                let oj = self.msgs[j].jitter[&k];
                let arrival = r.expr() + oj.expr();
                self.problem.assert(
                    both.implies(
                        (i_var.expr() * operiod as i64)
                            .ge(arrival.clone())
                            .and(((i_var.expr() - 1) * operiod as i64).lt(arrival)),
                    ),
                );
                self.problem.assert(both.not().implies(i_var.expr().eq(0)));
                interference.push(i_var.expr() * orho);
            }

            // TDMA blocking (eq. 3): ⌈r/Λ⌉ · (Λ − λ(own slot)), with the
            // round length and own slot possibly decision variables — the
            // nonlinear part of the encoding.
            let blocking = if med.is_tdma() {
                let (round, round_lo, _round_hi) = self.round_expr(k);
                let fwd_pairs: Vec<(EcuId, optalloc_intopt::BoolVar)> = self.msgs[idx].fwd[&k]
                    .iter()
                    .map(|(&p, v)| (p, *v))
                    .collect();
                // Own-slot length: Σ_p ⟦fwd_p⟧ · slot_p, and slot fit — a
                // frame must fit the slot it is sent from.
                let mut osl_terms: Vec<IntExpr> = Vec::new();
                for &(p, v) in &fwd_pairs {
                    let idx_in_members = med
                        .members
                        .iter()
                        .position(|&q| q == p)
                        .expect("forwarder domain ⊆ members");
                    let slot = self.slot_expr(k, idx_in_members);
                    let bit = self.b2i(&v.expr());
                    osl_terms.push(bit * slot.clone());
                    self.problem.assert(v.expr().implies(slot.ge(rho)));
                }
                let osl = IntExpr::sum(osl_terms);
                let imb_max = (delta as u64).div_ceil(round_lo as u64).max(1);
                let imb = self.problem.int_var(0, imb_max as i64);
                self.problem.assert(
                    used.clone().implies(
                        (imb.expr() * round.clone())
                            .ge(r.expr())
                            .and(((imb.expr() - 1) * round.clone()).lt(r.expr())),
                    ),
                );
                self.problem.assert(used.not().implies(imb.expr().eq(0)));
                imb.expr() * (round - osl)
            } else {
                IntExpr::constant(0)
            };

            // The response-time equation itself.
            let rhs = IntExpr::constant(rho) + IntExpr::sum(interference) + blocking;
            self.problem.assert(r.expr().eq(rhs));
            self.msgs[idx].resp.insert(k, r);
        }
    }

    /// Static message priority: deadline-monotonic in Δ, ties by id —
    /// mirrors `optalloc_analysis::msg_outranks`.
    fn msg_outranks(&self, a: MsgId, b: MsgId) -> bool {
        let da = self.tasks.message(a).deadline;
        let db = self.tasks.message(b).deadline;
        (da, a) < (db, b)
    }

    /// Upper bound of another message's jitter variable (for interference
    /// count ranges).
    fn jitter_hi(&self, j: usize) -> Time {
        let sender = self.msgs[j].id.sender;
        let m = self.tasks.message(self.msgs[j].id);
        self.tasks.task(sender).release_jitter + m.deadline
    }
}
