//! **Table 4** — hierarchical architectures A, B, C (Figure 2), minimizing
//! the sum of token rotation times.
//!
//! Paper rows:
//!
//! ```text
//! Arch A + \[5\]:  ΣTRT = 10.77ms   490 min
//! Arch B + \[5\]:  ΣTRT = 16.32ms   740 min
//! Arch C + \[5\]:  ΣTRT =  8.55ms   790 min
//! ```
//!
//! Shape to reproduce: A and B (task-free gateways ⇒ forced multi-bus
//! traffic) cost **more** total TRT than the single-bus baseline, with B
//! (three buses) worst; C (a task-hosting gateway splitting the original
//! ECUs) recovers (close to) the single-bus optimum.
//!
//! Quick mode uses a 14-task set; `--full` the 43-task benchmark.

use optalloc::{Objective, Optimizer};
use optalloc_bench::{emit, parse_cli, solve_options, Row};
use optalloc_model::{ticks_to_ms, MediumId};
use optalloc_workloads::{generate, table4_workload, Fig2, GenParams};

fn main() {
    let cli = parse_cli();
    let mut rows = Vec::new();

    let params = if cli.full {
        GenParams::tindell43()
    } else {
        GenParams {
            n_tasks: 14,
            n_chains: 4,
            utilization: 0.30,
            ..GenParams::tindell43()
        }
    };

    // Baseline: the same task set on the original single ring.
    let base = generate(&params);
    match Optimizer::new(&base.arch, &base.tasks)
        .with_options(solve_options(cli.full))
        .minimize(&Objective::TokenRotationTime(MediumId(0)))
    {
        Ok(r) => rows.push(Row::from_report(
            "single ring (baseline)",
            &r,
            format!("TRT = {:.2}ms", ticks_to_ms(r.cost as u64)),
        )),
        Err(e) => rows.push(Row {
            experiment: "single ring (baseline)".into(),
            result: format!("{e}"),
            time_s: 0.0,
            vars_k: 0.0,
            lits_k: 0.0,
            note: String::new(),
        }),
    }

    for which in [Fig2::A, Fig2::B, Fig2::C] {
        let w = table4_workload(which, &params);
        let result = Optimizer::new(&w.arch, &w.tasks)
            .with_options(solve_options(cli.full))
            .minimize(&Objective::SumTokenRotationTimes);
        match result {
            Ok(r) => rows.push(Row::from_report(
                format!("Arch {which:?} + [5]-style"),
                &r,
                format!("ΣTRT = {:.2}ms", ticks_to_ms(r.cost as u64)),
            )),
            Err(optalloc::OptError::Budget { incumbent }) => rows.push(Row {
                experiment: format!("Arch {which:?} + [5]-style"),
                result: match incumbent {
                    Some((c, _)) => {
                        format!("≤ {:.2}ms (budget)", ticks_to_ms(c as u64))
                    }
                    None => "budget exhausted".into(),
                },
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: "conflict budget hit; rerun with --full".into(),
            }),
            Err(e) => rows.push(Row {
                experiment: format!("Arch {which:?} + [5]-style"),
                result: format!("{e}"),
                time_s: 0.0,
                vars_k: 0.0,
                lits_k: 0.0,
                note: String::new(),
            }),
        }
    }

    emit(
        "Table 4: hierarchical architectures A/B/C (Fig. 2), ΣTRT objective",
        &rows,
        &cli,
    );
    println!(
        "paper: A 10.77ms / B 16.32ms / C 8.55ms — dedicated gateways (A, B) \
         inflate total TRT; the shared task-hosting gateway (C) recovers the \
         single-bus optimum"
    );
}
