//! End-to-end tests of the allocation service: cache semantics, delta
//! warm re-solving vs. cold ground truth, admission control, graceful
//! drain, and the TCP wire protocol.

use optalloc::{analysis, InstanceDelta, Objective, OptError, Optimizer, SolveOptions};
use optalloc_model::{Architecture, Ecu, EcuId, Medium, Task, TaskId, TaskSet};
use optalloc_service::protocol::{
    Instance, JobOutcome, JobResult, RejectReason, Request, Response, WarmLabel,
};
use optalloc_service::{serve, Service, ServiceConfig};
use proptest::prelude::*;

/// Two ECUs on one CAN bus, three tasks with a message — small enough to
/// solve in milliseconds, rich enough to exercise placement, priorities
/// and routing.
fn small_instance() -> Instance {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("a", 20, 20, vec![(p0, 8), (p1, 8)]).sends(TaskId(1), 2, 20));
    tasks.push(Task::new("b", 20, 20, vec![(p0, 8), (p1, 8)]));
    tasks.push(Task::new("c", 20, 19, vec![(p0, 8), (p1, 8)]));
    Instance { arch, tasks }
}

/// The same instance with every declaration order permuted (ECUs, tasks);
/// ids differ, names and content do not.
fn permuted_instance() -> Instance {
    let mut arch = Architecture::new();
    let p1 = arch.push_ecu(Ecu::new("p1"));
    let p0 = arch.push_ecu(Ecu::new("p0"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("c", 20, 19, vec![(p0, 8), (p1, 8)]));
    tasks.push(Task::new("b", 20, 20, vec![(p0, 8), (p1, 8)]));
    tasks.push(Task::new("a", 20, 20, vec![(p0, 8), (p1, 8)]).sends(TaskId(1), 2, 20));
    Instance { arch, tasks }
}

fn solve_request(instance: Instance) -> Request {
    Request::Solve {
        instance,
        objective: Objective::MaxUtilizationPermille,
        timeout_ms: None,
    }
}

fn expect_result(response: Response) -> JobResult {
    match response {
        Response::Result(r) => r,
        other => panic!("expected a job result, got {other:?}"),
    }
}

fn optimal_cost(result: &JobResult) -> i64 {
    match &result.outcome {
        JobOutcome::Optimal { cost, .. } => *cost,
        other => panic!("expected an optimal outcome, got {other:?}"),
    }
}

#[test]
fn cache_hit_answers_without_touching_the_sat_layer() {
    let service = Service::new(ServiceConfig::default());
    let first = expect_result(service.handle(solve_request(small_instance())));
    assert!(!first.cached);
    assert!(first.solve_calls > 0);

    let second = expect_result(service.handle(solve_request(small_instance())));
    assert!(second.cached);
    assert_eq!(second.warm, WarmLabel::Cache);
    assert_eq!(second.solve_calls, 0);
    assert_eq!(second.conflicts, 0);
    assert_eq!(second.fingerprint, first.fingerprint);
    assert_eq!(optimal_cost(&second), optimal_cost(&first));
}

#[test]
fn permuted_instance_hits_the_cache_with_a_remapped_allocation() {
    let service = Service::new(ServiceConfig::default());
    let first = expect_result(service.handle(solve_request(small_instance())));

    let permuted = permuted_instance();
    let hit = expect_result(service.handle(solve_request(permuted.clone())));
    assert!(
        hit.cached,
        "reordered declarations must share the cache key"
    );
    assert_eq!(hit.fingerprint, first.fingerprint);
    assert_eq!(optimal_cost(&hit), optimal_cost(&first));

    // The returned allocation must be valid *in the permuted instance's
    // own id space* — re-validate it with the independent analysis.
    let JobOutcome::Optimal { allocation, .. } = &hit.outcome else {
        panic!("expected an optimal outcome");
    };
    let report = analysis::validate(
        &permuted.arch,
        &permuted.tasks,
        allocation,
        &analysis::AnalysisConfig::default(),
    );
    assert!(report.is_feasible(), "remapped allocation must re-validate");
}

#[test]
fn delta_re_solve_is_warm_and_matches_a_cold_solve() {
    let service = Service::new(ServiceConfig::default());
    let base = expect_result(service.handle(solve_request(small_instance())));

    let ops = vec![InstanceDelta::SetWcet {
        task: "b".into(),
        ecu: "p0".into(),
        wcet: 12,
    }];
    let warmed = expect_result(service.handle(Request::Delta {
        base: Some(base.fingerprint.clone()),
        ops: ops.clone(),
        objective: None,
        timeout_ms: None,
    }));
    assert!(!warmed.cached);
    assert_ne!(warmed.fingerprint, base.fingerprint);
    assert!(
        matches!(warmed.warm, WarmLabel::Seeded | WarmLabel::Reused),
        "a WCET delta must keep warm state, got {:?}",
        warmed.warm
    );

    // Ground truth: a cold solve of the mutated instance.
    let mut mirror = small_instance();
    optalloc::apply_deltas(&mirror.arch, &mut mirror.tasks, &ops).unwrap();
    let cold = Optimizer::new(&mirror.arch, &mirror.tasks)
        .minimize(&Objective::MaxUtilizationPermille)
        .unwrap();
    assert_eq!(optimal_cost(&warmed), cold.cost);

    // An anonymous delta (base = None) chains off the most recent job.
    let chained = expect_result(service.handle(Request::Delta {
        base: None,
        ops: vec![InstanceDelta::SetWcet {
            task: "b".into(),
            ecu: "p0".into(),
            wcet: 8,
        }],
        objective: None,
        timeout_ms: None,
    }));
    assert_eq!(optimal_cost(&chained), optimal_cost(&base));
}

#[test]
fn rejected_deltas_leave_the_session_usable() {
    let service = Service::new(ServiceConfig::default());
    let base = expect_result(service.handle(solve_request(small_instance())));

    // Unknown task: resolution fails, nothing is enqueued.
    let bad = service.handle(Request::Delta {
        base: Some(base.fingerprint.clone()),
        ops: vec![InstanceDelta::SetDeadline {
            task: "nope".into(),
            deadline: 10,
        }],
        objective: None,
        timeout_ms: None,
    });
    assert!(matches!(bad, Response::Error { .. }), "got {bad:?}");

    // Unknown base fingerprint.
    let bad = service.handle(Request::Delta {
        base: Some(format!("{:0>32}", "f00d")),
        ops: vec![],
        objective: None,
        timeout_ms: None,
    });
    assert!(matches!(bad, Response::Error { .. }), "got {bad:?}");

    // The session survives failed resolutions: a valid delta still works.
    let ok = expect_result(service.handle(Request::Delta {
        base: Some(base.fingerprint.clone()),
        ops: vec![],
        objective: None,
        timeout_ms: None,
    }));
    assert_eq!(optimal_cost(&ok), optimal_cost(&base));
}

#[test]
fn delta_with_no_history_is_an_error() {
    let service = Service::new(ServiceConfig::default());
    let resp = service.handle(Request::Delta {
        base: None,
        ops: vec![],
        objective: None,
        timeout_ms: None,
    });
    assert!(matches!(resp, Response::Error { .. }), "got {resp:?}");
}

#[test]
fn cost_bound_deltas_solve_inside_the_window() {
    let service = Service::new(ServiceConfig::default());
    let base = expect_result(service.handle(solve_request(small_instance())));
    let optimum = optimal_cost(&base);

    // A window strictly above the optimum keeps the instance feasible but
    // must not return anything below the lower bound.
    let floored = expect_result(service.handle(Request::Delta {
        base: Some(base.fingerprint.clone()),
        ops: vec![InstanceDelta::CostBounds {
            lower: Some(optimum + 1),
            upper: None,
        }],
        objective: None,
        timeout_ms: None,
    }));
    match &floored.outcome {
        JobOutcome::Optimal { cost, .. } => assert!(*cost > optimum),
        JobOutcome::Infeasible => {} // nothing above the optimum exists
        other => panic!("unexpected outcome {other:?}"),
    }

    // A window strictly below the optimum is infeasible by definition.
    let capped = expect_result(service.handle(Request::Delta {
        base: Some(base.fingerprint),
        ops: vec![InstanceDelta::CostBounds {
            lower: None,
            upper: Some(optimum - 1),
        }],
        objective: None,
        timeout_ms: None,
    }));
    assert_eq!(capped.outcome, JobOutcome::Infeasible);
}

#[test]
fn certified_results_cache_their_certificate() {
    let config = ServiceConfig {
        solve: SolveOptions {
            certify: true,
            ..SolveOptions::default()
        },
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    let first = expect_result(service.handle(solve_request(small_instance())));
    assert!(matches!(
        first.outcome,
        JobOutcome::Optimal {
            certified: true,
            ..
        }
    ));
    let cert = service
        .certificate(&first.fingerprint)
        .expect("certified solve caches its certificate");
    assert_eq!(cert.certificate.optimum, optimal_cost(&first));

    // The cache hit still reports (and retains) the certificate.
    let second = expect_result(service.handle(solve_request(permuted_instance())));
    assert!(second.cached);
    assert!(matches!(
        second.outcome,
        JobOutcome::Optimal {
            certified: true,
            ..
        }
    ));
}

#[test]
fn drain_rejects_new_submissions_with_a_typed_response() {
    let service = Service::new(ServiceConfig::default());
    let first = expect_result(service.handle(solve_request(small_instance())));
    assert!(matches!(first.outcome, JobOutcome::Optimal { .. }));

    assert_eq!(service.handle(Request::Shutdown), Response::ShuttingDown);
    let rejected = service.handle(solve_request(small_instance()));
    assert_eq!(
        rejected,
        Response::Rejected {
            reason: RejectReason::Draining
        }
    );
    match service.handle(Request::Status) {
        Response::Status { draining, .. } => assert!(draining),
        other => panic!("expected status, got {other:?}"),
    }
    service.shutdown(); // completes without hanging
}

#[test]
fn full_queue_rejects_with_back_pressure() {
    let config = ServiceConfig {
        queue_capacity: 0,
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    let rejected = service.handle(solve_request(small_instance()));
    assert_eq!(
        rejected,
        Response::Rejected {
            reason: RejectReason::QueueFull
        }
    );
}

#[test]
fn cancelling_a_running_job_interrupts_it() {
    let service = Service::new(ServiceConfig::default());
    let workload = optalloc_workloads::task_scaling(20);
    let id = service
        .submit(Request::Solve {
            instance: Instance {
                arch: workload.arch,
                tasks: workload.tasks,
            },
            objective: Objective::MaxUtilizationPermille,
            timeout_ms: None,
        })
        .expect("admitted");
    std::thread::sleep(std::time::Duration::from_millis(30));
    let cancelled = service.cancel(id);
    let result = expect_result(service.wait(id));
    if cancelled {
        assert!(
            matches!(result.outcome, JobOutcome::Timeout { .. }),
            "a cancelled job reports a timeout outcome, got {:?}",
            result.outcome
        );
    } else {
        // The job beat the cancel; it must then have finished normally.
        assert!(matches!(result.outcome, JobOutcome::Optimal { .. }));
    }
}

#[test]
fn per_job_timeouts_interrupt_the_solver() {
    let service = Service::new(ServiceConfig::default());
    let workload = optalloc_workloads::task_scaling(20);
    let result = expect_result(service.handle(Request::Solve {
        instance: Instance {
            arch: workload.arch,
            tasks: workload.tasks,
        },
        objective: Objective::MaxUtilizationPermille,
        timeout_ms: Some(1),
    }));
    assert!(
        matches!(result.outcome, JobOutcome::Timeout { .. }),
        "a 1 ms deadline on table3-t20 must fire, got {:?}",
        result.outcome
    );
}

// ----------------------------------------------------------------------
// TCP wire protocol
// ----------------------------------------------------------------------

#[test]
fn tcp_round_trip_solve_status_shutdown() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut server = serve(Service::new(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut call = |req: &Request| -> Response {
        let mut line = serde_json::to_string(req).unwrap();
        line.push('\n');
        writer.write_all(line.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    let first = expect_result(call(&solve_request(small_instance())));
    assert!(matches!(first.outcome, JobOutcome::Optimal { .. }));

    let cached = expect_result(call(&solve_request(small_instance())));
    assert!(cached.cached);
    assert_eq!(cached.solve_calls, 0);

    match call(&Request::Status) {
        Response::Status {
            queued,
            inflight,
            draining,
            cached,
            search,
            phases,
        } => {
            assert_eq!((queued, inflight, draining), (0, 0, false));
            assert_eq!(cached, 1);
            // The first (uncached) solve propagated something; the cache
            // hit added nothing on top.
            assert!(search.propagations > 0, "{search:?}");
            // Phase totals accumulate across jobs: the uncached solve
            // spent real time encoding and searching.
            assert!(
                phases.encode_ms >= 0.0 && phases.search_ms >= 0.0,
                "{phases:?}"
            );
        }
        other => panic!("expected status, got {other:?}"),
    }

    assert_eq!(call(&Request::Shutdown), Response::ShuttingDown);
    // The connection stays up, but submissions are now rejected as
    // draining — the typed response crosses the wire too.
    assert_eq!(
        call(&solve_request(small_instance())),
        Response::Rejected {
            reason: RejectReason::Draining
        }
    );
    server.shutdown(); // drains and joins cleanly
}

#[test]
fn tcp_malformed_requests_answer_with_a_typed_error() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = serve(Service::new(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writer.write_all(b"this is not json\n").unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    match serde_json::from_str::<Response>(&resp).unwrap() {
        Response::Error { message } => assert!(message.contains("malformed")),
        other => panic!("expected an error, got {other:?}"),
    }
}

#[test]
fn tcp_oversized_request_gets_a_typed_error_and_connection_survives() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = serve(Service::new(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Stream one line well past the cap. The server must not buffer it
    // all: it answers with a typed error as soon as the cap is crossed,
    // then discards the remainder of the line.
    let chunk = vec![b'x'; 64 * 1024];
    let total = optalloc_service::server::MAX_REQUEST_BYTES + 2 * chunk.len();
    let mut sent = 0;
    while sent < total {
        writer.write_all(&chunk).unwrap();
        sent += chunk.len();
    }
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();

    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    match serde_json::from_str::<Response>(&resp).unwrap() {
        Response::Error { message } => assert!(message.contains("oversized"), "{message}"),
        other => panic!("expected an error, got {other:?}"),
    }

    // The connection is still usable for well-formed requests.
    let mut line = serde_json::to_string(&Request::Status).unwrap();
    line.push('\n');
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(matches!(
        serde_json::from_str::<Response>(&resp).unwrap(),
        Response::Status { .. }
    ));
}

#[test]
fn tcp_half_closed_connection_still_gets_its_last_request_answered() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{Shutdown, TcpStream};

    let server = serve(Service::new(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // The client sends a request with no trailing newline and half-closes
    // its write side. The server must treat EOF as end-of-line, answer on
    // the still-open read side, and not just drop the connection.
    let line = serde_json::to_string(&Request::Status).unwrap();
    writer.write_all(line.as_bytes()).unwrap();
    writer.flush().unwrap();
    writer.shutdown(Shutdown::Write).unwrap();

    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(matches!(
        serde_json::from_str::<Response>(&resp).unwrap(),
        Response::Status { .. }
    ));
    // After the reply the server sees EOF and closes cleanly.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
}

#[test]
fn tcp_metrics_round_trip_reports_job_counters() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = serve(Service::new(ServiceConfig::default()), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut call = |req: &Request| -> Response {
        let mut line = serde_json::to_string(req).unwrap();
        line.push('\n');
        writer.write_all(line.as_bytes()).unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        serde_json::from_str(&resp).unwrap()
    };

    let first = expect_result(call(&solve_request(small_instance())));
    assert!(matches!(first.outcome, JobOutcome::Optimal { .. }));
    let cached = expect_result(call(&solve_request(small_instance())));
    assert!(cached.cached);

    match call(&Request::Metrics) {
        Response::Metrics { snapshot } => {
            let counter = |name: &str| {
                snapshot
                    .counters
                    .iter()
                    .find(|c| c.name == name)
                    .map(|c| c.value)
            };
            assert_eq!(counter("service.jobs"), Some(1), "{snapshot:?}");
            assert_eq!(counter("service.jobs_optimal"), Some(1));
            assert_eq!(counter("service.cache_hits"), Some(1));
            let job_ms = snapshot
                .histograms
                .iter()
                .find(|h| h.name == "service.job_ms")
                .expect("job_ms histogram");
            assert_eq!(job_ms.count, 1);
        }
        other => panic!("expected metrics, got {other:?}"),
    }
}

// ----------------------------------------------------------------------
// Random delta chains: warm must equal cold at every step
// ----------------------------------------------------------------------

/// Derives one mutation from a seed, against the current mirror state.
/// Name-based like the protocol, so it stays valid as tasks come and go.
fn op_from_seed(mirror: &TaskSet, step: usize, seed: u64) -> InstanceDelta {
    let task = |sel: u64| {
        let idx = (sel as usize) % mirror.len();
        mirror.iter().nth(idx).unwrap().1.name.clone()
    };
    match seed % 4 {
        0 => InstanceDelta::SetWcet {
            task: task(seed / 4),
            ecu: if (seed / 8).is_multiple_of(2) {
                "p0"
            } else {
                "p1"
            }
            .into(),
            wcet: 1 + seed / 16 % 12,
        },
        1 => InstanceDelta::SetDeadline {
            task: task(seed / 4),
            deadline: 10 + seed / 16 % 60,
        },
        2 => InstanceDelta::AddTask(Task::new(
            format!("g{step}"),
            60,
            30 + seed / 16 % 30,
            vec![
                (EcuId(0), 1 + seed / 16 % 10),
                (EcuId(1), 1 + seed / 32 % 10),
            ],
        )),
        _ => InstanceDelta::RemoveTask {
            task: task(seed / 4),
        },
    }
}

/// Runs a random chain of deltas through a service and asserts that every
/// warm re-solve agrees exactly with a cold solve of the mutated mirror.
fn check_delta_chain(seeds: &[u64], certify: bool) -> Result<(), TestCaseError> {
    let config = ServiceConfig {
        solve: SolveOptions {
            certify,
            ..SolveOptions::default()
        },
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    let mut mirror = small_instance();
    let base = expect_result(service.handle(solve_request(mirror.clone())));
    let mut fingerprint = base.fingerprint;

    for (step, &seed) in seeds.iter().enumerate() {
        let op = op_from_seed(&mirror.tasks, step, seed);
        let response = service.handle(Request::Delta {
            base: Some(fingerprint.clone()),
            ops: vec![op.clone()],
            objective: None,
            timeout_ms: None,
        });

        // Mirror the mutation locally; both sides use the same
        // transactional engine, so rejection must match exactly.
        let applied = optalloc::apply_deltas(&mirror.arch, &mut mirror.tasks, &[op]);
        match applied {
            Err(_) => {
                prop_assert!(
                    matches!(response, Response::Error { .. }),
                    "service accepted a delta the engine rejects: {response:?}"
                );
                continue; // mirror unchanged (transactional), chain goes on
            }
            Ok(window) => {
                prop_assert!(window.is_unbounded(), "model deltas carry no window");
            }
        }

        let result = expect_result(response);
        fingerprint = result.fingerprint.clone();
        let cold = Optimizer::new(&mirror.arch, &mirror.tasks)
            .minimize(&Objective::MaxUtilizationPermille);
        match (&result.outcome, &cold) {
            (
                JobOutcome::Optimal {
                    cost, certified, ..
                },
                Ok(report),
            ) => {
                prop_assert_eq!(*cost, report.cost, "warm optimum diverged at step {}", step);
                prop_assert_eq!(*certified, certify);
            }
            (JobOutcome::Infeasible, Err(OptError::Infeasible)) => {}
            (warm, cold) => {
                return Err(TestCaseError::Fail(format!(
                    "warm/cold verdicts diverged at step {step}: {warm:?} vs {cold:?}"
                )))
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_delta_chains_match_cold_re_solves(
        seeds in proptest::collection::vec(any::<u64>(), 1..6)
    ) {
        check_delta_chain(&seeds, false)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn random_delta_chains_match_cold_re_solves_under_certify(
        seeds in proptest::collection::vec(any::<u64>(), 1..5)
    ) {
        check_delta_chain(&seeds, true)?;
    }
}
