//! LRU result cache keyed by canonical fingerprint.
//!
//! A hit returns the prior optimum, allocation **and certificate** without
//! touching the SAT layer. The stored allocation lives in the id space of
//! the instance that was first solved; the service remaps it by name when
//! a permuted-but-identical instance hits (see
//! [`fingerprint::remap_allocation`](crate::fingerprint::remap_allocation)).

use crate::fingerprint::Fingerprint;
use crate::protocol::{Instance, JobResult};
use optalloc::CertificateReport;
use std::collections::HashMap;

/// One cached terminal result.
#[derive(Clone)]
pub(crate) struct CachedResult {
    /// The result as it was first produced (allocation in the id space of
    /// `instance`).
    pub result: JobResult,
    /// The instance the result was computed for (original declaration
    /// order) — the remap source on permuted hits, and the equality
    /// re-check against hash collisions.
    pub instance: Instance,
    /// The verified optimality certificate, when the job was certified.
    pub certificate: Option<CertificateReport>,
}

struct Entry {
    value: CachedResult,
    /// Monotone access stamp; smallest = least recently used.
    stamp: u64,
}

/// A small LRU map: capacity is a handful of instances, so eviction scans
/// instead of maintaining an intrusive list.
pub(crate) struct ResultCache {
    map: HashMap<Fingerprint, Entry>,
    capacity: usize,
    clock: u64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: HashMap::new(),
            capacity,
            clock: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Looks a fingerprint up and refreshes its recency.
    pub fn get(&mut self, key: &Fingerprint) -> Option<&CachedResult> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|e| {
            e.stamp = clock;
            &e.value
        })
    }

    /// Inserts (or replaces) an entry, evicting the least recently used
    /// one when over capacity. A zero-capacity cache stores nothing.
    pub fn put(&mut self, key: Fingerprint, value: CachedResult) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.map.insert(
            key,
            Entry {
                value,
                stamp: self.clock,
            },
        );
        while self.map.len() > self.capacity {
            let oldest = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("non-empty map has a minimum");
            self.map.remove(&oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{JobOutcome, SearchSummary, WarmLabel};
    use optalloc_model::{Architecture, TaskSet};

    fn dummy(fp: &str) -> (Fingerprint, CachedResult) {
        let key: Fingerprint = format!("{fp:0>32}").parse().unwrap();
        let value = CachedResult {
            result: JobResult {
                fingerprint: key.to_string(),
                outcome: JobOutcome::Infeasible,
                cached: false,
                warm: WarmLabel::Cold,
                solve_calls: 1,
                conflicts: 0,
                solve_ms: 0,
                search: SearchSummary::default(),
                phases: optalloc_obs::PhaseTotals::default(),
            },
            instance: Instance {
                arch: Architecture::new(),
                tasks: TaskSet::new(),
            },
            certificate: None,
        };
        (key, value)
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut cache = ResultCache::new(2);
        let (a, va) = dummy("a");
        let (b, vb) = dummy("b");
        let (c, vc) = dummy("c");
        cache.put(a, va);
        cache.put(b, vb);
        assert!(cache.get(&a).is_some()); // refresh a: b is now coldest
        cache.put(c, vc);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some());
        assert!(cache.get(&b).is_none());
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut cache = ResultCache::new(0);
        let (a, va) = dummy("a");
        cache.put(a, va);
        assert_eq!(cache.len(), 0);
        assert!(cache.get(&a).is_none());
    }
}
