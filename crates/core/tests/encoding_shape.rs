//! Structural tests of the encoder: encode-time infeasibility detection,
//! route-choice pruning, and encoding-size scaling.

use optalloc::{Objective, OptError, Optimizer, SolveOptions};
use optalloc_model::{Architecture, Ecu, EcuId, Medium, Task, TaskId, TaskSet};

#[test]
fn task_with_no_legal_ecu_is_infeasible_at_encode_time() {
    let mut arch = Architecture::new();
    arch.push_ecu(Ecu::new("gw").gateway_only());
    arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1));
    let mut tasks = TaskSet::new();
    // Permission set only contains the gateway.
    tasks.push(Task::new("t", 10, 10, vec![(EcuId(0), 1)]));
    match Optimizer::new(&arch, &tasks).find_feasible() {
        Err(OptError::Infeasible) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn message_between_disconnected_islands_is_infeasible() {
    // Two buses with no gateway between them.
    let mut arch = Architecture::new();
    for i in 0..4 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
    arch.push_medium(Medium::priority("k1", vec![EcuId(2), EcuId(3)], 1, 1));
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("s", 100, 100, vec![(EcuId(0), 5)]).sends(TaskId(1), 4, 50));
    tasks.push(Task::new("r", 100, 90, vec![(EcuId(2), 5)]));
    match Optimizer::new(&arch, &tasks).find_feasible() {
        Err(OptError::Infeasible) => {}
        other => panic!("expected infeasible, got {other:?}"),
    }
}

#[test]
fn same_island_message_is_feasible() {
    // Control for the previous test: receiver reachable on the same bus.
    let mut arch = Architecture::new();
    for i in 0..4 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
    arch.push_medium(Medium::priority("k1", vec![EcuId(2), EcuId(3)], 1, 1));
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("s", 100, 100, vec![(EcuId(0), 5)]).sends(TaskId(1), 4, 50));
    tasks.push(Task::new("r", 100, 90, vec![(EcuId(1), 5)]));
    assert!(Optimizer::new(&arch, &tasks).find_feasible().is_ok());
}

#[test]
fn encoding_size_grows_with_permission_sets() {
    // More allowed ECUs per task ⇒ more allocation literals and pair
    // machinery ⇒ larger encodings.
    let build = |ecus_per_task: usize| {
        let mut arch = Architecture::new();
        for i in 0..4 {
            arch.push_ecu(Ecu::new(format!("p{i}")));
        }
        arch.push_medium(Medium::priority("can", (0..4).map(EcuId).collect(), 1, 1));
        let mut tasks = TaskSet::new();
        for i in 0..6 {
            let wcet: Vec<_> = (0..ecus_per_task as u32).map(|p| (EcuId(p), 5)).collect();
            tasks.push(Task::new(format!("t{i}"), 60, 50 + i, wcet));
        }
        let r = Optimizer::new(&arch, &tasks)
            .minimize(&Objective::MaxUtilizationPermille)
            .unwrap();
        r.encode.bool_vars
    };
    let narrow = build(1);
    let wide = build(4);
    assert!(
        wide > narrow,
        "wide permission sets must enlarge the encoding: {wide} vs {narrow}"
    );
}

#[test]
fn restricting_permissions_changes_the_optimum() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
    // Free placement: two 40% tasks split → max util 400‰.
    let mut free = TaskSet::new();
    free.push(Task::new("a", 10, 10, vec![(p0, 4), (p1, 4)]));
    free.push(Task::new("b", 10, 9, vec![(p0, 4), (p1, 4)]));
    let free_cost = Optimizer::new(&arch, &free)
        .minimize(&Objective::MaxUtilizationPermille)
        .unwrap()
        .cost;
    assert_eq!(free_cost, 400);
    // Pinned together: 800‰.
    let mut pinned = TaskSet::new();
    pinned.push(Task::new("a", 10, 10, vec![(p0, 4)]));
    pinned.push(Task::new("b", 10, 9, vec![(p0, 4)]));
    let pinned_cost = Optimizer::new(&arch, &pinned)
        .minimize(&Objective::MaxUtilizationPermille)
        .unwrap()
        .cost;
    assert_eq!(pinned_cost, 800);
}

#[test]
fn objective_medium_type_mismatch_is_reported() {
    let mut arch = Architecture::new();
    let p0 = arch.push_ecu(Ecu::new("p0"));
    let p1 = arch.push_ecu(Ecu::new("p1"));
    let can = arch.push_medium(Medium::priority("can", vec![p0, p1], 1, 1));
    let mut tasks = TaskSet::new();
    tasks.push(Task::new("t", 10, 10, vec![(p0, 1), (p1, 1)]));
    // TRT on a priority medium is a type error.
    match Optimizer::new(&arch, &tasks).minimize(&Objective::TokenRotationTime(can)) {
        Err(OptError::Objective(_)) => {}
        other => panic!("expected objective error, got {other:?}"),
    }
    // Sum-TRT with no TDMA media likewise.
    match Optimizer::new(&arch, &tasks).minimize(&Objective::SumTokenRotationTimes) {
        Err(OptError::Objective(_)) => {}
        other => panic!("expected objective error, got {other:?}"),
    }
}

#[test]
fn gateway_service_tightens_multi_hop_budgets() {
    // A 2-hop message whose deadline only just fits without service cost.
    let mut arch = Architecture::new();
    for i in 0..2 {
        arch.push_ecu(Ecu::new(format!("p{i}")));
    }
    arch.push_ecu(Ecu::new("gw").gateway_only());
    arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(2)], 1, 1));
    arch.push_medium(Medium::priority("k1", vec![EcuId(1), EcuId(2)], 1, 1));
    let mut tasks = TaskSet::new();
    // ρ = 5 per hop; the minimal budget is 5 + 5 = 10 plus service.
    tasks.push(Task::new("s", 100, 80, vec![(EcuId(0), 5)]).sends(TaskId(1), 4, 11));
    tasks.push(Task::new("r", 100, 90, vec![(EcuId(1), 5)]));

    // Service 1: 10 + 1 ≤ 11 — feasible.
    let ok = Optimizer::new(&arch, &tasks)
        .with_options(SolveOptions {
            gateway_service: 1,
            ..Default::default()
        })
        .find_feasible();
    assert!(ok.is_ok(), "{ok:?}");

    // Service 5: 10 + 5 > 11 — infeasible.
    match Optimizer::new(&arch, &tasks)
        .with_options(SolveOptions {
            gateway_service: 5,
            ..Default::default()
        })
        .find_feasible()
    {
        Err(OptError::Infeasible) => {}
        other => panic!("expected infeasible under heavy gateway cost, got {other:?}"),
    }
}
