//! TDMA vs priority-bus trade-off on the same application — the §2 bus
//! models side by side.
//!
//! The same producer/consumer task set is allocated twice: once on a token
//! ring (minimizing the token rotation time, with the slot table chosen by
//! the optimizer) and once on a CAN bus (minimizing bus load). The example
//! prints both optimal allocations and the message response times each bus
//! yields, illustrating the blocking term that makes TDMA encodings
//! nonlinear (eq. 3).
//!
//! Run with:
//! ```text
//! cargo run --release --example bus_comparison
//! ```

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_model::{Architecture, Ecu, Medium, MediumKind, Task, TaskId, TaskSet};

/// Three ECUs with a fixed sensor/actuator split forcing bus traffic.
fn tasks_for(arch: &Architecture) -> TaskSet {
    let ecus: Vec<_> = arch.iter_ecus().map(|(id, _)| id).collect();
    let (sensor_node, proc_node, act_node) = (ecus[0], ecus[1], ecus[2]);
    let proc = TaskId(1);
    let act = TaskId(2);

    let mut tasks = TaskSet::new();
    tasks.push(Task::new("sample", 200, 100, vec![(sensor_node, 15)]).sends(proc, 6, 100));
    tasks.push(Task::new("process", 200, 160, vec![(proc_node, 40)]).sends(act, 4, 100));
    tasks.push(Task::new("actuate", 200, 200, vec![(act_node, 20)]));
    tasks
}

fn build(kind_tdma: bool) -> Architecture {
    let mut arch = Architecture::new();
    for name in ["sensor-node", "proc-node", "act-node"] {
        arch.push_ecu(Ecu::new(name));
    }
    let members: Vec<_> = arch.iter_ecus().map(|(id, _)| id).collect();
    let medium = if kind_tdma {
        Medium::tdma("ring0", members, vec![8, 8, 8], 1, 1)
    } else {
        Medium::priority("can0", members, 2, 1)
    };
    arch.push_medium(medium);
    arch
}

fn main() {
    // ---- token ring, minimize TRT ------------------------------------------
    let ring_arch = build(true);
    let ring_tasks = tasks_for(&ring_arch);
    let ring_id = optalloc_model::MediumId(0);
    let ring = Optimizer::new(&ring_arch, &ring_tasks)
        .with_options(SolveOptions {
            max_slot: 32,
            ..Default::default()
        })
        .minimize(&Objective::TokenRotationTime(ring_id))
        .expect("ring variant schedulable");
    println!("token ring : optimal TRT = {} ticks", ring.cost);
    println!(
        "             slot table = {:?}",
        ring.solution.allocation.slot_overrides[&ring_id]
    );
    for (mid, k, rt) in &ring.solution.report.message_response_times {
        println!(
            "             msg {mid} on {}: response {} ticks",
            ring_arch.medium(*k).name,
            rt.map(|r| r.to_string()).unwrap_or_else(|| "-".into())
        );
    }

    // ---- CAN, minimize bus load --------------------------------------------
    let can_arch = build(false);
    let can_tasks = tasks_for(&can_arch);
    let can = Optimizer::new(&can_arch, &can_tasks)
        .minimize(&Objective::BusLoadPermille(ring_id))
        .expect("CAN variant schedulable");
    println!(
        "\nCAN        : optimal bus load = {:.1}%",
        can.cost as f64 / 10.0
    );
    for (mid, k, rt) in &can.solution.report.message_response_times {
        println!(
            "             msg {mid} on {}: response {} ticks",
            can_arch.medium(*k).name,
            rt.map(|r| r.to_string()).unwrap_or_else(|| "-".into())
        );
    }

    // On the ring, even the highest-priority message pays slot-rotation
    // blocking (eq. 3); on CAN the top-priority message goes out in ρ ticks.
    let ring_best = ring
        .solution
        .report
        .message_response_times
        .iter()
        .filter_map(|(_, _, rt)| *rt)
        .min()
        .unwrap();
    let can_best = can
        .solution
        .report
        .message_response_times
        .iter()
        .filter_map(|(_, _, rt)| *rt)
        .min()
        .unwrap();
    println!(
        "\nbest message response: ring {ring_best} ticks vs CAN {can_best} ticks \
         (TDMA pays rotation blocking even without contention, eq. 3)"
    );
    assert!(matches!(
        ring_arch.medium(ring_id).kind,
        MediumKind::Tdma { .. }
    ));
    assert!(ring_best >= can_best);
}
