//! Lock-light metrics registry: named counters, gauges and fixed-bucket
//! histograms.
//!
//! Registration (name lookup) takes a mutex, but it happens once per
//! metric: callers hold cheap `Arc` handles and every update is a plain
//! atomic operation. Hot counters shard across cache-line-padded slots
//! indexed by a per-thread id, so concurrent workers don't contend on one
//! cache line.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shards per [`Counter`]; a power of two so the thread-id fold is a mask.
const COUNTER_SHARDS: usize = 8;

/// One cache line of counter state (padded so neighbouring shards never
/// false-share).
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonically increasing counter, sharded per thread.
#[derive(Clone, Default)]
pub struct Counter {
    shards: Arc<[PaddedU64; COUNTER_SHARDS]>,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        let shard = crate::thread_shard() & (COUNTER_SHARDS - 1);
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total (sum over shards).
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-value-wins signed gauge.
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram of `f64` observations (typically milliseconds).
pub struct HistogramInner {
    /// Upper bounds of the finite buckets, ascending; an implicit +∞ bucket
    /// follows.
    bounds: Vec<f64>,
    /// One count per finite bucket plus the overflow bucket.
    counts: Vec<AtomicU64>,
    /// Total observations.
    count: AtomicU64,
    /// Sum of observations in nanoseconds (fixed-point so it can live in an
    /// atomic integer).
    sum_ns: AtomicU64,
}

/// Shared handle to a histogram.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

/// Default duration buckets (ms): sub-ms to minutes, roughly ×4 apart.
pub const DEFAULT_MS_BUCKETS: &[f64] = &[
    0.25, 1.0, 4.0, 16.0, 64.0, 250.0, 1_000.0, 4_000.0, 16_000.0, 60_000.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let bounds: Vec<f64> = bounds.to_vec();
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                counts,
                count: AtomicU64::new(0),
                sum_ns: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.inner;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let ns = (v.max(0.0) * 1e6) as u64;
        inner.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Snapshot of the bucket counts and sum.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let inner = &self.inner;
        HistogramSnapshot {
            name: name.to_string(),
            bounds: inner.bounds.clone(),
            counts: inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum_ms: inner.sum_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry: name → metric. Lookup locks a mutex; updates through the
/// returned handles are lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use. Cache the handle;
    /// don't call this on a hot path.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name` with the given finite bucket bounds
    /// (ascending), created on first use — later calls keep the original
    /// bounds.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .clone()
    }

    /// A point-in-time snapshot of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| CounterSnapshot {
                    name: n.clone(),
                    value: c.value(),
                })
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| GaugeSnapshot {
                    name: n.clone(),
                    value: g.value(),
                })
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| h.snapshot(n))
                .collect(),
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: i64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Finite bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (the overflow bucket).
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations (ms, via ns fixed-point).
    pub sum_ms: f64,
}

/// A serializable point-in-time view of a registry (the `metrics` service
/// response and the CLI `--metrics` dump).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The value of the counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The value of the gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }
}
