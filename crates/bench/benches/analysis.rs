//! Criterion benchmarks of the numeric schedulability analysis — the hot
//! path of the heuristic baselines (every SA move re-validates).

use criterion::{criterion_group, criterion_main, Criterion};
use optalloc_analysis::{all_task_response_times, validate, AnalysisConfig};
use optalloc_workloads::{generate, GenParams};

fn bench_analysis(c: &mut Criterion) {
    let w = generate(&GenParams::tindell43());
    let config = AnalysisConfig::default();

    let mut group = c.benchmark_group("analysis");
    group.sample_size(30);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.bench_function("task_rta_tindell43", |b| {
        b.iter(|| {
            let rts = all_task_response_times(&w.tasks, &w.planted, false);
            assert!(rts.iter().all(Option::is_some));
            rts.len()
        })
    });
    group.bench_function("full_validation_tindell43", |b| {
        b.iter(|| {
            let report = validate(&w.arch, &w.tasks, &w.planted, &config);
            assert!(report.is_feasible());
            report.message_response_times.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
