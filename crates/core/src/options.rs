//! Configuration of the encoder and optimizer.

use optalloc_intopt::{Backend, BinSearchMode, EncoderOpt, MinimizeOptions, SearchEngine};
use optalloc_model::{MediumId, Time};
use optalloc_obs::{Obs, ProgressHook};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// What the optimizer minimizes (paper §6).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Objective {
    /// Minimize the token rotation time (round length Λ) of one TDMA
    /// medium — the \[5\] benchmark objective of Table 1. The medium's slot
    /// lengths become decision variables.
    TokenRotationTime(MediumId),
    /// Minimize the sum of token rotation times over all TDMA media —
    /// Table 4's objective. All TDMA slot tables become decision variables.
    SumTokenRotationTimes,
    /// Minimize the bus load `U = Σ ρₘ/tₘ` (in ‰) of one priority medium —
    /// the Table 1 CAN variant.
    BusLoadPermille(MediumId),
    /// Minimize the maximum per-ECU processor utilization (in ‰) — the
    /// utilization-balancing objective §4 mentions.
    MaxUtilizationPermille,
    /// Minimize the spread between the most and least utilized ECU (in ‰) —
    /// the "difference to the average utilization" balance goal of §4,
    /// realized as a max−min band.
    UtilizationSpreadPermille,
    /// No objective: find any feasible allocation.
    Feasibility,
}

/// How many binary searches attack the encoded problem.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// One `BIN_SEARCH` run, configured by `mode`/`backend` (the paper's
    /// setup).
    Single,
    /// A portfolio of diversified workers over the same encoding, with
    /// two-sided bound sharing, learned-clause sharing, and cooperative
    /// cancellation (see the `optalloc-portfolio` crate).
    Portfolio {
        /// Number of workers (worker 0 runs the base configuration).
        workers: usize,
        /// `true`: join all workers and pick the lowest-index decisive one
        /// — bit-stable output. `false`: race, first proven optimum wins
        /// (equal-cost optima may differ between runs).
        deterministic: bool,
    },
    /// A parallel window search: workers probe **disjoint** sub-windows of
    /// the remaining cost interval, so the terminal UNSAT certification is
    /// divided across workers instead of repeated per worker (see the
    /// `optalloc-portfolio` crate's `window` module).
    WindowSearch {
        /// Number of workers (a 1-worker search degenerates to sequential
        /// interval bisection).
        workers: usize,
        /// `true`: barrier-synchronised rounds with an index-ordered fold —
        /// bit-stable output. `false`: racing reassignment, minimal
        /// wall-clock.
        deterministic: bool,
    },
}

/// Encoder and search options.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Service cost charged per gateway crossing (ticks). Must match the
    /// `AnalysisConfig` used for validation; the optimizer keeps them in
    /// sync automatically.
    pub gateway_service: Time,
    /// Upper bound for TDMA slot-length decision variables (ticks).
    pub max_slot: Time,
    /// Encode preemption cost per co-location case (`(aᵢ=aⱼ=p) → pc =
    /// I·cⱼ(p)`, constant multiplier) instead of the paper's literal
    /// eq. (7) product `pc = I·wcetⱼ` (variable×variable). Semantically
    /// identical; an ablation knob for encoding-size experiments.
    pub product_elimination: bool,
    /// Gate-encoding backend for bit-blasting.
    pub backend: Backend,
    /// Binary-search mode (fresh re-encoding vs. incremental solver).
    pub mode: BinSearchMode,
    /// Per-`SOLVE` conflict budget; `None` = unlimited.
    pub max_conflicts: Option<u64>,
    /// Warm-start hint: a cost value known to be attainable (e.g. from the
    /// simulated-annealing baseline or a planted allocation). The first
    /// binary-search probe is bounded by it.
    pub initial_upper: Option<i64>,
    /// Account for interferer release jitter in task response times
    /// (`⌈(rᵢ + Jⱼ)/tⱼ⌉`) — one of the "release jitter, blocking factors,
    /// etc." extensions the paper's §2 mentions. Off = the literal eq. (1).
    pub task_jitter: bool,
    /// Single search vs. diversified portfolio.
    pub strategy: Strategy,
    /// Encoder-level optimizations (gate hash-consing, interval narrowing,
    /// SAT preprocessing). Default all-on; [`EncoderOpt::none`] reproduces
    /// the unoptimized baseline encoding for ablations.
    pub encoder_opt: EncoderOpt,
    /// CDCL search-engine configuration (binary-implication watch lists,
    /// tiered learned-clause database, restart policy, in-search
    /// vivification, bounded variable elimination). Default all-on;
    /// [`SearchEngine::legacy`] reproduces
    /// the pre-engine solver for ablations. Search knobs change *how* the
    /// solver explores, never *what* it concludes — optima are identical
    /// across engines.
    pub search: SearchEngine,
    /// Produce and check an optimality certificate: every solver records a
    /// DRAT proof trace, the optimum ships with refutations of all cheaper
    /// cost windows, and the optimizer verifies the proofs with the
    /// built-in forward checker plus an independent witness replay (the
    /// decoded allocation is re-analyzed and its objective value recomputed
    /// without the encoder). Adds proof-logging overhead to the search and
    /// disables cross-worker clause *imports* (exports still flow).
    pub certify: bool,
    /// Cooperative cancellation flag. When set, every solver the run
    /// creates polls it and aborts with an *interrupted* verdict once it is
    /// raised — the hook a job-scoped service timeout or shutdown uses. A
    /// long-lived flag may be **reset** (store `false`) between runs and
    /// reused; replacing the `Arc` after a search started has no effect on
    /// that search.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Checked-mode solving: every solver the run creates walks its deep
    /// invariants at solve/restart boundaries and re-verifies each model
    /// (see `optalloc_sat::SolverConfig::paranoid`). Much slower —
    /// intended for fuzz campaigns and debugging. Defaults to on in debug
    /// builds when the `OPTALLOC_PARANOID` environment variable is set.
    pub paranoid: bool,
    /// Observability handle threaded into every solver the run creates.
    /// [`Obs::disabled`] (the default) costs a single branch on solver hot
    /// paths; an [`Obs::enabled`] handle records phase spans
    /// (encode → preprocess → search → bisect-window → certify) and a
    /// metrics registry, exportable as JSONL or Chrome `trace_event` files
    /// (see `docs/OBSERVABILITY.md`).
    pub obs: Obs,
    /// Live progress hook: throttled [`optalloc_obs::ProgressEvent`]s from
    /// inside every search (conflict rate, restarts, learnt-DB tiers,
    /// current cost window). Portfolio strategies stamp each worker's
    /// events with its index.
    pub progress: Option<ProgressHook>,
}

impl SolveOptions {
    /// The [`MinimizeOptions`] these solve options translate to — exactly
    /// what [`Optimizer::minimize`](crate::Optimizer::minimize) hands the
    /// binary search. Construct warm-start engines
    /// ([`optalloc_intopt::WarmEngine`]) from this so the engine's search
    /// behaviour (backend, certification, interrupt flag) matches the
    /// optimizer's by construction.
    pub fn minimize_options(&self) -> MinimizeOptions {
        let mut opts = MinimizeOptions {
            backend: self.backend,
            mode: self.mode,
            max_conflicts: self.max_conflicts,
            initial_upper: self.initial_upper,
            encoder_opt: self.encoder_opt,
            certify: self.certify,
            ..MinimizeOptions::default()
        };
        opts.solver_config.interrupt = self.interrupt.clone();
        self.search.configure(&mut opts.solver_config);
        opts.solver_config.paranoid = self.paranoid;
        opts.solver_config.obs = self.obs.clone();
        opts.solver_config.progress = self.progress.clone();
        opts
    }
}

impl Default for SolveOptions {
    fn default() -> SolveOptions {
        SolveOptions {
            gateway_service: 2,
            max_slot: 64,
            product_elimination: false,
            backend: Backend::PseudoBoolean,
            mode: BinSearchMode::Incremental,
            max_conflicts: None,
            initial_upper: None,
            task_jitter: false,
            strategy: Strategy::Single,
            encoder_opt: EncoderOpt::default(),
            search: SearchEngine::full(),
            certify: false,
            interrupt: None,
            paranoid: cfg!(debug_assertions) && optalloc_sat::paranoid_env(),
            obs: Obs::disabled(),
            progress: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let o = SolveOptions::default();
        assert!(!o.product_elimination, "eq. (7) product is the default");
        assert_eq!(o.backend, Backend::PseudoBoolean);
        assert_eq!(o.mode, BinSearchMode::Incremental);
    }
}
