//! # optalloc-heuristics
//!
//! The heuristic baselines the paper positions its optimal approach
//! against: a Tindell-style **simulated annealing** allocator \[5\] (the
//! Table 1 comparison point) and a **greedy first-fit** allocator.
//!
//! Both produce `optalloc_model::Allocation`s whose feasibility is judged
//! by the same independent analysis (`optalloc-analysis`) the optimizer
//! uses, so heuristic and optimal results are directly comparable:
//! `SAT-optimal cost ≤ SA cost ≤ greedy cost` on feasible instances.

#![warn(missing_docs)]

mod annealing;
mod energy;
mod greedy;

pub use annealing::{anneal, derive_min_slots, derive_routes, SaParams, SaResult};
pub use energy::{energy, objective_value, HeuristicObjective, VIOLATION_PENALTY};
pub use greedy::{greedy, GreedyResult};
