//! TCP front-end: newline-delimited JSON over `std::net`.
//!
//! One [`Request`](crate::protocol::Request) per line in, one
//! [`Response`](crate::protocol::Response) per line out, in order. Each
//! connection gets its own thread; all connections share one [`Service`],
//! so its admission control, cache and warm engines apply across clients.

use crate::protocol::{Request, Response};
use crate::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server wrapping a [`Service`].
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (use port 0 for an ephemeral test port) and starts
/// accepting connections on a background thread.
pub fn serve(service: Service, addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &service, &stop))
    };
    Ok(Server {
        addr,
        service,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service, e.g. for in-process certificate retrieval.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stops accepting connections and gracefully drains the service
    /// (queued and in-flight jobs complete first). Open connections keep
    /// their socket until the client closes, but every further submission
    /// on them is rejected as draining.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.begin_drain();
        if let Some(t) = self.accept_thread.take() {
            // Unblock the (otherwise indefinitely parked) accept call.
            let _ = TcpStream::connect(self.addr);
            t.join().expect("accept thread panicked");
        }
        self.service.shutdown();
    }

    /// Blocks until a client sends [`Request::Shutdown`], then completes
    /// the drain — the run-forever mode of `optalloc-cli serve`.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        self.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &service, &stop);
        });
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let server_addr = stream.local_addr()?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let shutting_down = matches!(request, Request::Shutdown);
                let response = service.handle(request);
                if shutting_down {
                    // Stop the accept loop too — flag it, then self-connect
                    // so the parked accept call returns and observes the
                    // flag. `Server::wait`/`shutdown` join it from there.
                    stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(server_addr);
                }
                response
            }
            Err(e) => Response::Error {
                message: format!("malformed request: {e}"),
            },
        };
        let mut line = serde_json::to_string(&response).map_err(std::io::Error::other)?;
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
    }
    Ok(())
}
