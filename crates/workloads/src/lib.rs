//! # optalloc-workloads
//!
//! Benchmark workloads for the task-allocation reproduction: a synthetic
//! Tindell-style generator with planted-feasible allocations, the paper's
//! Figure 1 / Figure 2 architectures, and the Table 2 / Table 3 scaling
//! series.
//!
//! Because the original 43-task benchmark of Tindell et al. \[5\] is not
//! available in machine-readable form, these instances are *same-shape*
//! synthetics (see `DESIGN.md` §3 for the substitution argument). All
//! instances are seeded and fully deterministic.

#![warn(missing_docs)]

mod architectures;
mod gen;
mod scaling;

pub use architectures::{figure1, figure2, table4_workload, Fig2};
pub use gen::{generate, GenParams, Workload};
pub use scaling::{architecture_scaling, task_scaling, TABLE2_ECUS, TABLE3_TASKS};
