#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` stub's `Value` tree to JSON text
//! ([`to_string`], [`to_string_pretty`]) and parses JSON text back
//! ([`from_str`]) with a small recursive-descent parser.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization / deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        // `{:?}` keeps a decimal point / exponent so the value re-parses as
        // a float (matching serde_json's ryu output closely enough).
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar value.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<i64> = vec![-3, 0, 7];
        let s = super::to_string(&v).unwrap();
        assert_eq!(s, "[-3,0,7]");
        let back: Vec<i64> = super::from_str(&s).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert(2u32, vec![1.5f64]);
        m.insert(10u32, vec![]);
        let s = super::to_string(&m).unwrap();
        assert_eq!(s, r#"{"2":[1.5],"10":[]}"#);
        let back: BTreeMap<u32, Vec<f64>> = super::from_str(&s).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = super::to_string(&"a\"b\\c\nd".to_string()).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = super::from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![]];
        let s = super::to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn option_roundtrip() {
        let s = super::to_string(&Option::<u32>::None).unwrap();
        assert_eq!(s, "null");
        let back: Option<u32> = super::from_str("null").unwrap();
        assert_eq!(back, None);
        let back: Option<u32> = super::from_str("4").unwrap();
        assert_eq!(back, Some(4));
    }
}
