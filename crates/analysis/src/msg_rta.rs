//! Response-time analysis for messages (paper §2, equations 2–3; §4 jitter).
//!
//! Message transmission is analyzed in analogy to CPU scheduling: messages
//! queue priority-ordered, and the bus plays the processor. Two arbitration
//! schemes are modeled:
//!
//! * **priority-driven** buses (CAN, eq. 2):
//!   `r = ρ + Σ_{hp} ⌈(r + Jⱼᵏ)/tⱼ⌉ ρⱼ`
//! * **TDMA** buses (token ring, eq. 3): the same interference plus a
//!   blocking term `⌈r/Λ⌉·(Λ − λ(S(sender)))` for rounds in which the
//!   sender's own slot has already passed.
//!
//! Message priorities are unique and deadline-monotonic in the *end-to-end*
//! deadline Δ (ties broken by message id) — constant per problem, exactly as
//! the encoder assumes.
//!
//! On a TDMA medium only messages **forwarded by the same ECU** compete for
//! the sender's slot; messages of other ECUs live in other slots and are
//! covered by the blocking term. On a priority bus every higher-priority
//! message on the medium interferes.

use optalloc_model::{Allocation, Architecture, EcuId, MediumId, MediumKind, MsgId, TaskSet, Time};

/// The ECU that puts `msg` onto `medium`: the sending task's ECU on the
/// first hop, the upstream gateway on later hops. `None` if the route does
/// not cross `medium`.
pub fn forwarder(
    arch: &Architecture,
    alloc: &Allocation,
    msg: MsgId,
    medium: MediumId,
) -> Option<EcuId> {
    let route = alloc.route(msg);
    let pos = route.media.iter().position(|&k| k == medium)?;
    if pos == 0 {
        Some(alloc.ecu_of(msg.sender))
    } else {
        arch.gateway_between(route.media[pos - 1], medium)
    }
}

/// `true` if message `a` outranks message `b` (higher priority):
/// deadline-monotonic in Δ, ties by id.
pub fn msg_outranks(tasks: &TaskSet, a: MsgId, b: MsgId) -> bool {
    let da = tasks.message(a).deadline;
    let db = tasks.message(b).deadline;
    (da, a) < (db, b)
}

/// Accumulated queuing jitter of `msg` when it reaches `medium` (§4):
/// its release jitter plus, for every upstream medium, the local deadline
/// minus the best-case transmission time.
pub fn jitter_on_medium(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    msg: MsgId,
    medium: MediumId,
) -> Option<Time> {
    let route = alloc.route(msg);
    let pos = route.media.iter().position(|&k| k == medium)?;
    let m = tasks.message(msg);
    let mut j = tasks.task(msg.sender).release_jitter;
    for i in 0..pos {
        let k = route.media[i];
        let best = arch.medium(k).best_case_time(m.size);
        j += route.local_deadlines[i].saturating_sub(best);
    }
    Some(j)
}

/// Messages routed over `medium`, with their analysis parameters.
fn messages_on(tasks: &TaskSet, alloc: &Allocation, medium: MediumId) -> Vec<MsgId> {
    tasks
        .messages()
        .filter(|(id, _)| alloc.route(*id).media.contains(&medium))
        .map(|(id, _)| id)
        .collect()
}

/// Worst-case response time of `msg` on `medium` under `alloc`, or `None`
/// if the iteration exceeds the local deadline budget.
///
/// Precondition: the route of `msg` crosses `medium`.
pub fn message_response_time(
    arch: &Architecture,
    tasks: &TaskSet,
    alloc: &Allocation,
    msg: MsgId,
    medium: MediumId,
) -> Option<Time> {
    let med = arch.medium(medium);
    let m = tasks.message(msg);
    let rho = med.transmission_time(m.size);
    let local_deadline = alloc
        .route(msg)
        .deadline_on(medium)
        .expect("route must cross the medium");
    let own_forwarder = forwarder(arch, alloc, msg, medium)?;

    // TDMA parameters under the allocation's slot overrides.
    let (round, own_slot) = match &med.kind {
        MediumKind::Tdma { slots } => {
            let slots = alloc.effective_slots(medium, slots);
            let idx = med.members.iter().position(|&p| p == own_forwarder)?;
            (slots.iter().sum::<Time>(), slots[idx])
        }
        MediumKind::Priority => (0, 0),
    };

    // Interfering messages: higher priority, on this medium; on TDMA
    // additionally sharing the forwarder's slot.
    let interferers: Vec<(Time, Time, Time)> = messages_on(tasks, alloc, medium)
        .into_iter()
        .filter(|&other| other != msg && msg_outranks(tasks, other, msg))
        .filter(|&other| {
            !med.is_tdma() || forwarder(arch, alloc, other, medium) == Some(own_forwarder)
        })
        .map(|other| {
            let om = tasks.message(other);
            let period = tasks.task(other.sender).period;
            let jitter = jitter_on_medium(arch, tasks, alloc, other, medium).unwrap_or(0);
            (period, med.transmission_time(om.size), jitter)
        })
        .collect();

    let mut r = rho;
    loop {
        let mut next = rho;
        for &(period, orho, jitter) in &interferers {
            next += (r + jitter).div_ceil(period) * orho;
        }
        if med.is_tdma() {
            next += r.div_ceil(round.max(1)) * (round - own_slot);
        }
        if next > local_deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{
        gateways_along, Allocation, Ecu, EcuId, Medium, MessageRoute, Task, TaskId, TaskSet,
    };

    /// Two ECUs on one bus; tasks a (p0) and b (p1); a sends to b.
    fn single_bus(kind_tdma: bool) -> (Architecture, TaskSet, Allocation) {
        let mut arch = Architecture::new();
        arch.push_ecu(Ecu::new("p0"));
        arch.push_ecu(Ecu::new("p1"));
        let medium = if kind_tdma {
            Medium::tdma("ring", vec![EcuId(0), EcuId(1)], vec![10, 10], 1, 1)
        } else {
            Medium::priority("can", vec![EcuId(0), EcuId(1)], 1, 1)
        };
        arch.push_medium(medium);

        let mut ts = TaskSet::new();
        let b = TaskId(1);
        ts.push(Task::new("a", 100, 100, vec![(EcuId(0), 5)]).sends(b, 4, 50));
        ts.push(Task::new("b", 100, 100, vec![(EcuId(1), 5)]));

        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        *alloc.route_mut(MsgId {
            sender: TaskId(0),
            index: 0,
        }) = MessageRoute::single_hop(MediumId(0), 50);
        (arch, ts, alloc)
    }

    #[test]
    fn lone_message_on_priority_bus_takes_rho() {
        let (arch, ts, alloc) = single_bus(false);
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        // ρ = 1 + 4*1 = 5.
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, msg, MediumId(0)),
            Some(5)
        );
    }

    #[test]
    fn tdma_adds_blocking_for_foreign_slots() {
        let (arch, ts, alloc) = single_bus(true);
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        // ρ = 5; Λ = 20, own slot 10 ⇒ blocking ceil(r/20)*10.
        // r0 = 5 → 5 + 10 = 15 → 5 + 10 = 15 (fixpoint).
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, msg, MediumId(0)),
            Some(15)
        );
    }

    #[test]
    fn higher_priority_message_interferes_on_priority_bus() {
        let (arch, mut ts, mut alloc) = single_bus(false);
        // Add a second, tighter-deadline message from task b to task a.
        ts.tasks[1] = ts.tasks[1].clone().sends(TaskId(0), 9, 20);
        alloc.routes[1] = vec![MessageRoute::single_hop(MediumId(0), 20)];
        let low = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        let high = MsgId {
            sender: TaskId(1),
            index: 0,
        };
        assert!(msg_outranks(&ts, high, low));
        // high: ρ = 10, alone among hp ⇒ r = 10.
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, high, MediumId(0)),
            Some(10)
        );
        // low: ρ = 5 + interference ⌈r/100⌉·10 ⇒ 15.
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, low, MediumId(0)),
            Some(15)
        );
    }

    #[test]
    fn tdma_ignores_messages_from_other_slots() {
        let (arch, mut ts, mut alloc) = single_bus(true);
        ts.tasks[1] = ts.tasks[1].clone().sends(TaskId(0), 9, 20);
        alloc.routes[1] = vec![MessageRoute::single_hop(MediumId(0), 20)];
        let low = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        // The higher-priority message is sent from p1's slot; p0's message
        // only suffers the blocking term: r = 5 + ceil(r/20)*10 = 15.
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, low, MediumId(0)),
            Some(15)
        );
    }

    #[test]
    fn deadline_overrun_returns_none() {
        let (arch, ts, mut alloc) = single_bus(true);
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        alloc.route_mut(msg).local_deadlines = vec![10]; // r would be 15
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, msg, MediumId(0)),
            None
        );
    }

    #[test]
    fn slot_override_changes_blocking() {
        let (arch, ts, mut alloc) = single_bus(true);
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        // Give p0 a bigger slot: Λ = 25, own = 15 ⇒ blocking 10 per round.
        alloc.slot_overrides.insert(MediumId(0), vec![15, 10]);
        // r = 5 + ceil(5/25)*10 = 15 → 5 + ceil(15/25)*10 = 15.
        assert_eq!(
            message_response_time(&arch, &ts, &alloc, msg, MediumId(0)),
            Some(15)
        );
    }

    #[test]
    fn forwarder_on_first_hop_is_sender_ecu() {
        let (arch, ts, alloc) = single_bus(false);
        let _ = ts;
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        assert_eq!(forwarder(&arch, &alloc, msg, MediumId(0)), Some(EcuId(0)));
        assert_eq!(forwarder(&arch, &alloc, msg, MediumId(1)), None);
    }

    #[test]
    fn jitter_accumulates_over_upstream_hops() {
        // Three media chained: k0 -p1- k1 -p3- k2.
        let mut arch = Architecture::new();
        for i in 0..5 {
            arch.push_ecu(Ecu::new(format!("p{i}")));
        }
        arch.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
        arch.push_medium(Medium::priority("k1", vec![EcuId(1), EcuId(3)], 1, 1));
        arch.push_medium(Medium::priority("k2", vec![EcuId(3), EcuId(4)], 1, 1));

        let mut ts = TaskSet::new();
        ts.push(
            Task::new("s", 100, 100, vec![(EcuId(0), 5)])
                .sends(TaskId(1), 4, 60)
                .with_jitter(3),
        );
        ts.push(Task::new("r", 100, 100, vec![(EcuId(4), 5)]));

        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(4)];
        let msg = MsgId {
            sender: TaskId(0),
            index: 0,
        };
        *alloc.route_mut(msg) = MessageRoute {
            media: vec![MediumId(0), MediumId(1), MediumId(2)],
            local_deadlines: vec![20, 15, 25],
        };
        // β = 5 on each medium; jitter on k2 = 3 + (20−5) + (15−5) = 28.
        assert_eq!(
            jitter_on_medium(&arch, &ts, &alloc, msg, MediumId(2)),
            Some(28)
        );
        assert_eq!(
            jitter_on_medium(&arch, &ts, &alloc, msg, MediumId(0)),
            Some(3)
        );
        // Gateways along the path.
        assert_eq!(
            gateways_along(&arch, &alloc.route(msg).media),
            vec![EcuId(1), EcuId(3)]
        );
    }
}
