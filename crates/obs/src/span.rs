//! Hierarchical phase spans: wall-clock timing with a thread-local parent
//! stack, exportable as JSONL or Chrome `trace_event` JSON.
//!
//! The central primitive is the [`Stopwatch`]: it *always* measures elapsed
//! time (that is the pre-existing cost of the `encode_ms`/`solve_ms`
//! bookkeeping, not new overhead) and *additionally* records a span when the
//! owning [`Obs`](crate::Obs) handle is enabled. Because the recorded span
//! duration and the value returned to the caller are the **same** `f64`,
//! a trace's per-phase totals and the stat fields fed from stopwatches can
//! never disagree: both are sums over the identical sequence of numbers.

use crate::Obs;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The pipeline phase a span belongs to (its `name` in trace exports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Bit-blasting the integer problem (or a probe's guard bounds) to
    /// clauses/PB constraints.
    Encode,
    /// Level-0 simplification / inprocessing inside the SAT solver
    /// (occurs nested under a [`Phase::Search`] span; its time is part of
    /// the search total).
    Preprocess,
    /// One SAT `solve` call.
    Search,
    /// One cost-window probe of the `BIN_SEARCH` bisection (parents the
    /// probe's guard [`Phase::Encode`] and [`Phase::Search`] spans).
    BisectWindow,
    /// Certificate assembly + verification (DRAT re-check, witness replay).
    Certify,
    /// One metamorphic-relation check in a fuzz campaign.
    Relation,
    /// Anything else; the label is used verbatim as the span name.
    Other(&'static str),
}

impl Phase {
    /// The span name used in trace exports (stable, documented in
    /// `docs/OBSERVABILITY.md`).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Preprocess => "preprocess",
            Phase::Search => "search",
            Phase::BisectWindow => "bisect-window",
            Phase::Certify => "certify",
            Phase::Relation => "relation",
            Phase::Other(s) => s,
        }
    }
}

/// One completed span, as recorded in the trace buffer. Field meanings are
/// part of the documented JSONL schema (`docs/OBSERVABILITY.md`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Unique id within the trace (allocation order, starts at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Phase label (see [`Phase::label`]).
    pub phase: String,
    /// Start offset in microseconds since the trace epoch (handle creation).
    pub start_us: u64,
    /// Duration in milliseconds — the exact `f64` the stopwatch returned to
    /// its caller (single source of truth with `encode_ms`/`solve_ms`).
    pub dur_ms: f64,
    /// Small dense id of the recording thread.
    pub tid: u64,
    /// Free-form key/value attributes (`window`, `worker`, `seed`, …).
    pub attrs: Vec<(String, String)>,
}

/// Aggregated per-phase totals computed from a trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PhaseTotal {
    /// Phase label.
    pub phase: String,
    /// Number of spans.
    pub count: u64,
    /// Sum of `dur_ms` in record order.
    pub total_ms: f64,
}

/// Per-request phase breakdown carried on reports and wire responses.
///
/// The fields are fed from the same stopwatches that record trace spans, so
/// with tracing enabled `encode_ms` equals the trace's `encode` total and
/// `search_ms` equals its `search` total exactly. `preprocess_ms` is *not*
/// additive with `search_ms` — preprocessing runs nested inside solve calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTotals {
    /// Encoding time (problem blast + per-probe guard emission), ms.
    pub encode_ms: f64,
    /// SAT search time (sum over solve calls; includes nested
    /// preprocessing), ms.
    pub search_ms: f64,
    /// Certificate assembly + verification time, ms.
    pub certify_ms: f64,
}

impl PhaseTotals {
    /// Adds every component of `other` into `self` (aggregation across
    /// jobs or workers).
    pub fn absorb(&mut self, other: &PhaseTotals) {
        self.encode_ms += other.encode_ms;
        self.search_ms += other.search_ms;
        self.certify_ms += other.certify_ms;
    }

    /// Total attributed time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.encode_ms + self.search_ms + self.certify_ms
    }
}

// Small dense per-thread ids for trace display; assigned on first use,
// process-global (trace consumers only need stable distinct values).
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Ids of the currently-open spans on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn current_tid() -> u64 {
    TID.with(|t| *t)
}

pub(crate) struct PendingSpan {
    pub(crate) obs: Obs,
    pub(crate) id: u64,
    pub(crate) parent: Option<u64>,
    pub(crate) phase: Phase,
    pub(crate) start_us: u64,
    pub(crate) attrs: Vec<(String, String)>,
}

/// Measures one phase. Created by [`Obs::stopwatch`]; call
/// [`finish`](Stopwatch::finish) to obtain the elapsed milliseconds (a
/// dropped stopwatch still records its span, but the duration is lost to
/// the caller).
pub struct Stopwatch {
    start: Instant,
    pending: Option<PendingSpan>,
}

impl Stopwatch {
    pub(crate) fn start(obs: &Obs, phase: Phase) -> Stopwatch {
        let pending = obs.core().map(|core| {
            let id = core.next_span_id();
            let parent = SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                let parent = s.last().copied();
                s.push(id);
                parent
            });
            PendingSpan {
                obs: obs.clone(),
                id,
                parent,
                phase,
                start_us: core.epoch_us(),
                attrs: Vec::new(),
            }
        });
        Stopwatch {
            start: Instant::now(),
            pending,
        }
    }

    /// `true` when this stopwatch will record a span — guard any
    /// attribute-formatting work on it to keep the disabled path free of
    /// allocations.
    pub fn recording(&self) -> bool {
        self.pending.is_some()
    }

    /// Attaches a key/value attribute to the recorded span (no-op when
    /// disabled; prefer `if sw.recording()` around expensive formatting).
    pub fn attr(&mut self, key: &str, value: impl Into<String>) {
        if let Some(p) = &mut self.pending {
            p.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Stops the watch, records the span (when enabled) and returns the
    /// elapsed milliseconds. The recorded `dur_ms` is this exact value.
    pub fn finish(mut self) -> f64 {
        self.close()
    }

    fn close(&mut self) -> f64 {
        let dur_ms = self.start.elapsed().as_secs_f64() * 1e3;
        if let Some(p) = self.pending.take() {
            SPAN_STACK.with(|s| {
                let mut s = s.borrow_mut();
                // Robust against out-of-order drops (panic unwinding): pop
                // through any abandoned inner ids.
                while let Some(top) = s.pop() {
                    if top == p.id {
                        break;
                    }
                }
            });
            if let Some(core) = p.obs.core() {
                core.record(SpanRecord {
                    id: p.id,
                    parent: p.parent,
                    phase: p.phase.label().to_string(),
                    start_us: p.start_us,
                    dur_ms,
                    tid: current_tid(),
                    attrs: p.attrs,
                });
            }
        }
        dur_ms
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if self.pending.is_some() {
            self.close();
        }
    }
}

/// Sums spans per phase, in record order (so a sum over a single-threaded
/// trace reproduces the stat-field accumulation bit-for-bit).
pub fn phase_totals(spans: &[SpanRecord]) -> Vec<PhaseTotal> {
    let mut order: Vec<String> = Vec::new();
    let mut totals: Vec<PhaseTotal> = Vec::new();
    for s in spans {
        match order.iter().position(|p| *p == s.phase) {
            Some(i) => {
                totals[i].count += 1;
                totals[i].total_ms += s.dur_ms;
            }
            None => {
                order.push(s.phase.clone());
                totals.push(PhaseTotal {
                    phase: s.phase.clone(),
                    count: 1,
                    total_ms: s.dur_ms,
                });
            }
        }
    }
    totals
}
