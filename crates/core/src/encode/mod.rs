//! Translation of the allocation problem into integer formulae (paper §3–§4).
//!
//! This module builds one [`IntProblem`] containing:
//!
//! * task-side constraints — allocation variables with placement and
//!   separation restrictions (eq. 4), WCET selection (eq. 5), response-time
//!   recurrences with ceiling elimination (eqs. 6–12) and deadline checks
//!   (eq. 13), plus the Tindell-style memory-capacity extension;
//! * message-side constraints — path-closure route selection (eq. 14 and
//!   the `v(h)` endpoint check), per-medium local deadlines with gateway
//!   service cost, jitter propagation, and per-medium response-time analysis
//!   for priority (eq. 2) and TDMA (eq. 3) buses, including the nonlinear
//!   TDMA blocking term;
//! * an objective definition (see [`crate::Objective`]).
//!
//! ## Deviations from the paper's letter (not its semantics)
//!
//! * **Priorities are constant.** Eq. (10) fixes deadline-monotonic order
//!   wherever deadlines differ and eq. (9) allows an "arbitrary but
//!   consistent" order on ties. Since deadline-monotonic scheduling remains
//!   optimal under any fixed tie-break, we resolve ties by task id at
//!   encode time instead of carrying the paper's `pᵢⱼ` Boolean variables;
//!   no optimal solution is lost and the search space shrinks.
//! * **Eq. (14) is realized through per-(closure, prefix) selector
//!   variables** (`hsel`). The paper's disjunction over sub-paths of the
//!   chosen closure admits exactly one sub-path (the `K` patterns of
//!   distinct prefixes are mutually exclusive); an exactly-one constraint
//!   over selectors is the same condition with the Tseitin variables made
//!   explicit, and the `K` usage variables become derived disjunctions.

mod messages;
pub(crate) mod objective;

use crate::options::SolveOptions;
use optalloc_intopt::{BoolExpr, BoolVar, IntExpr, IntProblem, IntVar, PbOp};
use optalloc_model::{
    path_closures, Architecture, EcuId, MediumId, MediumKind, MsgId, PathClosure, TaskId, TaskSet,
    Time,
};
use std::collections::BTreeMap;

/// One feasible route choice for a message: a prefix `h` of a path closure.
#[derive(Clone, Debug)]
pub(crate) struct RouteChoice {
    /// Index into the architecture's closure set `PH` (kept for debugging
    /// and experiment reports).
    #[allow(dead_code)]
    pub closure: usize,
    /// The sub-path (empty for `ph₀`).
    pub path: Vec<MediumId>,
}

/// Per-message encoding state.
pub(crate) struct MsgVars {
    pub id: MsgId,
    /// Feasible route choices.
    pub routes: Vec<RouteChoice>,
    /// One selector per route choice (exactly one holds).
    pub hsel: Vec<BoolVar>,
    /// Media that appear in any feasible route, sorted.
    pub media: Vec<MediumId>,
    /// `K_m^k`: medium usage, as derived disjunction of selectors.
    pub k_used: BTreeMap<MediumId, BoolExpr>,
    /// Cached 0/1 integer image of `k_used`.
    pub k_used_int: BTreeMap<MediumId, IntExpr>,
    /// Local deadline `d_m^k` per medium.
    pub local_deadline: BTreeMap<MediumId, IntVar>,
    /// Accumulated queueing jitter `J_m^k` per medium.
    pub jitter: BTreeMap<MediumId, IntVar>,
    /// Per-medium response time `r_m^k`.
    pub resp: BTreeMap<MediumId, IntVar>,
    /// Forwarder one-hot per TDMA medium (which member ECU owns the slot
    /// this message is sent from).
    pub fwd: BTreeMap<MediumId, BTreeMap<EcuId, BoolVar>>,
}

/// The complete symbolic encoding of one allocation problem.
pub(crate) struct Encoding<'a> {
    pub arch: &'a Architecture,
    pub tasks: &'a TaskSet,
    pub opts: &'a SolveOptions,
    pub problem: IntProblem,

    /// Path closures of the architecture (`PH`, §4).
    pub closures: Vec<PathClosure>,
    /// Allocation one-hots `aᵢ = p`, per task over its allowed ECUs.
    pub alloc: Vec<BTreeMap<EcuId, BoolVar>>,
    /// Task response-time variables `rᵢ`.
    pub resp: Vec<IntVar>,
    /// WCET expressions per task (constant when one ECU is allowed).
    pub wcet: Vec<IntExpr>,
    /// Message encoding state.
    pub msgs: Vec<MsgVars>,
    /// TDMA slot-length decision variables (only for media whose slots the
    /// objective optimizes), aligned with medium member lists.
    pub slot_vars: BTreeMap<MediumId, Vec<IntVar>>,
    /// Becomes `true` when a structurally infeasible situation was found at
    /// encode time (e.g. a task with no legal ECU).
    pub infeasible: bool,
}

impl<'a> Encoding<'a> {
    /// Builds the full constraint system. `variable_slot_media` lists the
    /// TDMA media whose slot tables are decision variables (derived from
    /// the objective by the optimizer).
    pub fn build(
        arch: &'a Architecture,
        tasks: &'a TaskSet,
        opts: &'a SolveOptions,
        variable_slot_media: &[MediumId],
    ) -> Encoding<'a> {
        let mut enc = Encoding {
            arch,
            tasks,
            opts,
            problem: IntProblem::new(),
            closures: path_closures(arch),
            alloc: Vec::new(),
            resp: Vec::new(),
            wcet: Vec::new(),
            msgs: Vec::new(),
            slot_vars: BTreeMap::new(),
            infeasible: false,
        };
        enc.declare_slot_vars(variable_slot_media);
        enc.encode_tasks();
        enc.encode_messages();
        enc
    }

    /// ECUs a task may legally occupy: its permission set πᵢ minus pure
    /// gateway nodes.
    pub fn allowed_ecus(&self, task: TaskId) -> Vec<EcuId> {
        self.tasks
            .task(task)
            .allowed_ecus()
            .filter(|&p| self.arch.ecu(p).hosts_tasks)
            .collect()
    }

    /// The allocation literal `aᵢ = p` (constant `false` when `p` is not
    /// allowed).
    pub fn placed_on(&self, task: TaskId, ecu: EcuId) -> BoolExpr {
        self.alloc[task.index()]
            .get(&ecu)
            .map(|v| v.expr())
            .unwrap_or_else(|| BoolExpr::constant(false))
    }

    /// `aᵢ = aⱼ` — the co-location test used throughout §3.
    pub fn colocated(&self, a: TaskId, b: TaskId) -> BoolExpr {
        let shared: Vec<BoolExpr> = self.alloc[a.index()]
            .iter()
            .filter_map(|(&p, va)| {
                self.alloc[b.index()]
                    .get(&p)
                    .map(|vb| va.expr().and(vb.expr()))
            })
            .collect();
        BoolExpr::any(shared)
    }

    /// 0/1 integer image of a Boolean expression.
    pub fn b2i(&mut self, e: &BoolExpr) -> IntExpr {
        let v = self.problem.int_var(0, 1);
        self.problem.assert(e.implies(v.expr().eq(1)));
        self.problem.assert(e.not().implies(v.expr().eq(0)));
        v.expr()
    }

    /// Slot-length expression of `medium`'s `idx`-th member: a decision
    /// variable if the objective optimizes this medium, else the constant
    /// from the architecture.
    pub fn slot_expr(&self, medium: MediumId, idx: usize) -> IntExpr {
        if let Some(vars) = self.slot_vars.get(&medium) {
            return vars[idx].expr();
        }
        match &self.arch.medium(medium).kind {
            MediumKind::Tdma { slots } => IntExpr::constant(slots[idx] as i64),
            MediumKind::Priority => unreachable!("slot_expr on a priority medium"),
        }
    }

    /// Round length Λ of a TDMA medium as an expression, with its interval.
    pub fn round_expr(&self, medium: MediumId) -> (IntExpr, i64, i64) {
        let med = self.arch.medium(medium);
        let n = med.members.len();
        let expr = IntExpr::sum((0..n).map(|i| self.slot_expr(medium, i)));
        match (&med.kind, self.slot_vars.contains_key(&medium)) {
            (_, true) => (expr, n as i64, n as i64 * self.opts.max_slot as i64),
            (MediumKind::Tdma { slots }, false) => {
                let sum: Time = slots.iter().sum();
                (expr, sum as i64, sum as i64)
            }
            (MediumKind::Priority, false) => unreachable!(),
        }
    }

    fn declare_slot_vars(&mut self, media: &[MediumId]) {
        for &k in media {
            let med = self.arch.medium(k);
            assert!(med.is_tdma(), "slot variables only exist on TDMA media");
            let vars: Vec<IntVar> = med
                .members
                .iter()
                .map(|_| self.problem.int_var(1, self.opts.max_slot as i64))
                .collect();
            self.slot_vars.insert(k, vars);
        }
    }

    /// The constant priority relation: `true` iff `a` outranks `b`
    /// (deadline-monotonic, ties by id — see the module docs for why this
    /// is constant rather than eq. (9)'s Boolean variables).
    pub fn task_outranks(&self, a: TaskId, b: TaskId) -> bool {
        let (da, db) = (self.tasks.task(a).deadline, self.tasks.task(b).deadline);
        (da, a) < (db, b)
    }

    // ------------------------------------------------------------------
    // Task-side constraints (§3)
    // ------------------------------------------------------------------

    fn encode_tasks(&mut self) {
        let n = self.tasks.len();

        // Allocation one-hots + eq. (4) placement restrictions (forbidden
        // ECUs simply get no variable) + eq. (5) WCET selection.
        for i in 0..n {
            let tid = TaskId(i as u32);
            let allowed = self.allowed_ecus(tid);
            if allowed.is_empty() {
                self.infeasible = true;
                self.problem.assert(BoolExpr::constant(false));
                self.alloc.push(BTreeMap::new());
                self.wcet.push(IntExpr::constant(0));
                continue;
            }
            let vars: BTreeMap<EcuId, BoolVar> = allowed
                .iter()
                .map(|&p| (p, self.problem.bool_var()))
                .collect();
            let terms: Vec<(BoolExpr, i64)> = vars.values().map(|v| (v.expr(), 1)).collect();
            self.problem.assert_pb(terms, PbOp::Eq, 1);

            let t = self.tasks.task(tid);
            let wcet_expr = if allowed.len() == 1 {
                IntExpr::constant(t.wcet_on(allowed[0]).unwrap() as i64)
            } else {
                let lo = allowed
                    .iter()
                    .map(|&p| t.wcet_on(p).unwrap())
                    .min()
                    .unwrap();
                let hi = allowed
                    .iter()
                    .map(|&p| t.wcet_on(p).unwrap())
                    .max()
                    .unwrap();
                let w = self.problem.int_var(lo as i64, hi as i64);
                for &p in &allowed {
                    let c = t.wcet_on(p).unwrap() as i64;
                    self.problem.assert(vars[&p].expr().implies(w.expr().eq(c)));
                }
                w.expr()
            };
            self.alloc.push(vars);
            self.wcet.push(wcet_expr);
        }

        // Eq. (4) second conjunct: separation (redundancy) constraints.
        for (tid, t) in self.tasks.iter() {
            for &other in &t.separation {
                // Each unordered pair once.
                if other < tid && self.tasks.task(other).separation.contains(&tid) {
                    continue;
                }
                let shared: Vec<EcuId> = self.alloc[tid.index()]
                    .keys()
                    .filter(|p| self.alloc[other.index()].contains_key(p))
                    .copied()
                    .collect();
                for p in shared {
                    let both = self.placed_on(tid, p).and(self.placed_on(other, p));
                    self.problem.assert(both.not());
                }
            }
        }

        // Memory capacities (Tindell extension).
        for (pid, ecu) in self.arch.iter_ecus() {
            if ecu.memory_capacity == u64::MAX {
                continue;
            }
            let terms: Vec<(BoolExpr, i64)> = self
                .tasks
                .iter()
                .filter(|(_, t)| t.memory > 0)
                .filter_map(|(tid, t)| {
                    self.alloc[tid.index()]
                        .get(&pid)
                        .map(|v| (v.expr(), t.memory as i64))
                })
                .collect();
            if !terms.is_empty() {
                self.problem
                    .assert_pb(terms, PbOp::Le, ecu.memory_capacity as i64);
            }
        }

        // Response times: eqs. (6)–(12); eq. (13) is the range of rᵢ.
        for i in 0..n {
            let tid = TaskId(i as u32);
            let t = self.tasks.task(tid);
            let allowed = self.allowed_ecus(tid);
            if allowed.is_empty() {
                self.resp.push(self.problem.int_var(0, 0));
                continue;
            }
            let min_c = allowed
                .iter()
                .map(|&p| t.wcet_on(p).unwrap())
                .min()
                .unwrap();
            if min_c as i64 > t.deadline as i64 {
                // Even the smallest WCET overshoots the deadline: no
                // placement can meet eq. (13). Encode the contradiction
                // directly instead of declaring an empty-range variable.
                self.problem.assert(BoolExpr::constant(false));
                self.resp.push(self.problem.int_var(0, 0));
                continue;
            }
            let r = self.problem.int_var(min_c as i64, t.deadline as i64);
            self.resp.push(r);
        }
        for i in 0..n {
            let tid = TaskId(i as u32);
            if self.allowed_ecus(tid).is_empty() {
                continue;
            }
            let t = self.tasks.task(tid).clone();
            let r = self.resp[i];

            let mut preemption_terms: Vec<IntExpr> = Vec::new();
            for j in 0..n {
                let jid = TaskId(j as u32);
                if i == j || !self.task_outranks(jid, tid) {
                    continue;
                }
                // Pairs that can never co-locate contribute nothing (eq. 12
                // holds vacuously).
                let shared: Vec<EcuId> = self.alloc[i]
                    .keys()
                    .filter(|p| self.alloc[j].contains_key(p))
                    .copied()
                    .collect();
                if shared.is_empty()
                    || t.separation.contains(&jid)
                    || self.tasks.task(jid).separation.contains(&tid)
                {
                    continue;
                }

                let tj = self.tasks.task(jid).clone();
                let jitter = if self.opts.task_jitter {
                    tj.release_jitter
                } else {
                    0
                };
                let i_max = (t.deadline + jitter).div_ceil(tj.period).max(1);
                let i_var = self.problem.int_var(0, i_max as i64);
                let pc_max = (i_max * tj.wcet.values().copied().max().unwrap()).min(t.deadline);
                let pc_var = self.problem.int_var(0, pc_max as i64);
                let same = self.colocated(tid, jid);
                let tj_period = tj.period as i64;

                // Eq. (11): ceiling elimination Iᵢⱼ = ⌈(rᵢ + Jⱼ)/tⱼ⌉ when
                // co-located (Jⱼ = 0 unless the jitter extension is on).
                let arrival = r.expr() + jitter as i64;
                self.problem.assert(
                    same.implies(
                        (i_var.expr() * tj_period)
                            .ge(arrival.clone())
                            .and(((i_var.expr() - 1) * tj_period).lt(arrival)),
                    ),
                );
                // Eq. (12) + eq. (8): no interference across ECUs.
                self.problem.assert(
                    same.not()
                        .implies(i_var.expr().eq(0).and(pc_var.expr().eq(0))),
                );
                // Eq. (7): preemption cost.
                if self.opts.product_elimination {
                    for &p in &shared {
                        let guard = self.placed_on(tid, p).and(self.placed_on(jid, p));
                        let cjp = tj.wcet_on(p).unwrap() as i64;
                        self.problem
                            .assert(guard.implies(pc_var.expr().eq(i_var.expr() * cjp)));
                    }
                } else {
                    let prod = i_var.expr() * self.wcet[j].clone();
                    self.problem.assert(same.implies(pc_var.expr().eq(prod)));
                }
                preemption_terms.push(pc_var.expr());
            }

            // Eq. (6): rᵢ = wcetᵢ + Σ pcᵢⱼ; eq. (13) via the range of rᵢ.
            let rhs = self.wcet[i].clone() + IntExpr::sum(preemption_terms);
            self.problem.assert(r.expr().eq(rhs));
        }
    }
}
