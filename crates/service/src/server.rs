//! TCP front-end: newline-delimited JSON over `std::net`.
//!
//! One [`Request`](crate::protocol::Request) per line in, one
//! [`Response`](crate::protocol::Response) per line out, in order. Each
//! connection gets its own thread; all connections share one [`Service`],
//! so its admission control, cache and warm engines apply across clients.

use crate::protocol::{Request, Response};
use crate::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server wrapping a [`Service`].
pub struct Server {
    addr: SocketAddr,
    service: Arc<Service>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (use port 0 for an ephemeral test port) and starts
/// accepting connections on a background thread.
pub fn serve(service: Service, addr: &str) -> std::io::Result<Server> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let service = Arc::new(service);
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || accept_loop(&listener, &service, &stop))
    };
    Ok(Server {
        addr,
        service,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service, e.g. for in-process certificate retrieval.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Stops accepting connections and gracefully drains the service
    /// (queued and in-flight jobs complete first). Open connections keep
    /// their socket until the client closes, but every further submission
    /// on them is rejected as draining.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.service.begin_drain();
        if let Some(t) = self.accept_thread.take() {
            // Unblock the (otherwise indefinitely parked) accept call.
            let _ = TcpStream::connect(self.addr);
            t.join().expect("accept thread panicked");
        }
        self.service.shutdown();
    }

    /// Blocks until a client sends [`Request::Shutdown`], then completes
    /// the drain — the run-forever mode of `optalloc-cli serve`.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            t.join().expect("accept thread panicked");
        }
        self.service.shutdown();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        std::thread::spawn(move || {
            let _ = handle_connection(stream, &service, &stop);
        });
    }
}

/// Hard cap on a single request line. Protects the server from a client
/// (or a port scanner) streaming an unbounded line into memory; real
/// instances serialize to a few hundred KiB at most.
pub const MAX_REQUEST_BYTES: usize = 4 * 1024 * 1024;

enum LineRead {
    /// A complete line (newline stripped), or the final unterminated line
    /// before EOF — a half-closed client still gets its request answered.
    Line(Vec<u8>),
    /// The line exceeded [`MAX_REQUEST_BYTES`]; the remainder through the
    /// newline has been discarded so the connection can keep going.
    Oversized,
    Eof,
}

/// Like `BufRead::read_line`, but refuses to buffer more than `max` bytes.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> std::io::Result<LineRead> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line(buf)
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if buf.len() + pos > max {
                    reader.consume(pos + 1);
                    return Ok(LineRead::Oversized);
                }
                buf.extend_from_slice(&chunk[..pos]);
                reader.consume(pos + 1);
                return Ok(LineRead::Line(buf));
            }
            None => {
                let len = chunk.len();
                if buf.len() + len > max {
                    reader.consume(len);
                    discard_to_newline(reader)?;
                    return Ok(LineRead::Oversized);
                }
                buf.extend_from_slice(chunk);
                reader.consume(len);
            }
        }
    }
}

fn discard_to_newline(reader: &mut impl BufRead) -> std::io::Result<()> {
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let len = chunk.len();
                reader.consume(len);
            }
        }
    }
}

fn write_response(writer: &mut impl Write, response: &Response) -> std::io::Result<()> {
    let mut line = serde_json::to_string(response).map_err(std::io::Error::other)?;
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &Arc<AtomicBool>,
) -> std::io::Result<()> {
    let server_addr = stream.local_addr()?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let bytes = match read_line_bounded(&mut reader, MAX_REQUEST_BYTES)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                write_response(
                    &mut writer,
                    &Response::Error {
                        message: format!(
                            "oversized request: line exceeds {MAX_REQUEST_BYTES} bytes"
                        ),
                    },
                )?;
                continue;
            }
            LineRead::Line(bytes) => bytes,
        };
        let line = String::from_utf8_lossy(&bytes);
        if line.trim().is_empty() {
            continue;
        }
        let response = match serde_json::from_str::<Request>(&line) {
            Ok(request) => {
                let shutting_down = matches!(request, Request::Shutdown);
                let response = service.handle(request);
                if shutting_down {
                    // Stop the accept loop too — flag it, then self-connect
                    // so the parked accept call returns and observes the
                    // flag. `Server::wait`/`shutdown` join it from there.
                    stop.store(true, Ordering::SeqCst);
                    let _ = TcpStream::connect(server_addr);
                }
                response
            }
            Err(e) => Response::Error {
                message: format!("malformed request: {e}"),
            },
        };
        write_response(&mut writer, &response)?;
    }
}
