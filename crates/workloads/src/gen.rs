//! Synthetic Tindell-style workload generator.
//!
//! The paper evaluates on the 43-task / 12-chain automotive benchmark of
//! Tindell, Burns & Wellings \[5\], whose exact numbers are not published in
//! machine-readable form. This generator produces *same-shape* synthetic
//! instances: periodic tasks grouped into message chains, heterogeneous
//! WCETs, restricted placements, redundant (separated) pairs, memory
//! budgets and a token-ring (or CAN) backbone.
//!
//! Instances are **planted-feasible**: the generator first fixes a
//! placement, then derives WCETs, deadlines and slot tables so that this
//! placement is schedulable — guaranteeing the optimizer's search space is
//! non-empty, like the paper's industrial sets. The planted allocation is
//! returned as a witness and double-checked by the crate's tests.
//!
//! All times are in ticks of 50 µs (see `optalloc_model::ms_to_ticks`).

use optalloc_model::{
    Allocation, Architecture, Ecu, EcuId, Medium, MessageRoute, MsgId, Task, TaskId, TaskSet,
    Time,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct GenParams {
    /// Workload name.
    pub name: String,
    /// Number of tasks.
    pub n_tasks: usize,
    /// Number of communication chains (each chain links consecutive tasks
    /// with messages).
    pub n_chains: usize,
    /// Number of ECUs on the backbone bus.
    pub n_ecus: usize,
    /// RNG seed (instances are fully reproducible).
    pub seed: u64,
    /// Target per-ECU utilization of the planted placement (0..1).
    pub utilization: f64,
    /// Fraction of tasks whose permission set is restricted to 2 ECUs.
    pub restricted_fraction: f64,
    /// Number of redundant pairs (mutually separated tasks).
    pub redundant_pairs: usize,
    /// `true` for a TDMA token ring backbone, `false` for CAN.
    pub token_ring: bool,
    /// Deadline slack multiplier over the planted response time (≥ 1.0;
    /// smaller = tighter instance).
    pub deadline_slack: f64,
}

impl GenParams {
    /// The flagship 43-task / 12-chain / 8-ECU instance standing in for the
    /// \[5\] benchmark of Table 1.
    pub fn tindell43() -> GenParams {
        GenParams {
            name: "tindell43".into(),
            n_tasks: 43,
            n_chains: 12,
            n_ecus: 8,
            seed: 0x7161_4311,
            utilization: 0.45,
            restricted_fraction: 0.25,
            redundant_pairs: 3,
            token_ring: true,
            deadline_slack: 1.35,
        }
    }
}

/// A generated benchmark instance.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Workload {
    /// Instance name.
    pub name: String,
    /// The platform.
    pub arch: Architecture,
    /// The application.
    pub tasks: TaskSet,
    /// A feasibility witness (the planted allocation).
    pub planted: Allocation,
}

/// Period pool in 50 µs ticks: 5 ms … 50 ms.
const PERIODS: [Time; 5] = [100, 200, 400, 500, 1000];

/// Generates a planted-feasible instance from `params`.
pub fn generate(params: &GenParams) -> Workload {
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let n = params.n_tasks;
    let ecus = params.n_ecus;

    // --- architecture skeleton (slots filled in later) -------------------
    let mut arch = Architecture::new();
    for i in 0..ecus {
        arch.push_ecu(Ecu::new(format!("ecu{i}")));
    }
    let members: Vec<EcuId> = (0..ecus).map(|i| EcuId(i as u32)).collect();

    // --- tasks: periods, chains, planted placement -----------------------
    // Chains first: each chain is 2–4 tasks sharing a period.
    let mut chain_of: Vec<Option<usize>> = vec![None; n];
    let mut chains: Vec<Vec<usize>> = Vec::new();
    let mut next_task = 0usize;
    for _ in 0..params.n_chains {
        let len = rng.gen_range(2..=4usize).min(n.saturating_sub(next_task));
        if len < 2 {
            break;
        }
        let chain: Vec<usize> = (next_task..next_task + len).collect();
        for &t in &chain {
            chain_of[t] = Some(chains.len());
        }
        next_task += len;
        chains.push(chain);
    }

    let periods: Vec<Time> = {
        let mut p = vec![0; n];
        for chain in &chains {
            let period = PERIODS[rng.gen_range(0..PERIODS.len())];
            for &t in chain {
                p[t] = period;
            }
        }
        for v in p.iter_mut() {
            if *v == 0 {
                *v = PERIODS[rng.gen_range(0..PERIODS.len())];
            }
        }
        p
    };

    // Planted placement: round-robin over ECUs, so chains spread out and
    // generate bus traffic.
    let planted_ecu: Vec<EcuId> = (0..n).map(|i| EcuId((i % ecus) as u32)).collect();

    // WCETs: share the utilization budget of each ECU among its tasks.
    let mut tasks_per_ecu = vec![0usize; ecus];
    for p in &planted_ecu {
        tasks_per_ecu[p.index()] += 1;
    }
    let mut wcets: Vec<Time> = Vec::with_capacity(n);
    for i in 0..n {
        let share = params.utilization / tasks_per_ecu[planted_ecu[i].index()] as f64;
        let jitter = rng.gen_range(0.6..1.3);
        let c = ((periods[i] as f64) * share * jitter).round().max(1.0) as Time;
        wcets.push(c.min(periods[i]));
    }

    // Permission sets: planted ECU plus extras; heterogeneous WCETs.
    let mut allowed: Vec<Vec<(EcuId, Time)>> = Vec::with_capacity(n);
    for i in 0..n {
        let mut set = vec![(planted_ecu[i], wcets[i])];
        let restricted = rng.gen_bool(params.restricted_fraction);
        let extra = if restricted {
            1
        } else {
            rng.gen_range(2..=ecus.saturating_sub(1).max(2))
        };
        let mut others: Vec<EcuId> = members
            .iter()
            .copied()
            .filter(|&p| p != planted_ecu[i])
            .collect();
        for _ in 0..extra.min(others.len()) {
            let idx = rng.gen_range(0..others.len());
            let p = others.swap_remove(idx);
            let factor = rng.gen_range(0.8..1.6);
            let c = ((wcets[i] as f64) * factor).round().max(1.0) as Time;
            set.push((p, c.min(periods[i])));
        }
        allowed.push(set);
    }

    // --- messages along chains -------------------------------------------
    // Sized 2–8 bytes; deadline = period / 2 (generous but bounded).
    struct MsgSpec {
        from: usize,
        to: usize,
        size: u32,
        deadline: Time,
    }
    let mut msgs: Vec<MsgSpec> = Vec::new();
    for chain in &chains {
        for w in chain.windows(2) {
            msgs.push(MsgSpec {
                from: w[0],
                to: w[1],
                size: rng.gen_range(2..=8),
                deadline: periods[w[0]] / 2,
            });
        }
    }

    // --- medium parameters -----------------------------------------------
    let frame_overhead: Time = 1;
    let per_byte: Time = 1;
    let frame_time = |size: u32| frame_overhead + per_byte * size as Time;

    // Slot table: each ECU's slot fits its largest planted frame.
    let medium = if params.token_ring {
        let mut slots: Vec<Time> = vec![1; ecus];
        for m in &msgs {
            let sender_ecu = planted_ecu[m.from].index();
            slots[sender_ecu] = slots[sender_ecu].max(frame_time(m.size));
        }
        Medium::tdma("ring0", members.clone(), slots, frame_overhead, per_byte)
    } else {
        Medium::priority("can0", members.clone(), frame_overhead, per_byte)
    };
    let medium_id = arch.push_medium(medium);

    // --- build the task set with placeholder deadlines --------------------
    let mut ts = TaskSet::new();
    for i in 0..n {
        let mut task = Task::new(
            format!("t{i}"),
            periods[i],
            periods[i], // tightened below
            allowed[i].clone(),
        );
        for m in msgs.iter().filter(|m| m.from == i) {
            task = task.sends(TaskId(m.to as u32), m.size, m.deadline);
        }
        ts.push(task);
    }

    // Redundant pairs: separate tasks planted on different ECUs.
    let mut placed_pairs = 0usize;
    let mut tries = 0;
    while placed_pairs < params.redundant_pairs && tries < 200 {
        tries += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || planted_ecu[a] == planted_ecu[b] {
            continue;
        }
        let (a_id, b_id) = (TaskId(a as u32), TaskId(b as u32));
        if ts.task(a_id).separation.contains(&b_id) {
            continue;
        }
        ts.tasks[a].separation.insert(b_id);
        ts.tasks[b].separation.insert(a_id);
        placed_pairs += 1;
    }

    // --- planted allocation ------------------------------------------------
    let mut planted = Allocation::skeleton(&ts);
    planted.placement = planted_ecu.clone();
    for (mid, m) in ts.messages() {
        let s = planted.ecu_of(mid.sender);
        let r = planted.ecu_of(m.to);
        *planted_route(&mut planted, mid) = if s == r {
            MessageRoute::colocated()
        } else {
            MessageRoute::single_hop(medium_id, m.deadline)
        };
    }

    // --- tighten deadlines around the planted response times ---------------
    // Deadline-monotonic priorities shift as deadlines shrink, so iterate a
    // couple of times until the deadline assignment is a fixed point.
    for _ in 0..4 {
        planted.priorities = optalloc_model::deadline_monotonic(&ts);
        let rts = optalloc_analysis::all_task_response_times(&ts, &planted, false);
        let mut changed = false;
        for i in 0..n {
            let r = rts[i].unwrap_or(ts.tasks[i].period);
            let d = (((r as f64) * params.deadline_slack).ceil() as Time)
                .clamp(1, ts.tasks[i].period);
            if ts.tasks[i].deadline != d {
                ts.tasks[i].deadline = d;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    planted.priorities = optalloc_model::deadline_monotonic(&ts);

    // Relax message deadlines/budgets until the planted witness validates
    // (TDMA blocking can exceed the naive period/2 budgets).
    relax_message_deadlines(&arch, &mut ts, &mut planted);

    Workload {
        name: params.name.clone(),
        arch,
        tasks: ts,
        planted,
    }
}

/// Grows message deadlines and per-hop budgets monotonically until the
/// planted allocation passes full validation (or a generous cap of 4×period
/// is hit). Growing a deadline only lowers that message's own priority, so
/// the iteration is monotone and terminates.
pub(crate) fn relax_message_deadlines(
    arch: &Architecture,
    tasks: &mut TaskSet,
    planted: &mut Allocation,
) {
    let config = optalloc_analysis::AnalysisConfig::default();
    for _ in 0..60 {
        let report = optalloc_analysis::validate(arch, tasks, planted, &config);
        if report.is_feasible() {
            return;
        }
        // Grow the local budget of every unschedulable (message, medium)
        // pair, then re-derive each message's end-to-end deadline from its
        // budgets plus gateway service.
        for v in &report.violations {
            if let optalloc_analysis::Violation::MessageUnschedulable(mid, k) = v {
                let cap = 4 * tasks.task(mid.sender).period;
                let route = planted.route_mut(*mid);
                let pos = route
                    .media
                    .iter()
                    .position(|m| m == k)
                    .expect("violation refers to a route medium");
                let d = route.local_deadlines[pos];
                route.local_deadlines[pos] = (d + d / 2 + 4).min(cap);
            }
        }
        for ti in 0..tasks.tasks.len() {
            let period = tasks.tasks[ti].period;
            for mi in 0..tasks.tasks[ti].messages.len() {
                let route = &planted.routes[ti][mi];
                let service = config.gateway_service
                    * (route.media.len() as Time).saturating_sub(1);
                let budget: Time = route.local_deadlines.iter().sum();
                let needed = budget + service;
                let m = &mut tasks.tasks[ti].messages[mi];
                if m.deadline < needed {
                    m.deadline = needed.min(4 * period).max(m.deadline);
                }
            }
        }
        planted.priorities = optalloc_model::deadline_monotonic(tasks);
    }
    // Leave the final (possibly still infeasible) state; callers assert
    // feasibility in tests.
}

fn planted_route(alloc: &mut Allocation, msg: MsgId) -> &mut MessageRoute {
    alloc.route_mut(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_analysis::{validate, AnalysisConfig};

    #[test]
    fn tindell43_shape() {
        let w = generate(&GenParams::tindell43());
        assert_eq!(w.tasks.len(), 43);
        assert_eq!(w.arch.num_ecus(), 8);
        assert_eq!(w.arch.num_media(), 1);
        assert!(w.arch.medium(optalloc_model::MediumId(0)).is_tdma());
        let n_msgs = w.tasks.messages().count();
        assert!(n_msgs >= 12, "expected at least 12 chain messages, got {n_msgs}");
        assert!(w.tasks.validate().is_ok());
        assert!(w.arch.validate().is_ok());
    }

    #[test]
    fn planted_allocation_is_feasible() {
        let w = generate(&GenParams::tindell43());
        let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
        assert!(
            report.is_feasible(),
            "planted allocation violates: {:?}",
            report.violations
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GenParams::tindell43());
        let b = generate(&GenParams::tindell43());
        assert_eq!(a.tasks, b.tasks);
        assert_eq!(a.arch, b.arch);
        assert_eq!(a.planted, b.planted);
    }

    #[test]
    fn can_variant_plants_feasibly() {
        let params = GenParams {
            token_ring: false,
            name: "tindell43-can".into(),
            ..GenParams::tindell43()
        };
        let w = generate(&params);
        let report = validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
        assert!(report.is_feasible(), "{:?}", report.violations);
    }

    #[test]
    fn varying_sizes_plant_feasibly() {
        for (tasks, ecus) in [(7, 3), (12, 4), (20, 8), (30, 8)] {
            let params = GenParams {
                name: format!("t{tasks}e{ecus}"),
                n_tasks: tasks,
                n_chains: tasks / 3,
                n_ecus: ecus,
                ..GenParams::tindell43()
            };
            let w = generate(&params);
            let report =
                validate(&w.arch, &w.tasks, &w.planted, &AnalysisConfig::default());
            assert!(
                report.is_feasible(),
                "{tasks}/{ecus}: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn redundant_pairs_are_mutual() {
        let w = generate(&GenParams::tindell43());
        for (tid, t) in w.tasks.iter() {
            for &other in &t.separation {
                assert!(w.tasks.task(other).separation.contains(&tid));
            }
        }
    }
}
