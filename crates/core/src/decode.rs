//! Decoding a SAT model back into an [`Allocation`] — "extracting the
//! placement and scheduling information from the satisfying assignment"
//! (paper §5.2).

use crate::encode::Encoding;
use optalloc_intopt::Model;
use optalloc_model::{deadline_monotonic, Allocation, MessageRoute, TaskId};

/// Reads the allocation encoded in `model` out of the variable maps.
pub(crate) fn decode(enc: &Encoding<'_>, model: &Model) -> Allocation {
    let tasks = enc.tasks;

    // Π: the ECU whose one-hot literal is true.
    let placement = (0..tasks.len())
        .map(|i| {
            let tid = TaskId(i as u32);
            enc.alloc[tid.index()]
                .iter()
                .find(|(_, v)| model.bool(**v))
                .map(|(&p, _)| p)
                .expect("exactly-one allocation constraint guarantees a placement")
        })
        .collect();

    // Φ: deadline-monotonic with the same id tie-break the encoder fixed.
    let priorities = deadline_monotonic(tasks);

    // Γ: the selected sub-path per message, with its local deadlines.
    let mut routes: Vec<Vec<MessageRoute>> = tasks
        .tasks
        .iter()
        .map(|t| Vec::with_capacity(t.messages.len()))
        .collect();
    for mv in &enc.msgs {
        let chosen = mv
            .routes
            .iter()
            .zip(&mv.hsel)
            .find(|(_, sel)| model.bool(**sel))
            .map(|(r, _)| r)
            .expect("exactly-one selector constraint guarantees a route");
        let local_deadlines = chosen
            .path
            .iter()
            .map(|k| model.int(mv.local_deadline[k]) as u64)
            .collect();
        routes[mv.id.sender.index()].push(MessageRoute {
            media: chosen.path.clone(),
            local_deadlines,
        });
    }

    // Slot tables the optimizer chose.
    let slot_overrides = enc
        .slot_vars
        .iter()
        .map(|(&k, vars)| {
            let slots = vars.iter().map(|v| model.int(*v) as u64).collect();
            (k, slots)
        })
        .collect();

    Allocation {
        placement,
        priorities,
        routes,
        slot_overrides,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::objective::variable_slot_media;
    use crate::encode::Encoding;
    use crate::options::{Objective, SolveOptions};
    use optalloc_workloads::{generate, table4_workload, Fig2, GenParams, Workload};

    /// Round trip: solve the encoding once, decode the model, re-encode
    /// with the decoded allocation pinned (placement, routes, slot tables)
    /// and the objective fixed to the decoded value — the pinned system
    /// must still be SAT. Decoding therefore loses no information the
    /// encoder needs to reproduce the allocation at the same cost.
    ///
    /// The first solve pins the workload's planted placement (and, when the
    /// objective turns slot tables into decision variables, the planted
    /// slot tables): the test targets decode fidelity, not search, and the
    /// pinned instance solves by propagation even for the 43-task
    /// benchmarks in a debug build.
    fn assert_round_trips(w: &Workload, objective: &Objective) {
        let opts = SolveOptions {
            max_slot: 24,
            ..SolveOptions::default()
        };
        let slot_media = variable_slot_media(&w.arch, objective).expect("objective fits");
        let mut enc = Encoding::build(&w.arch, &w.tasks, &opts, &slot_media);
        let cost = enc
            .encode_objective(objective)
            .expect("objective fits")
            .expect("objective defines a cost");
        assert!(!enc.infeasible, "{}: infeasible at encode time", w.name);
        for (i, &p) in w.planted.placement.iter().enumerate() {
            let placed = enc.placed_on(TaskId(i as u32), p);
            enc.problem.assert(placed);
        }
        let witness_slots: Vec<_> = enc
            .slot_vars
            .iter()
            .flat_map(|(&k, vars)| {
                let slots = match &w.arch.medium(k).kind {
                    optalloc_model::MediumKind::Tdma { slots } => slots.clone(),
                    optalloc_model::MediumKind::Priority => unreachable!(),
                };
                vars.iter()
                    .zip(slots)
                    .map(|(v, s)| v.expr().eq(s as i64))
                    .collect::<Vec<_>>()
            })
            .collect();
        for pin in witness_slots {
            enc.problem.assert(pin);
        }
        let model = enc
            .problem
            .solve(opts.backend)
            .unwrap_or_else(|| panic!("{}: planted witness should be encodable", w.name));
        let value = model.int(cost);
        let alloc = decode(&enc, &model);

        let mut enc2 = Encoding::build(&w.arch, &w.tasks, &opts, &slot_media);
        let cost2 = enc2
            .encode_objective(objective)
            .expect("objective fits")
            .expect("objective defines a cost");
        for (i, &p) in alloc.placement.iter().enumerate() {
            let placed = enc2.placed_on(TaskId(i as u32), p);
            enc2.problem.assert(placed);
        }
        let pins: Vec<_> = enc2
            .msgs
            .iter()
            .map(|mv| {
                let route = &alloc.routes[mv.id.sender.index()][mv.id.index as usize];
                let sel = mv
                    .routes
                    .iter()
                    .position(|rc| rc.path == route.media)
                    .unwrap_or_else(|| panic!("{}: decoded route not among choices", w.name));
                mv.hsel[sel].expr()
            })
            .collect();
        for sel in pins {
            enc2.problem.assert(sel);
        }
        let slot_pins: Vec<_> = enc2
            .slot_vars
            .iter()
            .flat_map(|(k, vars)| {
                let slots = &alloc.slot_overrides[k];
                vars.iter()
                    .zip(slots.iter())
                    .map(|(v, &s)| v.expr().eq(s as i64))
                    .collect::<Vec<_>>()
            })
            .collect();
        for pin in slot_pins {
            enc2.problem.assert(pin);
        }
        enc2.problem.assert(cost2.expr().eq(value));
        assert!(
            enc2.problem.solve(opts.backend).is_some(),
            "{}: re-encoding the decoded allocation at cost {value} is UNSAT",
            w.name
        );
    }

    #[test]
    fn tindell43_round_trips() {
        let w = generate(&GenParams::tindell43());
        assert_round_trips(
            &w,
            &Objective::TokenRotationTime(optalloc_model::MediumId(0)),
        );
    }

    #[test]
    fn table4_architectures_round_trip() {
        for which in [Fig2::A, Fig2::B, Fig2::C] {
            let w = table4_workload(which, &GenParams::tindell43());
            assert_round_trips(&w, &Objective::SumTokenRotationTimes);
        }
    }

    #[test]
    fn utilization_objective_round_trips() {
        let w = generate(&GenParams {
            name: "decode-rt".into(),
            n_tasks: 12,
            n_chains: 4,
            n_ecus: 3,
            ..GenParams::tindell43()
        });
        assert_round_trips(&w, &Objective::MaxUtilizationPermille);
    }
}
