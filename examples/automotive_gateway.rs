//! A hierarchical automotive E/E architecture: a powertrain token ring and
//! a body-domain CAN bus joined by a central gateway — the §4 scenario.
//!
//! A crash-detection chain spans both domains (sensor on the powertrain
//! ring, airbag actuation in the body domain), so its message must hop
//! across the gateway, receiving a local deadline budget on each bus and
//! paying the gateway service cost. We minimize the sum of token rotation
//! times and print the chosen routes, slot table, and per-medium response
//! times.
//!
//! Run with:
//! ```text
//! cargo run --release --example automotive_gateway
//! ```

use optalloc::{Objective, Optimizer, SolveOptions};
use optalloc_model::{gateways_along, Architecture, Ecu, Medium, Task, TaskId, TaskSet};

fn main() {
    // ---- platform ----------------------------------------------------------
    let mut arch = Architecture::new();
    let engine = arch.push_ecu(Ecu::new("engine"));
    let trans = arch.push_ecu(Ecu::new("transmission"));
    let esp = arch.push_ecu(Ecu::new("esp"));
    let body1 = arch.push_ecu(Ecu::new("body-front"));
    let body2 = arch.push_ecu(Ecu::new("body-rear"));
    let gateway = arch.push_ecu(Ecu::new("central-gw").gateway_only());

    let ring = arch.push_medium(Medium::tdma(
        "powertrain-ring",
        vec![engine, trans, esp, gateway],
        vec![6, 6, 6, 6],
        1,
        1,
    ));
    let can = arch.push_medium(Medium::priority(
        "body-can",
        vec![body1, body2, gateway],
        2,
        1,
    ));
    arch.validate().expect("well-formed architecture");

    // ---- application -------------------------------------------------------
    // Powertrain control loop (ring-only) + crash chain (cross-domain).
    let mut tasks = TaskSet::new();
    let t_gearbox = TaskId(1);
    let t_airbag = TaskId(3);

    tasks.push(Task::new("engine-speed", 120, 90, vec![(engine, 20)]).sends(t_gearbox, 4, 60));
    tasks.push(Task::new("gearbox", 120, 110, vec![(trans, 30)]));
    tasks.push(Task::new("crash-sensor", 240, 80, vec![(esp, 15)]).sends(t_airbag, 8, 100));
    tasks.push(Task::new(
        "airbag",
        240,
        200,
        vec![(body1, 25), (body2, 25)],
    ));
    tasks.push(Task::new(
        "door-lock",
        240,
        240,
        vec![(body1, 30), (body2, 30)],
    ));

    // ---- optimize ΣTRT ------------------------------------------------------
    let result = Optimizer::new(&arch, &tasks)
        .with_options(SolveOptions {
            max_slot: 16,
            ..Default::default()
        })
        .minimize(&Objective::SumTokenRotationTimes)
        .expect("schedulable");

    println!(
        "optimal ΣTRT = {} ticks ({} SOLVE calls, {} conflicts)\n",
        result.cost, result.solve_calls, result.stats.conflicts
    );

    let alloc = &result.solution.allocation;
    for (tid, task) in tasks.iter() {
        println!("{:<14} -> {}", task.name, arch.ecu(alloc.ecu_of(tid)).name);
    }

    println!(
        "\nring slot table (ticks): {:?}",
        alloc.slot_overrides[&ring]
    );

    for (mid, msg) in tasks.messages() {
        let route = alloc.route(mid);
        println!(
            "\nmessage {} -> {} (Δ = {} ticks):",
            tasks.task(mid.sender).name,
            tasks.task(msg.to).name,
            msg.deadline
        );
        if route.is_colocated() {
            println!("  co-located, no bus crossing");
            continue;
        }
        for (k, d) in route.media.iter().zip(&route.local_deadlines) {
            println!(
                "  {:<16} local deadline {:>3} ticks",
                arch.medium(*k).name,
                d
            );
        }
        let gws = gateways_along(&arch, &route.media);
        if !gws.is_empty() {
            let names: Vec<&str> = gws.iter().map(|g| arch.ecu(*g).name.as_str()).collect();
            println!("  gateways crossed: {}", names.join(", "));
        }
    }

    // The crash chain must cross domains: esp is only on the ring, airbag
    // only in the body domain.
    let crash_route = alloc.route(optalloc_model::MsgId {
        sender: TaskId(2),
        index: 0,
    });
    assert_eq!(crash_route.media, vec![ring, can]);
    assert!(result.solution.report.is_feasible());
}
