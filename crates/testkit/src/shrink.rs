//! Delta-debugging shrinker.
//!
//! Given a spec on which some predicate holds (usually "relation X is
//! violated"), greedily removes and simplifies structure while the
//! predicate keeps holding, iterating to a fixpoint. Passes, in order of
//! how much each removes:
//!
//! 1. drop whole tasks (highest index first, via
//!    [`InstanceSpec::remove_task`] so cross-references stay sound),
//! 2. drop messages and separation constraints,
//! 3. drop media (with member-ECU and objective-index remapping) and then
//!    unused structure inside the survivors,
//! 4. halve numeric fields (WCETs, periods/deadlines, sizes) toward 1 and
//!    zero memory footprints.
//!
//! Every candidate must still [`InstanceSpec::build`] — the predicate is
//! never consulted on invalid specs. The total number of predicate
//! evaluations is capped so a slow oracle cannot stall a campaign.

use crate::spec::{InstanceSpec, ObjectiveSpec};

/// Hard cap on oracle evaluations per shrink (each evaluation may run
/// several full solves).
const MAX_EVALS: usize = 400;

struct Budget {
    evals: usize,
}

impl Budget {
    fn spent(&mut self) -> bool {
        if self.evals >= MAX_EVALS {
            return true;
        }
        self.evals += 1;
        false
    }
}

/// Shrinks `spec` to a (locally) minimal instance on which `fails` still
/// returns `true`. `fails` is only ever called with specs that build.
pub fn shrink<F>(spec: &InstanceSpec, mut fails: F) -> InstanceSpec
where
    F: FnMut(&InstanceSpec) -> bool,
{
    let mut budget = Budget { evals: 0 };
    let mut best = spec.clone();
    loop {
        let mut progressed = false;
        for pass in [
            drop_tasks,
            drop_messages,
            drop_separations,
            drop_media,
            halve_numbers,
        ] {
            while let Some(smaller) = pass(&best, &mut fails, &mut budget) {
                best = smaller;
                progressed = true;
            }
        }
        if !progressed || budget.evals >= MAX_EVALS {
            return best;
        }
    }
}

fn try_candidate<F>(cand: InstanceSpec, fails: &mut F, budget: &mut Budget) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    if budget.spent() || cand.build().is_err() {
        return None;
    }
    fails(&cand).then_some(cand)
}

fn drop_tasks<F>(spec: &InstanceSpec, fails: &mut F, budget: &mut Budget) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    for t in (0..spec.tasks.len()).rev() {
        if spec.tasks.len() <= 1 {
            break;
        }
        if let Some(c) = try_candidate(spec.remove_task(t), fails, budget) {
            return Some(c);
        }
    }
    None
}

fn drop_messages<F>(spec: &InstanceSpec, fails: &mut F, budget: &mut Budget) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    for t in 0..spec.tasks.len() {
        for m in (0..spec.tasks[t].messages.len()).rev() {
            let mut cand = spec.clone();
            cand.tasks[t].messages.remove(m);
            if let Some(c) = try_candidate(cand, fails, budget) {
                return Some(c);
            }
        }
    }
    None
}

fn drop_separations<F>(
    spec: &InstanceSpec,
    fails: &mut F,
    budget: &mut Budget,
) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    for t in 0..spec.tasks.len() {
        for s in (0..spec.tasks[t].separation.len()).rev() {
            let mut cand = spec.clone();
            cand.tasks[t].separation.remove(s);
            if let Some(c) = try_candidate(cand, fails, budget) {
                return Some(c);
            }
        }
    }
    None
}

/// Drops medium `m` and every ECU that becomes unreachable with it,
/// remapping all surviving indices. Tasks keep only WCET entries on
/// surviving ECUs; tasks left without any placement are removed. Returns
/// `None` when the objective pins this medium.
fn spec_without_medium(spec: &InstanceSpec, m: usize) -> Option<InstanceSpec> {
    if spec.objective.medium() == Some(m) {
        return None;
    }
    let mut s = spec.clone();
    s.media.remove(m);
    // Fix the objective's medium index for the shift.
    s.objective = match s.objective {
        ObjectiveSpec::Trt(i) if i > m => ObjectiveSpec::Trt(i - 1),
        ObjectiveSpec::BusLoad(i) if i > m => ObjectiveSpec::BusLoad(i - 1),
        o => o,
    };
    // ECUs on no remaining medium disappear.
    let keep: Vec<bool> = (0..s.ecus.len())
        .map(|e| s.media.iter().any(|md| md.members.contains(&e)))
        .collect();
    let mut remap = vec![usize::MAX; s.ecus.len()];
    let mut next = 0;
    for (e, &k) in keep.iter().enumerate() {
        if k {
            remap[e] = next;
            next += 1;
        }
    }
    s.ecus = s
        .ecus
        .into_iter()
        .enumerate()
        .filter(|(e, _)| keep[*e])
        .map(|(_, e)| e)
        .collect();
    for md in &mut s.media {
        for mem in &mut md.members {
            *mem = remap[*mem];
        }
    }
    for t in &mut s.tasks {
        t.wcet.retain(|&(e, _)| keep[e]);
        for (e, _) in &mut t.wcet {
            *e = remap[*e];
        }
    }
    // Remove tasks stranded without a placement (highest first so the
    // index remapping inside remove_task stays straightforward).
    while let Some(t) = (0..s.tasks.len())
        .rev()
        .find(|&t| s.tasks[t].wcet.is_empty())
    {
        if s.tasks.len() == 1 {
            return None; // would empty the task set
        }
        s = s.remove_task(t);
    }
    Some(s)
}

fn drop_media<F>(spec: &InstanceSpec, fails: &mut F, budget: &mut Budget) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    if spec.media.len() <= 1 {
        return None;
    }
    for m in (0..spec.media.len()).rev() {
        let Some(cand) = spec_without_medium(spec, m) else {
            continue;
        };
        if let Some(c) = try_candidate(cand, fails, budget) {
            return Some(c);
        }
    }
    None
}

/// One halving step toward 1 (for quantities that must stay positive).
fn halved(v: u64) -> Option<u64> {
    (v > 1).then_some(v.div_ceil(2))
}

fn halve_numbers<F>(spec: &InstanceSpec, fails: &mut F, budget: &mut Budget) -> Option<InstanceSpec>
where
    F: FnMut(&InstanceSpec) -> bool,
{
    for t in 0..spec.tasks.len() {
        for e in 0..spec.tasks[t].wcet.len() {
            if let Some(w) = halved(spec.tasks[t].wcet[e].1) {
                let mut cand = spec.clone();
                cand.tasks[t].wcet[e].1 = w;
                if let Some(c) = try_candidate(cand, fails, budget) {
                    return Some(c);
                }
            }
        }
        // Halve period and deadline together so deadline ≤ period survives.
        if let Some(p) = halved(spec.tasks[t].period) {
            let mut cand = spec.clone();
            cand.tasks[t].period = p;
            cand.tasks[t].deadline = cand.tasks[t].deadline.min(p);
            if let Some(c) = try_candidate(cand, fails, budget) {
                return Some(c);
            }
        }
        if spec.tasks[t].memory > 0 {
            let mut cand = spec.clone();
            cand.tasks[t].memory = 0;
            if let Some(c) = try_candidate(cand, fails, budget) {
                return Some(c);
            }
        }
        for m in 0..spec.tasks[t].messages.len() {
            let sz = spec.tasks[t].messages[m].size;
            if sz > 1 {
                let mut cand = spec.clone();
                cand.tasks[t].messages[m].size = sz.div_ceil(2);
                if let Some(c) = try_candidate(cand, fails, budget) {
                    return Some(c);
                }
            }
        }
    }
    for e in 0..spec.ecus.len() {
        if spec.ecus[e].memory.is_some() {
            let mut cand = spec.clone();
            cand.ecus[e].memory = None;
            if let Some(c) = try_candidate(cand, fails, budget) {
                return Some(c);
            }
        }
    }
    for m in 0..spec.media.len() {
        let Some(slots) = &spec.media[m].tdma_slots else {
            continue;
        };
        for (i, &slot) in slots.iter().enumerate() {
            if let Some(s) = halved(slot) {
                let mut cand = spec.clone();
                cand.media[m].tdma_slots.as_mut().unwrap()[i] = s;
                if let Some(c) = try_candidate(cand, fails, budget) {
                    return Some(c);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_spec, GenConfig};

    #[test]
    fn shrinks_to_single_offending_task() {
        // Synthetic oracle: "fails" whenever any task has WCET ≥ 9
        // somewhere. The shrinker should strip everything else.
        let cfg = GenConfig::default();
        let spec = (0..200)
            .map(|s| gen_spec(s, &cfg))
            .find(|s| {
                s.tasks.len() >= 5 && s.tasks.iter().any(|t| t.wcet.iter().any(|&(_, w)| w >= 9))
            })
            .expect("some generated spec has a big-WCET task");
        let fails = |s: &InstanceSpec| s.tasks.iter().any(|t| t.wcet.iter().any(|&(_, w)| w >= 9));
        let small = shrink(&spec, fails);
        assert!(fails(&small), "shrinking must preserve the failure");
        assert!(small.build().is_ok(), "shrunk spec must stay valid");
        assert_eq!(small.tasks.len(), 1, "one task should survive");
        assert_eq!(small.media.len(), 1, "one medium should survive");
        assert!(
            small.tasks[0].messages.is_empty() && small.tasks[0].separation.is_empty(),
            "dependent structure should be stripped"
        );
    }

    #[test]
    fn eval_budget_bounds_oracle_calls() {
        let spec = gen_spec(7, &GenConfig::default());
        let mut calls = 0usize;
        let _ = shrink(&spec, |_| {
            calls += 1;
            true // everything "fails": worst case for the budget
        });
        assert!(calls <= MAX_EVALS);
    }
}
