//! The CDCL(PB) solver core.
//!
//! A conflict-driven clause-learning SAT solver in the MiniSat lineage,
//! extended with native pseudo-Boolean constraints propagated by the counter
//! method. This is our stand-in for the GOBLIN solver the paper uses: it
//! accepts a conjunction of clauses and linear PB constraints over literals,
//! decides satisfiability, and supports *incremental* solving under
//! assumptions with learned-clause retention — the mechanism behind the
//! paper's §7 observation that reusing learned facts across the binary-search
//! sequence speeds optimization up by a factor of two or more.
//!
//! Feature set:
//! - two-watched-literal clause propagation with blocker literals, with
//!   dedicated binary-implication watch lists walked first,
//! - counter-based PB propagation with on-demand clause explanations,
//! - first-UIP conflict analysis with learned-clause minimization,
//! - EVSIDS variable activities with phase saving,
//! - Luby or adaptive (Glucose-style LBD-EMA) restarts with trail blocking,
//! - tiered learned-clause database (CORE/TIER2/LOCAL) or legacy
//!   activity/LBD sort-and-halve deletion, with arena compaction,
//! - in-search vivification of kept learned clauses at restart boundaries,
//! - occurrence-list inprocessing: subsumption, self-subsuming resolution
//!   and bounded variable elimination with a freeze/melt protocol and a
//!   reconstruction stack that extends models back to eliminated variables
//!   (see `solver/simp.rs` and the "Inprocessing" section of
//!   `docs/SOLVER.md`),
//! - solving under assumptions; all clauses (input and learned) persist
//!   across `solve` calls.
//!
//! The five search-core axes are individually switchable through
//! [`SolverConfig`] (see [`SearchEngine`] and `docs/SOLVER.md`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use optalloc_obs::{Obs, Phase, ProgressEvent, ProgressHook, ProgressThrottle, DEFAULT_MS_BUCKETS};

mod paranoid;
mod simp;

use simp::ElimGroup;

use crate::clause::{ClauseDb, ClauseRef, Tier};
use crate::drat::ProofLog;
use crate::exchange::{ClauseExchange, MAX_SHARED_LITS};
use crate::heap::VarOrderHeap;
use crate::pb::{normalize_ge, to_ge_constraints, Normalized, PbConstraint, PbOp, PbTerm};
use crate::types::{LBool, Lit, Var};

/// Verdict of a [`Solver::solve`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// A satisfying assignment was found; read it with [`Solver::model_value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// The conflict budget was exhausted before a verdict.
    Unknown,
    /// An external [`SolverConfig::interrupt`] flag was raised mid-search.
    /// All constraints and learned clauses are retained; the solver can be
    /// reused (the flag must be cleared by the owner first).
    Interrupted,
}

/// Why a variable is assigned.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Reason {
    /// Decision or unassigned.
    None,
    /// Propagated by a clause (whose first literal is the propagated one).
    Clause(ClauseRef),
    /// Propagated by the PB constraint with this index.
    Pb(u32),
}

/// What raised a conflict during propagation.
#[derive(Copy, Clone, Debug)]
enum Conflict {
    Clause(ClauseRef),
    Pb(u32),
}

#[derive(Copy, Clone)]
struct Watcher {
    cref: ClauseRef,
    /// A literal of the clause other than the watched one; if it is already
    /// true the clause is satisfied and the watch list walk can skip it.
    blocker: Lit,
}

/// Watch-list entry for a binary clause: the other literal is stored inline,
/// so propagating a binary implication never dereferences the arena.
#[derive(Copy, Clone)]
struct BinWatch {
    other: Lit,
    cref: ClauseRef,
}

/// Restart strategy for the CDCL loop.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RestartPolicy {
    /// Classic Luby-sequence restarts scaled by [`SolverConfig::restart_unit`].
    Luby,
    /// Glucose-style adaptive restarts: restart when the fast LBD EMA runs
    /// above the slow one, blocked while the trail is unusually deep (a sign
    /// the search is closing in on a model). Deterministic per seed.
    Ema,
}

/// The five search-core performance axes bundled as one plumbable value.
///
/// Each axis maps onto one [`SolverConfig`] knob; the default is everything
/// on (the modern engine), [`SearchEngine::legacy`] is everything off (the
/// pre-engine solver). Both orderings of every axis combination reach the
/// same verdicts and optima — the axes change only how fast the search gets
/// there, which is what the `search_ablation` bench measures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SearchEngine {
    /// Dedicated binary-implication watch lists.
    pub binary_watches: bool,
    /// Tiered (CORE/TIER2/LOCAL) learned-clause database.
    pub tiered_db: bool,
    /// Restart strategy.
    pub restart: RestartPolicy,
    /// In-search vivification of kept learned clauses.
    pub vivify: bool,
    /// Bounded variable elimination during the occurrence-list
    /// simplification pass, at first solve and as inprocessing between
    /// incremental `solve` calls.
    pub elim: bool,
}

impl Default for SearchEngine {
    fn default() -> SearchEngine {
        SearchEngine::full()
    }
}

impl SearchEngine {
    /// Every axis on: the modern search core.
    pub fn full() -> SearchEngine {
        SearchEngine {
            binary_watches: true,
            tiered_db: true,
            restart: RestartPolicy::Ema,
            vivify: true,
            elim: true,
        }
    }

    /// Every axis off: the solver as it behaved before the engine existed.
    pub fn legacy() -> SearchEngine {
        SearchEngine {
            binary_watches: false,
            tiered_db: false,
            restart: RestartPolicy::Luby,
            vivify: false,
            elim: false,
        }
    }

    /// Writes the axes into a [`SolverConfig`]. Must happen before
    /// constraints are added: watch-list routing is decided at attach time.
    pub fn configure(&self, cfg: &mut SolverConfig) {
        cfg.binary_watches = self.binary_watches;
        cfg.tiered_db = self.tiered_db;
        cfg.restart_policy = self.restart;
        cfg.vivify = self.vivify;
        cfg.elim = self.elim;
    }

    /// Reads the axes back out of a [`SolverConfig`].
    pub fn from_config(cfg: &SolverConfig) -> SearchEngine {
        SearchEngine {
            binary_watches: cfg.binary_watches,
            tiered_db: cfg.tiered_db,
            restart: cfg.restart_policy,
            vivify: cfg.vivify,
            elim: cfg.elim,
        }
    }

    /// Compact human-readable label, e.g. `full`, `legacy` or `bin+ema`.
    pub fn label(&self) -> String {
        if *self == SearchEngine::full() {
            return "full".to_string();
        }
        if *self == SearchEngine::legacy() {
            return "legacy".to_string();
        }
        let mut parts = Vec::new();
        if self.binary_watches {
            parts.push("bin");
        }
        if self.tiered_db {
            parts.push("tier");
        }
        if self.restart == RestartPolicy::Ema {
            parts.push("ema");
        }
        if self.vivify {
            parts.push("viv");
        }
        if self.elim {
            parts.push("elim");
        }
        if parts.is_empty() {
            "legacy".to_string()
        } else {
            parts.join("+")
        }
    }
}

impl std::str::FromStr for SearchEngine {
    type Err = String;

    /// Parses `full`, `legacy`, or a `+`-separated subset of
    /// `bin`/`tier`/`ema`/`viv`/`elim` (e.g. `bin+tier`).
    fn from_str(s: &str) -> Result<SearchEngine, String> {
        match s {
            "full" => return Ok(SearchEngine::full()),
            "legacy" => return Ok(SearchEngine::legacy()),
            _ => {}
        }
        let mut e = SearchEngine::legacy();
        for part in s.split('+').filter(|p| !p.is_empty()) {
            match part {
                "bin" => e.binary_watches = true,
                "tier" => e.tiered_db = true,
                "ema" => e.restart = RestartPolicy::Ema,
                "viv" => e.vivify = true,
                "elim" => e.elim = true,
                other => {
                    return Err(format!(
                        "unknown search axis '{other}' (expected full, legacy, \
                         or a +-joined subset of bin/tier/ema/viv/elim)"
                    ))
                }
            }
        }
        Ok(e)
    }
}

// Search-engine tuning constants (see docs/SOLVER.md for the rationale).
/// Learned clauses with LBD ≤ this are CORE: kept forever.
const CORE_LBD: u32 = 2;
/// Learned clauses with LBD ≤ this start in TIER2 (`Tier::Mid`).
const MID_LBD: u32 = 6;
/// A TIER2 clause untouched for this many conflicts is demoted to LOCAL.
const TIER_IDLE_CONFLICTS: u64 = 30_000;
/// Conflict interval between tiered reductions starts at
/// `first_reduce / 2` and grows by `reduce_grow`; this is the floor.
const TIER_REDUCE_MIN_INTERVAL: u64 = 100;
/// Fast LBD EMA horizon (Glucose's recent-quality window).
const EMA_FAST_ALPHA: f64 = 1.0 / 32.0;
/// Slow LBD / trail EMA horizon (the long-run baseline).
const EMA_SLOW_ALPHA: f64 = 1.0 / 4096.0;
/// Restart when `fast > K * slow`.
const EMA_RESTART_K: f64 = 1.25;
/// Block a pending restart when the conflict trail is deeper than
/// `R * trail_ema`.
const EMA_BLOCK_R: f64 = 1.4;
/// Minimum conflicts between consecutive EMA restarts.
const EMA_MIN_RESTART_CONFLICTS: u64 = 50;
/// Vivification runs at a restart boundary once this many new clauses were
/// learned since the previous pass.
const VIVIFY_MIN_LEARNED: u64 = 2_000;
/// Propagation budget per vivification round.
const VIVIFY_PROP_BUDGET: u64 = 200_000;
/// Without the tiered DB, vivification candidates are capped at this LBD.
const VIVIFY_MAX_LBD: u32 = 6;

/// Tunable solver parameters.
#[derive(Clone, Debug)]
pub struct SolverConfig {
    /// Multiplicative EVSIDS decay (activity increment grows by `1/decay`).
    pub var_decay: f64,
    /// Clause activity decay.
    pub clause_decay: f64,
    /// Conflicts in the first restart interval; later intervals follow the
    /// Luby sequence scaled by this unit.
    pub restart_unit: u64,
    /// Initial cap on retained learned clauses before a reduction pass.
    pub first_reduce: usize,
    /// Growth of the learned-clause cap after each reduction.
    pub reduce_grow: f64,
    /// Give up (return [`SolveResult::Unknown`]) after this many conflicts
    /// in one `solve` call, if set.
    pub max_conflicts: Option<u64>,
    /// Default phase for unassigned decision variables.
    pub default_phase: bool,
    /// If set, fresh variables get a pseudo-random initial phase derived
    /// from this seed (instead of `default_phase`). Used by the portfolio
    /// runner to diversify otherwise-identical workers.
    pub phase_seed: Option<u64>,
    /// Cooperative cancellation: when the flag becomes true, `solve`
    /// returns [`SolveResult::Interrupted`] at the next conflict or
    /// decision boundary. The solver stays sound and reusable.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Cross-solver learned-clause exchange. When set, short learned
    /// clauses passing the share filters are published to the ring, and
    /// foreign clauses are imported at every `solve` entry and restart.
    /// All participating solvers **must** hold the same base encoding (see
    /// the soundness contract in [`crate::ClauseExchange`]'s module docs).
    pub exchange: Option<Arc<ClauseExchange>>,
    /// This solver's id on the exchange; its own clauses are not re-imported.
    pub share_writer: u32,
    /// Only clauses whose variables all have `index <` this limit are
    /// exported — set it to the variable count of the shared base encoding
    /// so clauses involving solver-local guard/bound variables stay local.
    /// The default `0` exports nothing.
    pub share_var_limit: usize,
    /// Maximum length of an exported clause (clamped to the slot capacity).
    pub share_max_len: usize,
    /// Maximum LBD (glue) of an exported clause.
    pub share_max_lbd: u32,
    /// Run the level-0 occurrence-list simplification pass
    /// (duplicate/subsumed clause removal and self-subsuming resolution; plus
    /// bounded variable elimination when [`elim`](Self::elim) is on) at the
    /// first `solve` call. Equivalence-preserving, so sound under incremental
    /// reuse, assumptions, and clause exchange.
    pub preprocess: bool,
    /// Bounded variable elimination (SatELite-style clause distribution
    /// under a growth cutoff) inside the simplification pass, plus bounded
    /// re-runs of the pass between incremental `solve` calls once enough new
    /// input clauses arrived. Eliminated variables are transparently
    /// restored when referenced again ([`Solver::freeze_var`] opts a
    /// variable out up front) and every model is extended back over them, so
    /// the switch is invisible to callers except in speed.
    pub elim: bool,
    /// Record an extended DRAT trace ([`crate::ProofLog`]) of every input
    /// constraint and every derived clause, retrievable with
    /// [`Solver::take_proof`]. Implies that foreign clauses from the
    /// exchange are **not imported** (they have no local derivation, so
    /// they could not be justified in the proof); exporting still works.
    pub proof: bool,
    /// Route binary clauses through dedicated watch lists (other literal
    /// inline), propagated before long clauses. Must not be flipped after
    /// the first constraint is added: attach routing is decided per clause.
    pub binary_watches: bool,
    /// Keep the learned-clause database in CORE/TIER2/LOCAL tiers with
    /// recency-based demotion instead of the legacy sort-and-halve
    /// reduction.
    pub tiered_db: bool,
    /// Restart strategy; [`RestartPolicy::Ema`] adapts to conflict quality,
    /// [`RestartPolicy::Luby`] follows the fixed Luby sequence.
    pub restart_policy: RestartPolicy,
    /// Vivify kept learned clauses at restart boundaries (strengthenings
    /// are DRAT-logged, so `proof` stays sound).
    pub vivify: bool,
    /// Checked mode: walk deep solver invariants (watch-list coherence,
    /// trail/level consistency, PB counter sums, learned-DB integrity,
    /// elimination-stack state) at solve entry, every restart boundary and
    /// solve exit, and re-verify every `Sat` model against the full input
    /// formula. Each check is `O(formula)`, so this is for fuzz campaigns
    /// and debugging, not production solving. Defaults to on in debug
    /// builds when the `OPTALLOC_PARANOID` environment variable is set to
    /// `1`/`true`/`on`; settable explicitly in any build.
    pub paranoid: bool,
    /// Observability handle ([`optalloc_obs::Obs`]). Disabled by default;
    /// when enabled, every `solve` call records a `search` span (with
    /// nested `preprocess` spans for simplification/vivification rounds)
    /// and pushes its counter deltas into the metrics registry at solve
    /// exit. The hot search loop itself is never touched: with the handle
    /// disabled the only cost anywhere is a single branch per solve call.
    pub obs: Obs,
    /// Progress-event subscriber. When set, the solver emits a throttled
    /// [`ProgressEvent`] stream from the conflict loop (see
    /// [`progress_every_conflicts`](Self::progress_every_conflicts)); when
    /// `None` — the default — the per-conflict cost is one branch.
    pub progress: Option<ProgressHook>,
    /// Conflicts between progress-event emission checks (the integer-only
    /// fast path of the throttle).
    pub progress_every_conflicts: u64,
    /// Minimum wall-clock milliseconds between emitted progress events.
    pub progress_interval_ms: u64,
    /// Worker index stamped on emitted progress events (portfolio/window
    /// searches tag each worker's stream before merging).
    pub progress_worker: Option<usize>,
    /// Cost window `[lo, hi]` stamped on emitted progress events; the
    /// bisection loop updates it before each probe.
    pub progress_window: Option<(i64, i64)>,
}

/// `true` when the `OPTALLOC_PARANOID` environment variable requests
/// checked-mode solving (read once; see [`SolverConfig::paranoid`]).
pub fn paranoid_env() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        matches!(
            std::env::var("OPTALLOC_PARANOID").as_deref(),
            Ok("1") | Ok("true") | Ok("on") | Ok("yes")
        )
    })
}

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            var_decay: 0.95,
            clause_decay: 0.999,
            restart_unit: 100,
            first_reduce: 4000,
            reduce_grow: 1.2,
            max_conflicts: None,
            default_phase: false,
            phase_seed: None,
            interrupt: None,
            exchange: None,
            share_writer: 0,
            share_var_limit: 0,
            share_max_len: MAX_SHARED_LITS,
            share_max_lbd: 6,
            preprocess: true,
            elim: true,
            proof: false,
            binary_watches: true,
            tiered_db: true,
            restart_policy: RestartPolicy::Ema,
            vivify: true,
            paranoid: cfg!(debug_assertions) && paranoid_env(),
            obs: Obs::disabled(),
            progress: None,
            progress_every_conflicts: 2048,
            progress_interval_ms: 50,
            progress_worker: None,
            progress_window: None,
        }
    }
}

/// Per-field aggregation rule inside [`define_solver_stats!`]:
/// `counter` adds in `absorb` and subtracts in `delta_since`;
/// `counter_sat` is a counter whose delta saturates at zero;
/// `gauge` sums across cooperating solvers in `absorb` (tier sizes and
/// stack depths add up to the fleet total) but carries its *current* value
/// in `delta_since` (a difference could go negative after a reduction);
/// `max` keeps the worst single solver in `absorb` and the current value
/// in `delta_since`.
macro_rules! stat_absorb {
    (counter, $a:expr, $b:expr) => {
        $a += $b
    };
    (counter_sat, $a:expr, $b:expr) => {
        $a += $b
    };
    (gauge, $a:expr, $b:expr) => {
        $a += $b
    };
    (max, $a:expr, $b:expr) => {
        $a = $a.max($b)
    };
}

macro_rules! stat_delta {
    (counter, $a:expr, $b:expr) => {
        $a - $b
    };
    (counter_sat, $a:expr, $b:expr) => {
        $a.saturating_sub($b)
    };
    (gauge, $a:expr, $b:expr) => {
        $a
    };
    (max, $a:expr, $b:expr) => {
        $a
    };
}

/// Converts a stat field to `f64` for metric export (used by
/// [`SolverStats::for_each_metric`]).
trait StatField {
    fn as_metric(&self) -> f64;
}

impl StatField for u64 {
    fn as_metric(&self) -> f64 {
        *self as f64
    }
}

impl StatField for f64 {
    fn as_metric(&self) -> f64 {
        *self
    }
}

/// Declares [`SolverStats`] from a single field list, generating the
/// struct, [`absorb`](SolverStats::absorb),
/// [`delta_since`](SolverStats::delta_since) and
/// [`for_each_metric`](SolverStats::for_each_metric) together so a new
/// counter can never be added to one and silently dropped from the others
/// (the attribution-drift bug this replaces: three hand-maintained
/// field-by-field copies).
macro_rules! define_solver_stats {
    ($( [$kind:ident] $name:ident : $ty:ty = $doc:expr; )+) => {
        /// Execution counters, exposed for the paper's complexity tables.
        #[derive(Default, Clone, Debug)]
        pub struct SolverStats {
            $( #[doc = $doc] pub $name: $ty, )+
        }

        impl SolverStats {
            /// Adds every counter of `other` into `self` — for aggregating
            /// the per-call or per-worker statistics of cooperating
            /// solvers. Gauges sum to the fleet total; peaks take the max.
            pub fn absorb(&mut self, other: &SolverStats) {
                $( stat_absorb!($kind, self.$name, other.$name); )+
            }

            /// The increment since `baseline` (an earlier snapshot of the
            /// same solver's counters) — the inverse of
            /// [`absorb`](Self::absorb) for counters, while gauges carry
            /// their current value. A long-lived solver reused across
            /// requests accumulates counters monotonically; this attributes
            /// the cumulative totals to one request.
            pub fn delta_since(&self, baseline: &SolverStats) -> SolverStats {
                SolverStats {
                    $( $name: stat_delta!($kind, self.$name, baseline.$name), )+
                }
            }

            /// Visits every field as `(name, kind, value)` with kind one of
            /// `"counter"`, `"counter_sat"`, `"gauge"`, `"max"` — the
            /// single source the metrics export walks, so the registry can
            /// never miss a field that exists on the struct.
            pub fn for_each_metric(&self, f: &mut dyn FnMut(&'static str, &'static str, f64)) {
                $( f(stringify!($name), stringify!($kind), StatField::as_metric(&self.$name)); )+
            }
        }
    };
}

define_solver_stats! {
    [counter] decisions: u64 = "Decisions made.";
    [counter] propagations: u64 = "Literals propagated (clause + PB).";
    [counter] conflicts: u64 = "Conflicts analyzed.";
    [counter] restarts: u64 = "Restarts performed.";
    [counter] learned: u64 = "Clauses learned (including units).";
    [counter] deleted: u64 = "Learned clauses deleted by DB reduction.";
    [counter] pb_propagations: u64 = "Propagations caused by PB constraints.";
    [counter] exported: u64 = "Learned clauses published to the cross-solver exchange.";
    [counter] imported: u64 = "Foreign clauses imported from the exchange.";
    [counter] pp_removed: u64 =
        "Input clauses removed by preprocessing (satisfied, duplicate or subsumed).";
    [counter] pp_strengthened: u64 =
        "Literals removed from input clauses by self-subsuming resolution.";
    [counter] pp_fixed: u64 = "Variables fixed at level 0 by preprocessing.";
    [counter] elim_vars: u64 = "Variables removed by bounded variable elimination (cumulative).";
    [counter] elim_clauses: u64 =
        "Input clauses moved onto the reconstruction stack by elimination.";
    [counter] elim_resolvents: u64 = "Resolvents added by clause distribution during elimination.";
    [counter] elim_restored: u64 =
        "Eliminated variables restored because a later constraint, assumption or freeze \
         referenced them (the melt-on-reuse protocol).";
    [gauge] elim_stack_depth: u64 =
        "Variables currently eliminated, i.e. the live depth of the model-reconstruction \
         stack (gauge).";
    [counter] restarts_luby: u64 = "Restarts taken under [`RestartPolicy::Luby`].";
    [counter] restarts_ema: u64 = "Restarts taken under [`RestartPolicy::Ema`].";
    [counter] restarts_blocked: u64 = "EMA restarts suppressed by trail-size blocking.";
    [counter] vivified: u64 = "Learned clauses strengthened by in-search vivification.";
    [counter] vivify_lits_removed: u64 =
        "Literals removed from learned clauses by vivification.";
    [gauge] tier_core: u64 = "CORE-tier learned clauses currently retained (gauge).";
    [gauge] tier_mid: u64 = "TIER2 learned clauses currently retained (gauge).";
    [gauge] tier_local: u64 = "LOCAL-tier learned clauses currently retained (gauge).";
    [max] peak_learnts: u64 = "High-water mark of retained learned clauses (gauge).";
    [counter_sat] watch_bytes_reclaimed: u64 =
        "Bytes of watch-list capacity released during garbage collection.";
    [counter] solve_ms: f64 =
        "Wall-clock milliseconds spent inside `solve` calls (search only; encoding time is \
         tracked separately by the callers). Fed from the same stopwatch that records the \
         `search` trace span, so the two can never disagree.";
}

/// CDCL SAT solver with native pseudo-Boolean constraints.
pub struct Solver {
    /// Tunables; adjust before solving.
    pub config: SolverConfig,

    db: ClauseDb,
    pbs: Vec<PbConstraint>,
    /// `pb_occs[lit]` lists `(pb index, coef)` for constraints containing
    /// `lit`; consulted when `lit` becomes false.
    pb_occs: Vec<Vec<(u32, u64)>>,
    /// `watches[lit]` holds clauses to inspect when `lit` becomes **true**
    /// (i.e. clauses watching `¬lit`).
    watches: Vec<Vec<Watcher>>,
    /// Binary clauses, indexed like `watches` but with the implied literal
    /// inline; walked before the long-clause lists. Only populated when
    /// [`SolverConfig::binary_watches`] is on.
    bin_watches: Vec<Vec<BinWatch>>,

    assigns: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    trail_pos: Vec<u32>,
    qhead: usize,

    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f32,
    order: VarOrderHeap,
    saved_phase: Vec<bool>,

    /// Learned clause refs, for DB reduction.
    learnts: Vec<ClauseRef>,
    max_learnts: usize,
    /// Tiered-DB reduction schedule: next reduction fires at this conflict
    /// count, with the interval growing by `reduce_grow` each time.
    next_reduce: u64,
    reduce_interval: f64,

    // Adaptive-restart state (RestartPolicy::Ema). The EMAs persist across
    // `solve` calls so incremental re-solves keep their calibration.
    lbd_fast: f64,
    lbd_slow: f64,
    trail_ema: f64,
    ema_conflicts: u64,

    /// Clauses learned since the last vivification round.
    learned_since_vivify: u64,

    // Conflict-analysis scratch space.
    seen: Vec<bool>,
    reason_buf: Vec<Lit>,

    /// False once an unconditional (level-0) contradiction was derived.
    ok: bool,

    /// Completed model captured at the last `Sat` verdict.
    model: Vec<bool>,

    /// Total literal occurrences over all input constraints (paper's "Lit." column).
    input_literals: u64,
    input_clauses: u64,

    /// Read position on the clause exchange, if one is configured.
    exchange_cursor: u64,

    /// Whether the first-solve simplification pass has run.
    preprocessed: bool,

    /// Per-variable freeze marks: frozen variables are never eliminated.
    frozen: Vec<bool>,
    /// Per-variable elimination marks; an eliminated variable occurs in no
    /// attached input clause and is skipped by decision picking.
    eliminated: Vec<bool>,
    /// Clauses removed by each elimination, in elimination order — replayed
    /// backwards to extend models, forwards (per variable) to restore.
    elim_stack: Vec<ElimGroup>,
    /// `var index → elim_stack position` while eliminated (`u32::MAX`
    /// otherwise); stale stack entries of re-eliminated variables are
    /// recognized by this indirection.
    elim_pos: Vec<u32>,
    /// Input clauses added since the last simplification pass; drives the
    /// bounded inprocessing trigger.
    inputs_since_simplify: u64,

    /// Extended DRAT trace, lazily created when `config.proof` is set.
    proof: Option<ProofLog>,

    /// Rate limiter for the progress stream, lazily created from the config
    /// the first time a hooked solver reaches a conflict.
    progress_throttle: Option<ProgressThrottle>,

    /// Execution counters.
    pub stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver {
            config: SolverConfig::default(),
            db: ClauseDb::new(),
            pbs: Vec::new(),
            pb_occs: Vec::new(),
            watches: Vec::new(),
            bin_watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            trail_pos: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarOrderHeap::new(),
            saved_phase: Vec::new(),
            learnts: Vec::new(),
            max_learnts: 0,
            next_reduce: 0,
            reduce_interval: 0.0,
            lbd_fast: 0.0,
            lbd_slow: 0.0,
            trail_ema: 0.0,
            ema_conflicts: 0,
            learned_since_vivify: 0,
            seen: Vec::new(),
            reason_buf: Vec::new(),
            ok: true,
            model: Vec::new(),
            input_literals: 0,
            input_clauses: 0,
            exchange_cursor: 0,
            preprocessed: false,
            frozen: Vec::new(),
            eliminated: Vec::new(),
            elim_stack: Vec::new(),
            elim_pos: Vec::new(),
            inputs_since_simplify: 0,
            proof: None,
            progress_throttle: None,
            stats: SolverStats::default(),
        }
    }

    /// The proof recorded so far, if `config.proof` is enabled and at least
    /// one constraint was added.
    pub fn proof(&self) -> Option<&ProofLog> {
        self.proof.as_ref()
    }

    /// Takes ownership of the recorded proof, leaving the solver logging
    /// into a fresh (empty) trace from here on.
    pub fn take_proof(&mut self) -> Option<ProofLog> {
        self.proof.take()
    }

    #[inline]
    fn proof_log(&mut self) -> &mut ProofLog {
        self.proof.get_or_insert_with(ProofLog::new)
    }

    /// Marks the constraint set unconditionally contradictory, logging the
    /// empty clause (which is RUP at this point: the checker's root-level
    /// closure over the logged steps contains the same conflict).
    fn set_unsat(&mut self) {
        if self.config.proof {
            self.proof_log().add(&[]);
        }
        self.ok = false;
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.assigns.len());
        self.assigns.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.trail_pos.push(0);
        self.activity.push(0.0);
        let phase = match self.config.phase_seed {
            Some(seed) => splitmix64(seed ^ v.index() as u64) & 1 == 1,
            None => self.config.default_phase,
        };
        self.saved_phase.push(phase);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.bin_watches.push(Vec::new());
        self.pb_occs.push(Vec::new());
        self.pb_occs.push(Vec::new());
        self.frozen.push(false);
        self.eliminated.push(false);
        self.elim_pos.push(u32::MAX);
        self.order.insert(v, &self.activity);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem constraints added (clauses + PB constraints),
    /// excluding learned clauses.
    pub fn num_constraints(&self) -> u64 {
        self.input_clauses
    }

    /// Total literal occurrences over all added constraints — the paper's
    /// "Lit." complexity column.
    pub fn num_literals(&self) -> u64 {
        self.input_literals
    }

    /// `false` once the constraint set is unconditionally contradictory.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    #[inline]
    fn value_var(&self, v: Var) -> LBool {
        self.assigns[v.index()]
    }

    /// Current value of a literal under the partial assignment.
    #[inline]
    pub fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assigns[l.var().index()];
        if l.is_negative() {
            v.negate()
        } else {
            v
        }
    }

    /// Model value of a literal after a [`SolveResult::Sat`] verdict.
    ///
    /// The model is a snapshot taken when `solve` returned `Sat`; it remains
    /// readable until the next `solve` call.
    pub fn model_value(&self, l: Lit) -> bool {
        let v = self
            .model
            .get(l.var().index())
            .copied()
            .unwrap_or(self.config.default_phase);
        v == l.is_positive()
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    // ------------------------------------------------------------------
    // Adding constraints
    // ------------------------------------------------------------------

    /// Adds a clause (a disjunction of literals). Returns `false` if the
    /// solver detected an unconditional contradiction.
    ///
    /// Must be called at decision level 0 (i.e. outside `solve`).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack_to(0);
        if !self.ok {
            return false;
        }
        // Melt-on-reuse: a clause over an eliminated variable re-activates
        // it (and, transitively, anything its stored clauses mention) before
        // the new clause constrains it.
        if lits.iter().any(|l| self.eliminated[l.var().index()]) {
            self.restore_vars_in(lits);
            if !self.ok {
                return false;
            }
        }
        if self.config.proof {
            self.proof_log().input_clause(lits);
        }
        let mut cl: Vec<Lit> = lits.to_vec();
        cl.sort_unstable();
        cl.dedup();
        // Tautology / level-0 simplification.
        let mut write = 0;
        for i in 0..cl.len() {
            let l = cl[i];
            if i + 1 < cl.len() && cl[i + 1] == !l {
                return true; // contains l ∨ ¬l
            }
            match self.value_lit(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => {
                    cl[write] = l;
                    write += 1;
                }
            }
        }
        cl.truncate(write);
        self.input_clauses += 1;
        self.input_literals += lits.len() as u64;
        match cl.len() {
            0 => {
                self.set_unsat();
                false
            }
            1 => {
                self.assign(cl[0], Reason::None);
                if self.propagate().is_some() {
                    self.set_unsat();
                }
                self.ok
            }
            _ => {
                let cref = self.db.alloc(&cl, false);
                self.attach(cref);
                self.inputs_since_simplify += 1;
                true
            }
        }
    }

    /// Adds the pseudo-Boolean constraint `Σ terms  op  bound`. Returns
    /// `false` on an unconditional contradiction.
    pub fn add_pb(&mut self, terms: &[PbTerm], op: PbOp, bound: i64) -> bool {
        self.backtrack_to(0);
        if !self.ok {
            return false;
        }
        if terms.iter().any(|t| self.eliminated[t.lit.var().index()]) {
            let lits: Vec<Lit> = terms.iter().map(|t| t.lit).collect();
            self.restore_vars_in(&lits);
            if !self.ok {
                return false;
            }
        }
        self.input_clauses += 1;
        self.input_literals += terms.len() as u64;
        for (ge_terms, ge_bound) in to_ge_constraints(terms, op, bound) {
            match normalize_ge(&ge_terms, ge_bound) {
                Normalized::TriviallyTrue => {}
                Normalized::TriviallyFalse => {
                    if self.config.proof {
                        self.proof_log().input_clause(&[]);
                    }
                    self.set_unsat();
                    return false;
                }
                Normalized::Unit(l) => {
                    if self.config.proof {
                        self.proof_log().input_clause(&[l]);
                    }
                    match self.value_lit(l) {
                        LBool::True => {}
                        LBool::False => {
                            self.set_unsat();
                            return false;
                        }
                        LBool::Undef => {
                            self.assign(l, Reason::None);
                            if self.propagate().is_some() {
                                self.set_unsat();
                                return false;
                            }
                        }
                    }
                }
                Normalized::Constraint { lits, coefs, bound } => {
                    if self.config.proof {
                        self.proof_log().input_pb(&lits, &coefs, bound);
                    }
                    if !self.install_pb(lits, coefs, bound) {
                        self.set_unsat();
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Installs a canonical PB constraint, accounting for literals already
    /// false at level 0 and propagating any immediately forced literals.
    fn install_pb(&mut self, lits: Vec<Lit>, coefs: Vec<u64>, bound: u64) -> bool {
        let idx = self.pbs.len() as u32;
        let mut c = PbConstraint::new(lits, coefs, bound);
        // Fold in the current level-0 assignment.
        for (i, &l) in c.lits.iter().enumerate() {
            if self.value_lit(l) == LBool::False {
                c.slack -= c.coefs[i] as i64;
            }
        }
        if c.slack < 0 {
            return false;
        }
        for (i, &l) in c.lits.iter().enumerate() {
            self.pb_occs[l.index()].push((idx, c.coefs[i]));
        }
        // Literals forced right away (coef exceeds slack).
        let forced: Vec<Lit> = c
            .lits
            .iter()
            .zip(c.coefs.iter())
            .filter(|&(l, &a)| self.value_lit(*l) == LBool::Undef && (a as i64) > c.slack)
            .map(|(&l, _)| l)
            .collect();
        self.pbs.push(c);
        for l in forced {
            if self.value_lit(l) == LBool::Undef {
                self.assign(l, Reason::Pb(idx));
            }
            if self.propagate().is_some() {
                return false;
            }
        }
        self.propagate().is_none()
    }

    fn attach(&mut self, cref: ClauseRef) {
        debug_assert!(
            self.db.len(cref) >= 2,
            "only clauses of length >= 2 carry watches"
        );
        let (l0, l1) = {
            let ls = self.db.lits(cref);
            (ls[0], ls[1])
        };
        debug_assert_ne!(l0, l1, "duplicate watched literal in {:?}", cref);
        debug_assert_ne!(l0, !l1, "tautology reached attach: {:?}", cref);
        if self.config.binary_watches && self.db.len(cref) == 2 {
            self.bin_watches[(!l0).index()].push(BinWatch { other: l1, cref });
            self.bin_watches[(!l1).index()].push(BinWatch { other: l0, cref });
        } else {
            self.watches[(!l0).index()].push(Watcher { cref, blocker: l1 });
            self.watches[(!l1).index()].push(Watcher { cref, blocker: l0 });
        }
    }

    // ------------------------------------------------------------------
    // Assignment & propagation
    // ------------------------------------------------------------------

    fn assign(&mut self, l: Lit, reason: Reason) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = LBool::from_bool(l.is_positive());
        self.level[v.index()] = self.decision_level();
        self.reason[v.index()] = reason;
        self.trail_pos[v.index()] = self.trail.len() as u32;
        self.trail.push(l);
        // Counter maintenance: every constraint containing ¬l loses slack.
        let fl = !l;
        for &(pb, coef) in &self.pb_occs[fl.index()] {
            self.pbs[pb as usize].slack -= coef as i64;
        }
        self.stats.propagations += 1;
    }

    fn unassign(&mut self, v: Var) {
        let val = self.assigns[v.index()];
        debug_assert!(val.is_assigned());
        // Only ever called from `backtrack_to`, immediately after popping
        // this variable's literal — so its recorded position must be the
        // (new) trail length.
        debug_assert_eq!(
            self.trail_pos[v.index()] as usize,
            self.trail.len(),
            "unassign must pop the trail tail"
        );
        let true_lit = v.lit(val == LBool::True);
        let fl = !true_lit;
        for &(pb, coef) in &self.pb_occs[fl.index()] {
            self.pbs[pb as usize].slack += coef as i64;
        }
        self.assigns[v.index()] = LBool::Undef;
        self.reason[v.index()] = Reason::None;
        self.saved_phase[v.index()] = val == LBool::True;
        if !self.order.contains(v) {
            self.order.insert(v, &self.activity);
        }
    }

    /// Propagates all queued assignments. Returns the conflicting constraint
    /// if a conflict arises.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            if self.config.binary_watches {
                if let Some(confl) = self.propagate_bins(p) {
                    self.qhead = self.trail.len();
                    return Some(Conflict::Clause(confl));
                }
            }
            if let Some(confl) = self.propagate_clauses(p) {
                self.qhead = self.trail.len();
                return Some(Conflict::Clause(confl));
            }
            if let Some(confl) = self.propagate_pbs(p) {
                self.qhead = self.trail.len();
                return Some(confl);
            }
        }
        None
    }

    /// Walks the binary watch list of `p`: every entry is a clause
    /// `(¬p ∨ other)`, so `other` is forced outright — no arena access, no
    /// watch migration. Returns the conflicting clause, if any.
    fn propagate_bins(&mut self, p: Lit) -> Option<ClauseRef> {
        // Entries are never added or removed during propagation, so plain
        // indexing is safe even though `assign` mutates other solver state.
        for i in 0..self.bin_watches[p.index()].len() {
            let BinWatch { other, cref } = self.bin_watches[p.index()][i];
            debug_assert_eq!(
                self.db.len(cref),
                2,
                "non-binary clause on a binary watch list"
            );
            match self.value_lit(other) {
                LBool::True => {}
                LBool::False => return Some(cref),
                LBool::Undef => {
                    // Keep the propagated literal in slot 0: DB reduction
                    // and `clear_learned` rely on it for the locked check.
                    let lits = self.db.lits_mut(cref);
                    if lits[0] != other {
                        lits.swap(0, 1);
                    }
                    self.assign(other, Reason::Clause(cref));
                }
            }
        }
        None
    }

    /// Walks the watch list of `p` (clauses containing `¬p`).
    fn propagate_clauses(&mut self, p: Lit) -> Option<ClauseRef> {
        let false_lit = !p;
        let mut ws = std::mem::take(&mut self.watches[p.index()]);
        let mut i = 0;
        let mut conflict = None;
        'watchers: while i < ws.len() {
            let w = ws[i];
            if self.value_lit(w.blocker) == LBool::True {
                i += 1;
                continue;
            }
            let cref = w.cref;
            // Normalize: watched literal we are processing goes to slot 1.
            {
                let lits = self.db.lits_mut(cref);
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
            }
            let first = self.db.lits(cref)[0];
            if first != w.blocker && self.value_lit(first) == LBool::True {
                ws[i] = Watcher {
                    cref,
                    blocker: first,
                };
                i += 1;
                continue;
            }
            // Find a new literal to watch.
            let len = self.db.len(cref);
            for k in 2..len {
                let lk = self.db.lits(cref)[k];
                if self.value_lit(lk) != LBool::False {
                    self.db.lits_mut(cref).swap(1, k);
                    self.watches[(!lk).index()].push(Watcher {
                        cref,
                        blocker: first,
                    });
                    ws.swap_remove(i);
                    continue 'watchers;
                }
            }
            // No replacement: clause is unit or conflicting.
            ws[i] = Watcher {
                cref,
                blocker: first,
            };
            i += 1;
            match self.value_lit(first) {
                LBool::False => {
                    conflict = Some(cref);
                    break;
                }
                LBool::Undef => self.assign(first, Reason::Clause(cref)),
                LBool::True => unreachable!("handled above"),
            }
        }
        // Put the (possibly shrunk) watch list back, preserving any watchers
        // not yet visited.
        let rest = std::mem::replace(&mut self.watches[p.index()], ws);
        self.watches[p.index()].extend(rest);
        conflict
    }

    /// Updates PB constraints containing `¬p` after `p` became true.
    fn propagate_pbs(&mut self, p: Lit) -> Option<Conflict> {
        let fl = !p;
        // Slack was already decremented in `assign`; here we detect
        // conflicts and propagate forced literals.
        for oi in 0..self.pb_occs[fl.index()].len() {
            let (pb_idx, _) = self.pb_occs[fl.index()][oi];
            let pb = &self.pbs[pb_idx as usize];
            if pb.slack < 0 {
                return Some(Conflict::Pb(pb_idx));
            }
            if (pb.max_coef as i64) <= pb.slack {
                continue;
            }
            // Scan for unassigned literals with coef > slack: forced true.
            let n = pb.lits.len();
            for k in 0..n {
                let pb = &self.pbs[pb_idx as usize];
                let (l, a) = (pb.lits[k], pb.coefs[k]);
                if (a as i64) > pb.slack && self.value_lit(l) == LBool::Undef {
                    self.stats.pb_propagations += 1;
                    self.assign(l, Reason::Pb(pb_idx));
                }
            }
        }
        None
    }

    /// Collects the explanation literals of a reason/conflict into
    /// `self.reason_buf`. For a clause this is the clause body; for a PB
    /// constraint it is the set of its false literals assigned before
    /// `before` (or all false literals for a conflict). The propagated
    /// literal itself, if any, is excluded.
    fn explain(&mut self, r: Reason, propagated: Option<Lit>) {
        self.reason_buf.clear();
        match r {
            Reason::None => unreachable!("decisions have no explanation"),
            Reason::Clause(cref) => {
                for &l in self.db.lits(cref) {
                    if Some(l) != propagated {
                        self.reason_buf.push(l);
                    }
                }
            }
            Reason::Pb(idx) => {
                let cutoff = propagated
                    .map(|p| self.trail_pos[p.var().index()])
                    .unwrap_or(u32::MAX);
                let pb = &self.pbs[idx as usize];
                for &l in pb.lits.iter() {
                    let v = l.var();
                    let val = self.assigns[v.index()];
                    let lit_false = match val {
                        LBool::Undef => false,
                        _ => (val == LBool::True) != l.is_positive(),
                    };
                    if lit_false && self.trail_pos[v.index()] < cutoff {
                        self.reason_buf.push(l);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Conflict analysis
    // ------------------------------------------------------------------

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32) {
        let current_level = self.decision_level();
        let mut learnt: Vec<Lit> = Vec::with_capacity(16);
        let mut path_count = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut reason = match confl {
            Conflict::Clause(c) => {
                self.bump_clause(c);
                Reason::Clause(c)
            }
            Conflict::Pb(i) => Reason::Pb(i),
        };

        loop {
            self.explain(reason, p);
            let expl = std::mem::take(&mut self.reason_buf);
            for &q in &expl {
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.bump_var(v);
                    if self.level[v.index()] >= current_level {
                        path_count += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            self.reason_buf = expl;

            // Select the next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            let v = pl.var();
            self.seen[v.index()] = false;
            path_count -= 1;
            p = Some(pl);
            if path_count == 0 {
                break;
            }
            reason = self.reason[v.index()];
            if let Reason::Clause(c) = reason {
                self.bump_clause(c);
            }
        }

        let uip = !p.unwrap();
        self.minimize_learnt(&mut learnt);
        learnt.insert(0, uip);

        // Backtrack level = highest level among the non-asserting literals.
        let bt_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        // Clear remaining `seen` flags.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        (learnt, bt_level)
    }

    /// Drops learned literals whose reason is entirely subsumed by other
    /// learned literals (local minimization).
    fn minimize_learnt(&mut self, learnt: &mut Vec<Lit>) {
        // Mark all kept literals (the UIP is added later and never removed).
        for &l in learnt.iter() {
            self.seen[l.var().index()] = true;
        }
        let mut i = 0;
        while i < learnt.len() {
            let l = learnt[i];
            let r = self.reason[l.var().index()];
            let redundant = match r {
                Reason::None => false,
                _ => {
                    self.explain(r, Some(!l));
                    let buf = std::mem::take(&mut self.reason_buf);
                    let red = buf.iter().all(|&q| {
                        let v = q.var();
                        self.level[v.index()] == 0 || self.seen[v.index()]
                    });
                    self.reason_buf = buf;
                    red
                }
            };
            if redundant {
                self.seen[l.var().index()] = false;
                learnt.swap_remove(i);
            } else {
                i += 1;
            }
        }
        for &l in learnt.iter() {
            self.seen[l.var().index()] = false;
        }
    }

    fn lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits.iter().map(|l| self.level[l.var().index()]).collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
            self.order.rescaled();
        }
        self.order.increased(v, &self.activity);
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        if !self.db.is_learnt(cref) {
            return;
        }
        self.db.set_touch(cref, self.stats.conflicts);
        let act = self.db.activity(cref) + self.cla_inc;
        self.db.set_activity(cref, act);
        if act > 1e20 {
            for &c in &self.learnts {
                let a = self.db.activity(c);
                self.db.set_activity(c, a * 1e-20);
            }
            self.cla_inc *= 1e-20;
        }
        // Glucose-style LBD refresh: a clause used in conflict analysis has
        // all literals assigned, so its LBD can be recomputed; improvements
        // promote the clause into a safer tier.
        if self.config.tiered_db {
            let old = self.db.lbd(cref);
            if old > CORE_LBD {
                let new = self.lbd(self.db.lits(cref));
                if new < old {
                    self.db.set_lbd(cref, new);
                    if new <= CORE_LBD {
                        self.db.set_tier(cref, Tier::Core);
                    } else if new <= MID_LBD && self.db.tier(cref) == Tier::Local {
                        self.db.set_tier(cref, Tier::Mid);
                    }
                }
            }
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= self.config.var_decay;
        self.cla_inc /= self.config.clause_decay as f32;
    }

    // ------------------------------------------------------------------
    // Backtracking
    // ------------------------------------------------------------------

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let target = self.trail_lim[level as usize];
        while self.trail.len() > target {
            let l = self.trail.pop().unwrap();
            self.unassign(l.var());
        }
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
        debug_assert_eq!(self.decision_level(), level);
    }

    fn new_decision_level(&mut self) {
        debug_assert_eq!(
            self.qhead,
            self.trail.len(),
            "decision level opened with pending propagations"
        );
        self.trail_lim.push(self.trail.len());
    }

    // ------------------------------------------------------------------
    // Learned-clause database management
    // ------------------------------------------------------------------

    /// `true` while the clause is the active reason of its first literal
    /// (deleting it would leave a dangling [`Reason::Clause`]).
    fn is_locked(&self, c: ClauseRef) -> bool {
        let first = self.db.lits(c)[0];
        self.reason[first.var().index()] == Reason::Clause(c)
            && self.value_lit(first) == LBool::True
    }

    fn reduce_db(&mut self) {
        if self.config.tiered_db {
            self.reduce_db_tiered();
        } else {
            self.reduce_db_legacy();
        }
    }

    /// Tiered reduction: CORE is untouchable, idle TIER2 clauses are
    /// demoted, and the worst (least active) half of LOCAL is deleted.
    fn reduce_db_tiered(&mut self) {
        let now = self.stats.conflicts;
        for i in 0..self.learnts.len() {
            let c = self.learnts[i];
            if self.db.tier(c) == Tier::Mid
                && now.saturating_sub(self.db.touch(c)) >= TIER_IDLE_CONFLICTS
            {
                self.db.set_tier(c, Tier::Local);
            }
        }
        let mut local: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| self.db.tier(c) == Tier::Local && !self.is_locked(c))
            .collect();
        // Worst first: lowest activity, ties broken toward higher LBD.
        let db = &self.db;
        local.sort_by(|&a, &b| {
            db.activity(a)
                .partial_cmp(&db.activity(b))
                .unwrap()
                .then(db.lbd(b).cmp(&db.lbd(a)))
        });
        let target = local.len() / 2;
        for &c in &local[..target] {
            if self.config.proof {
                let lits = self.db.lits(c).to_vec();
                self.proof_log().delete(&lits);
            }
            self.detach(c);
            self.db.delete(c);
        }
        let db = &self.db;
        self.learnts.retain(|&c| !db.is_deleted(c));
        self.stats.deleted += target as u64;
        self.refresh_tier_stats();
        self.reduce_interval *= self.config.reduce_grow;
        self.next_reduce = now + (self.reduce_interval as u64).max(TIER_REDUCE_MIN_INTERVAL);

        if self.db.wasted * 4 > self.db.arena_len() {
            self.garbage_collect();
        }
    }

    /// Legacy reduction: sort everything worst-first and delete half.
    fn reduce_db_legacy(&mut self) {
        // Sort worst-first: high LBD, then low activity.
        let db = &self.db;
        self.learnts.sort_by(|&a, &b| {
            db.lbd(b)
                .cmp(&db.lbd(a))
                .then(db.activity(a).partial_cmp(&db.activity(b)).unwrap())
        });
        let mut removed = 0usize;
        let target = self.learnts.len() / 2;
        let mut kept = Vec::with_capacity(self.learnts.len() - target);
        let learnts = std::mem::take(&mut self.learnts);
        for (i, &c) in learnts.iter().enumerate() {
            if i < target && !self.is_locked(c) && self.db.lbd(c) > 2 {
                if self.config.proof {
                    let lits = self.db.lits(c).to_vec();
                    self.proof_log().delete(&lits);
                }
                self.detach(c);
                self.db.delete(c);
                removed += 1;
            } else {
                kept.push(c);
            }
        }
        self.learnts = kept;
        self.stats.deleted += removed as u64;
        self.max_learnts = (self.max_learnts as f64 * self.config.reduce_grow) as usize;

        if self.db.wasted * 4 > self.db.arena_len() {
            self.garbage_collect();
        }
    }

    /// Recounts the tier-size gauges from the live learned-clause list.
    fn refresh_tier_stats(&mut self) {
        let (mut core, mut mid, mut local) = (0u64, 0u64, 0u64);
        for &c in &self.learnts {
            match self.db.tier(c) {
                Tier::Core => core += 1,
                Tier::Mid => mid += 1,
                Tier::Local => local += 1,
            }
        }
        self.stats.tier_core = core;
        self.stats.tier_mid = mid;
        self.stats.tier_local = local;
    }

    /// One in-search vivification round over the kept learned clauses.
    ///
    /// For a candidate `C = (l₁ ∨ … ∨ lₖ)` the negations `¬l₁, ¬l₂, …` are
    /// asserted as decisions in clause order, with `C` itself detached so it
    /// cannot propagate against its own test:
    /// - `lᵢ` already **false**: it is implied false by the earlier
    ///   negations (or a root fact), so `C ∖ {lᵢ}` is entailed — drop it;
    /// - `lᵢ` already **true**: `¬l₁ ∧ … ∧ ¬lᵢ₋₁` implies `lᵢ`, so `C`
    ///   truncates to `(l₁ ∨ … ∨ lᵢ)`;
    /// - propagation **conflicts** after asserting `¬lᵢ`: same truncation.
    ///
    /// Every strengthened clause is RUP with respect to the database *still
    /// containing the original* (asserting the negation of the strengthened
    /// clause replays the same unit propagations into the original or the
    /// conflict), so under proof logging the new clause is logged **before**
    /// the original is deleted — the same derivation-time discipline as
    /// preprocessing. Runs at level 0 (restart boundaries), bounded by a
    /// propagation budget; assumptions are re-decided by the next
    /// `pick_next` pass.
    fn vivify_round(&mut self) {
        // Restarts only rewind to the assumption prefix; vivification needs
        // the true root level (assumptions are re-decided afterwards).
        self.backtrack_to(0);
        let candidates: Vec<ClauseRef> = self
            .learnts
            .iter()
            .copied()
            .filter(|&c| {
                self.db.len(c) >= 3
                    && !self.db.is_vivified(c)
                    && !self.is_locked(c)
                    && if self.config.tiered_db {
                        self.db.tier(c) != Tier::Local
                    } else {
                        self.db.lbd(c) <= VIVIFY_MAX_LBD
                    }
            })
            .collect();
        if candidates.is_empty() {
            return;
        }
        let budget_start = self.stats.propagations;
        let mut replaced: Vec<(ClauseRef, ClauseRef)> = Vec::new();
        let mut changed = false;
        for cref in candidates {
            if self.stats.propagations - budget_start > VIVIFY_PROP_BUDGET || self.interrupted() {
                break;
            }
            let lits = self.db.lits(cref).to_vec();
            // Detached for the duration of its own test; re-attached (or
            // replaced) below.
            self.detach(cref);
            let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
            let mut root_satisfied = false;
            for &l in &lits {
                match self.value_lit(l) {
                    // A root-level true literal satisfies the clause
                    // permanently — drop the whole clause instead.
                    LBool::True if self.level[l.var().index()] == 0 => {
                        root_satisfied = true;
                        break;
                    }
                    LBool::True => {
                        kept.push(l);
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => {
                        self.new_decision_level();
                        self.assign(!l, Reason::None);
                        kept.push(l);
                        if self.propagate().is_some() {
                            break;
                        }
                    }
                }
            }
            self.backtrack_to(0);
            if root_satisfied {
                if self.config.proof {
                    self.proof_log().delete(&lits);
                }
                self.db.delete(cref);
                self.stats.deleted += 1;
                changed = true;
                continue;
            }
            if kept.len() == lits.len() {
                self.attach(cref);
                self.db.set_vivified(cref);
                continue;
            }
            // Strengthened: log the new clause first (RUP while the
            // original is still present), then retire the original.
            changed = true;
            self.stats.vivified += 1;
            self.stats.vivify_lits_removed += (lits.len() - kept.len()) as u64;
            if kept.is_empty() {
                // Every literal was root-false: unconditional conflict.
                self.db.delete(cref);
                self.clear_root_reasons();
                self.set_unsat();
                return;
            }
            if self.config.proof {
                self.proof_log().add(&kept);
                self.proof_log().delete(&lits);
            }
            let old_lbd = self.db.lbd(cref);
            let old_act = self.db.activity(cref);
            let old_tier = self.db.tier(cref);
            self.db.delete(cref);
            if kept.len() == 1 {
                match self.value_lit(kept[0]) {
                    LBool::True => {}
                    LBool::False => {
                        self.clear_root_reasons();
                        self.set_unsat();
                        return;
                    }
                    LBool::Undef => {
                        self.assign(kept[0], Reason::None);
                        if self.propagate().is_some() {
                            self.clear_root_reasons();
                            self.set_unsat();
                            return;
                        }
                    }
                }
                continue;
            }
            let nc = self.db.alloc(&kept, true);
            let new_lbd = old_lbd.min(kept.len() as u32).max(1);
            self.db.set_lbd(nc, new_lbd);
            self.db.set_activity(nc, old_act);
            if self.config.tiered_db {
                // Never demote: the strengthened clause subsumes the
                // original, so it is at least as valuable.
                let promoted = tier_for_lbd(new_lbd);
                let tier = if (promoted as u32) < (old_tier as u32) {
                    promoted
                } else {
                    old_tier
                };
                self.db.set_tier(nc, tier);
            }
            self.db.set_touch(nc, self.stats.conflicts);
            self.db.set_vivified(nc);
            self.attach(nc);
            replaced.push((cref, nc));
        }
        if changed || !replaced.is_empty() {
            let map: std::collections::HashMap<ClauseRef, ClauseRef> =
                replaced.into_iter().collect();
            for c in self.learnts.iter_mut() {
                if let Some(&n) = map.get(c) {
                    *c = n;
                }
            }
            let db = &self.db;
            self.learnts.retain(|&c| !db.is_deleted(c));
        }
        // Units derived above propagate at level 0 and record clause
        // reasons; one of those reason clauses may itself have been
        // vivified away, and garbage collection must not meet a reference
        // to a deleted clause. Root facts never need explaining, so drop
        // the reasons wholesale (same discipline as preprocessing).
        self.clear_root_reasons();
        if self.db.wasted * 4 > self.db.arena_len() {
            self.garbage_collect();
        }
    }

    /// Number of learned clauses currently retained in the database.
    ///
    /// Together with [`Solver::clear_learned`] this is the clause-retention
    /// API used by warm-started re-solves: a long-lived solver accumulates
    /// learned clauses across searches, and the caller decides when the
    /// haul is worth keeping versus resetting.
    pub fn num_learned(&self) -> usize {
        self.learnts.len()
    }

    /// Drops every learned clause that is not locked as the reason of a
    /// root-level propagation, returning the number removed.
    ///
    /// Unlike the activity-driven `reduce_db` heuristic this is a full
    /// reset (glue clauses included), intended for re-solve
    /// boundaries where the retained clauses are known to be stale or the
    /// database has grown past the caller's retention budget. The solver
    /// backtracks to the root level first, stays sound, and remains fully
    /// usable afterwards; deletions are recorded in the proof trace when
    /// proof logging is on.
    pub fn clear_learned(&mut self) -> usize {
        self.backtrack_to(0);
        let mut removed = 0usize;
        let learnts = std::mem::take(&mut self.learnts);
        let mut kept = Vec::new();
        for c in learnts {
            if self.is_locked(c) {
                kept.push(c);
                continue;
            }
            if self.config.proof {
                let lits = self.db.lits(c).to_vec();
                self.proof_log().delete(&lits);
            }
            self.detach(c);
            self.db.delete(c);
            removed += 1;
        }
        self.learnts = kept;
        self.stats.deleted += removed as u64;
        if self.db.wasted * 4 > self.db.arena_len() {
            self.garbage_collect();
        }
        removed
    }

    fn detach(&mut self, cref: ClauseRef) {
        let (l0, l1) = {
            let ls = self.db.lits(cref);
            (ls[0], ls[1])
        };
        if self.config.binary_watches && self.db.len(cref) == 2 {
            self.bin_watches[(!l0).index()].retain(|w| w.cref != cref);
            self.bin_watches[(!l1).index()].retain(|w| w.cref != cref);
        } else {
            self.watches[(!l0).index()].retain(|w| w.cref != cref);
            self.watches[(!l1).index()].retain(|w| w.cref != cref);
        }
    }

    fn garbage_collect(&mut self) {
        let relocs = self.db.collect();
        let map: std::collections::HashMap<ClauseRef, ClauseRef> = relocs.into_iter().collect();
        let mut reclaimed = 0usize;
        for ws in &mut self.watches {
            for w in ws.iter_mut() {
                w.cref = map[&w.cref];
            }
            reclaimed += shrink_excess(ws) * std::mem::size_of::<Watcher>();
        }
        for ws in &mut self.bin_watches {
            for w in ws.iter_mut() {
                w.cref = map[&w.cref];
            }
            reclaimed += shrink_excess(ws) * std::mem::size_of::<BinWatch>();
        }
        self.stats.watch_bytes_reclaimed += reclaimed as u64;
        for r in &mut self.reason {
            if let Reason::Clause(c) = r {
                *r = Reason::Clause(map[c]);
            }
        }
        for c in &mut self.learnts {
            *c = map[c];
        }
    }

    // ------------------------------------------------------------------
    // Input simplification support (the occurrence-list pass itself lives
    // in solver/simp.rs)
    // ------------------------------------------------------------------

    /// Clears the reason of every level-0 trail literal. Root facts never
    /// need explaining (conflict analysis stops above level 0), and a `None`
    /// reason lets preprocessing delete or relocate any input clause without
    /// leaving a dangling reference.
    fn clear_root_reasons(&mut self) {
        let end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for i in 0..end {
            self.reason[self.trail[i].var().index()] = Reason::None;
        }
    }

    /// Assigns a preprocessing-derived unit fact and propagates. Returns
    /// `false` (and clears `ok`) on a contradiction.
    fn pp_assign_unit(&mut self, l: Lit) -> bool {
        // The unit is a resolvent of clauses still present in the trace
        // (its source clause is only deleted later, at write-back), so it
        // is RUP here.
        if self.config.proof {
            self.proof_log().add(&[l]);
        }
        match self.value_lit(l) {
            LBool::True => true,
            LBool::False => {
                self.set_unsat();
                false
            }
            LBool::Undef => {
                self.stats.pp_fixed += 1;
                self.assign(l, Reason::None);
                if self.propagate().is_some() {
                    self.set_unsat();
                    false
                } else {
                    true
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Main search
    // ------------------------------------------------------------------

    /// Decides satisfiability of the accumulated constraints under the given
    /// `assumptions` (literals temporarily forced true for this call).
    ///
    /// All constraints and learned clauses persist across calls, which is
    /// what makes the binary-search optimization loop incremental.
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        // The stopwatch replaces the raw `Instant` this used to hold: it
        // always measures, and when observability is enabled the *same* f64
        // it returns becomes the recorded `search` span's `dur_ms` — so the
        // trace and `stats.solve_ms` can never disagree.
        let before = self.config.obs.is_enabled().then(|| self.stats.clone());
        let mut sw = self.config.obs.stopwatch(Phase::Search);
        let result = self.solve_inner(assumptions);
        if sw.recording() {
            sw.attr(
                "result",
                match result {
                    SolveResult::Sat => "sat",
                    SolveResult::Unsat => "unsat",
                    SolveResult::Unknown => "unknown",
                    SolveResult::Interrupted => "interrupted",
                },
            );
            sw.attr("assumptions", assumptions.len().to_string());
        }
        self.stats.solve_ms += sw.finish();
        if let Some(before) = before {
            self.export_metrics(&before);
        }
        result
    }

    /// Pushes the per-call increment of every stat field into the metrics
    /// registry as `solver.<field>` counters/gauges, plus a latency
    /// histogram over `solver.solve_ms`. Driven by
    /// [`SolverStats::for_each_metric`], so a field added to the struct is
    /// exported automatically.
    #[cold]
    fn export_metrics(&mut self, before: &SolverStats) {
        let Some(metrics) = self.config.obs.metrics() else {
            return;
        };
        let delta = self.stats.delta_since(before);
        let mut name = String::with_capacity(32);
        delta.for_each_metric(&mut |field, kind, value| {
            name.clear();
            name.push_str("solver.");
            name.push_str(field);
            match kind {
                // Gauges and peaks carry the current value; everything else
                // is a monotone per-call increment.
                "gauge" | "max" => metrics.gauge(&name).set(value as i64),
                _ => metrics.counter(&name).add(value as u64),
            }
        });
        metrics
            .histogram("solver.solve_ms", DEFAULT_MS_BUCKETS)
            .observe(delta.solve_ms);
    }

    /// Emits a throttled [`ProgressEvent`] through the configured hook.
    /// Reached only when a hook is installed; the caller guards with a
    /// single `Option` test so the unhooked per-conflict cost stays at one
    /// branch.
    #[cold]
    fn emit_progress(&mut self) {
        let throttle = self.progress_throttle.get_or_insert_with(|| {
            ProgressThrottle::new(
                self.config.progress_every_conflicts,
                self.config.progress_interval_ms,
            )
        });
        let Some(rate) = throttle.due(self.stats.conflicts) else {
            return;
        };
        self.refresh_tier_stats();
        let ev = ProgressEvent {
            worker: self.config.progress_worker,
            conflicts: self.stats.conflicts,
            conflicts_per_s: rate,
            propagations: self.stats.propagations,
            restarts: self.stats.restarts,
            learnt_core: self.stats.tier_core,
            learnt_mid: self.stats.tier_mid,
            learnt_local: self.stats.tier_local,
            window: self.config.progress_window,
            elim_vars: self.stats.elim_vars,
        };
        if let Some(hook) = &self.config.progress {
            hook.emit(&ev);
        }
    }

    fn solve_inner(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.backtrack_to(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        if self.interrupted() {
            return SolveResult::Interrupted;
        }
        if let Some(c) = self.propagate() {
            let _ = c;
            self.set_unsat();
            return SolveResult::Unsat;
        }
        self.import_shared();
        if !self.ok {
            return SolveResult::Unsat;
        }
        // Assuming an eliminated variable would search the distributed
        // formula `F′ ∧ x` instead of `F ∧ x` — not equisatisfiable — so
        // melt it back first.
        if assumptions.iter().any(|a| self.eliminated[a.var().index()]) {
            self.restore_vars_in(assumptions);
            if !self.ok {
                return SolveResult::Unsat;
            }
        }
        if self.config.preprocess && (!self.preprocessed || self.inprocess_due()) {
            let first = !self.preprocessed;
            self.preprocessed = true;
            let mut sw = self.config.obs.stopwatch(Phase::Preprocess);
            if sw.recording() {
                sw.attr("pass", if first { "simplify-first" } else { "inprocess" });
            }
            self.simplify(assumptions, first);
            sw.finish();
            if !self.ok {
                return SolveResult::Unsat;
            }
        }
        if self.config.paranoid {
            self.check_invariants("solve-entry");
        }

        let mut restarts = 0u64;
        let mut conflicts_this_call = 0u64;
        if self.max_learnts == 0 {
            self.max_learnts = self.config.first_reduce;
        }
        if self.next_reduce == 0 {
            self.reduce_interval =
                ((self.config.first_reduce as u64 / 2).max(TIER_REDUCE_MIN_INTERVAL)) as f64;
            self.next_reduce = self.stats.conflicts + self.reduce_interval as u64;
        }

        let result = loop {
            let budget = match self.config.restart_policy {
                RestartPolicy::Luby => luby(restarts) * self.config.restart_unit,
                // EMA restarts are decided by the LBD EMAs inside `search`.
                RestartPolicy::Ema => u64::MAX,
            };
            match self.search(assumptions, budget, &mut conflicts_this_call) {
                SearchOutcome::Sat => break SolveResult::Sat,
                SearchOutcome::Unsat => break SolveResult::Unsat,
                SearchOutcome::Restart => {
                    restarts += 1;
                    self.stats.restarts += 1;
                    match self.config.restart_policy {
                        RestartPolicy::Luby => self.stats.restarts_luby += 1,
                        RestartPolicy::Ema => self.stats.restarts_ema += 1,
                    }
                    // Restart boundaries are the one safe point inside a
                    // solve call to pull in foreign clauses (level 0, no
                    // pending conflict).
                    self.import_shared();
                    if !self.ok {
                        break SolveResult::Unsat;
                    }
                    if self.config.vivify && self.learned_since_vivify >= VIVIFY_MIN_LEARNED {
                        self.learned_since_vivify = 0;
                        let mut sw = self.config.obs.stopwatch(Phase::Preprocess);
                        if sw.recording() {
                            sw.attr("pass", "vivify");
                        }
                        self.vivify_round();
                        sw.finish();
                        if !self.ok {
                            break SolveResult::Unsat;
                        }
                    }
                    if self.config.paranoid {
                        self.check_invariants("restart");
                    }
                }
                SearchOutcome::Budget => break SolveResult::Unknown,
                SearchOutcome::Interrupted => break SolveResult::Interrupted,
            }
        };
        if result == SolveResult::Sat {
            // Snapshot the model, completing unconstrained variables with
            // their saved phase.
            self.model.clear();
            self.model
                .extend(self.assigns.iter().enumerate().map(|(i, &v)| match v {
                    LBool::True => true,
                    LBool::False => false,
                    LBool::Undef => self.saved_phase[i],
                }));
            // Replay the reconstruction stack so the snapshot also satisfies
            // every clause removed by variable elimination.
            self.extend_model();
        }
        self.backtrack_to(0);
        self.refresh_tier_stats();
        if self.config.paranoid {
            self.check_invariants("solve-exit");
            if result == SolveResult::Sat {
                // The model must satisfy the *input* formula, including
                // every clause the eliminator removed — this is where a
                // broken reconstruction stack is caught.
                self.debug_check_model();
            }
        }
        result
    }

    /// Convenience: solve with no assumptions.
    pub fn solve_unassuming(&mut self) -> SolveResult {
        self.solve(&[])
    }

    /// True when an external [`SolverConfig::interrupt`] flag is raised.
    #[inline]
    fn interrupted(&self) -> bool {
        self.config
            .interrupt
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    fn search(
        &mut self,
        assumptions: &[Lit],
        restart_budget: u64,
        conflicts_this_call: &mut u64,
    ) -> SearchOutcome {
        let mut conflicts_since_restart = 0u64;
        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                *conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    self.set_unsat();
                    return SearchOutcome::Unsat;
                }
                let trail_at_conflict = self.trail.len();
                let (learnt, bt_level) = self.analyze(confl);
                self.backtrack_to(bt_level);
                let lbd = self.learn(&learnt);
                self.decay_activities();
                if self.config.restart_policy == RestartPolicy::Ema {
                    self.update_restart_emas(lbd, trail_at_conflict, conflicts_since_restart);
                }
                // Unhooked solvers pay exactly this one branch per conflict;
                // hooked ones fall into the throttle's integer fast path.
                if self.config.progress.is_some() {
                    self.emit_progress();
                }
                if let Some(max) = self.config.max_conflicts {
                    if *conflicts_this_call >= max {
                        return SearchOutcome::Budget;
                    }
                }
                if self.interrupted() {
                    return SearchOutcome::Interrupted;
                }
            } else {
                if self.interrupted() {
                    return SearchOutcome::Interrupted;
                }
                let restart_due = match self.config.restart_policy {
                    RestartPolicy::Luby => conflicts_since_restart >= restart_budget,
                    RestartPolicy::Ema => {
                        conflicts_since_restart >= EMA_MIN_RESTART_CONFLICTS
                            && self.lbd_fast > EMA_RESTART_K * self.lbd_slow
                    }
                };
                if restart_due && self.decision_level() > assumptions.len() as u32 {
                    self.backtrack_to(assumptions.len() as u32);
                    return SearchOutcome::Restart;
                }
                let reduce_due = if self.config.tiered_db {
                    self.stats.conflicts >= self.next_reduce
                } else {
                    self.learnts.len() >= self.max_learnts
                };
                if reduce_due {
                    self.reduce_db();
                }
                // Extend with assumptions, then decide.
                match self.pick_next(assumptions) {
                    PickOutcome::AllAssigned => return SearchOutcome::Sat,
                    PickOutcome::AssumptionConflict => return SearchOutcome::Unsat,
                    PickOutcome::Decided => {}
                }
            }
        }
    }

    /// Feeds one conflict into the adaptive-restart estimators.
    ///
    /// `fast` tracks the LBD of recent conflicts, `slow` the long-run
    /// average; a fast EMA above `K·slow` means the search is currently
    /// producing poor clauses, so a restart is scheduled. A conflict trail
    /// much deeper than its own average suggests the search is near a model
    /// instead — then the pending restart is blocked by collapsing the fast
    /// EMA back onto the slow one. All arithmetic is deterministic.
    fn update_restart_emas(&mut self, lbd: u32, trail_at_conflict: usize, since_restart: u64) {
        self.ema_conflicts += 1;
        // Bias correction: behave like plain running means until each
        // horizon has filled up, instead of crawling away from zero.
        let n = self.ema_conflicts as f64;
        let fast_alpha = EMA_FAST_ALPHA.max(1.0 / n);
        let slow_alpha = EMA_SLOW_ALPHA.max(1.0 / n);
        let l = lbd.max(1) as f64;
        self.lbd_fast += fast_alpha * (l - self.lbd_fast);
        self.lbd_slow += slow_alpha * (l - self.lbd_slow);
        let t = trail_at_conflict as f64;
        self.trail_ema += slow_alpha * (t - self.trail_ema);
        if since_restart >= EMA_MIN_RESTART_CONFLICTS
            && self.lbd_fast > EMA_RESTART_K * self.lbd_slow
            && t > EMA_BLOCK_R * self.trail_ema
        {
            self.lbd_fast = self.lbd_slow;
            self.stats.restarts_blocked += 1;
        }
    }

    fn pick_next(&mut self, assumptions: &[Lit]) -> PickOutcome {
        while (self.decision_level() as usize) < assumptions.len() {
            let p = assumptions[self.decision_level() as usize];
            match self.value_lit(p) {
                LBool::True => {
                    // Already satisfied: dummy level to keep the invariant
                    // that level i ≤ |assumptions| corresponds to assumption i.
                    self.new_decision_level();
                }
                LBool::False => {
                    // Proof: the negated-assumption-prefix clause is RUP —
                    // asserting the prefix re-propagates ¬p. For a guarded
                    // bound probe this is the certified window claim `¬g`.
                    if self.config.proof {
                        let lvl = self.decision_level() as usize;
                        let clause: Vec<Lit> = assumptions[..=lvl].iter().map(|&a| !a).collect();
                        self.proof_log().add(&clause);
                    }
                    return PickOutcome::AssumptionConflict;
                }
                LBool::Undef => {
                    self.new_decision_level();
                    self.assign(p, Reason::None);
                    return PickOutcome::Decided;
                }
            }
        }
        // Regular decision by activity.
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.eliminated[v.index()] {
                continue;
            }
            if self.value_var(v) == LBool::Undef {
                self.stats.decisions += 1;
                self.new_decision_level();
                let phase = self.saved_phase[v.index()];
                self.assign(v.lit(phase), Reason::None);
                return PickOutcome::Decided;
            }
        }
        PickOutcome::AllAssigned
    }

    /// Installs a freshly learned clause and returns its LBD (feeding the
    /// adaptive-restart EMAs).
    fn learn(&mut self, learnt: &[Lit]) -> u32 {
        self.stats.learned += 1;
        // First-UIP learned clauses (after minimization) are RUP with
        // respect to the inputs plus the earlier learned clauses.
        if self.config.proof {
            self.proof_log().add(learnt);
        }
        match learnt.len() {
            0 => {
                self.ok = false;
                0
            }
            1 => {
                self.assign(learnt[0], Reason::None);
                self.maybe_export(learnt, 1);
                1
            }
            _ => {
                let cref = self.db.alloc(learnt, true);
                let lbd = self.lbd(learnt);
                self.db.set_lbd(cref, lbd);
                self.db.set_activity(cref, self.cla_inc);
                if self.config.tiered_db {
                    self.db.set_tier(cref, tier_for_lbd(lbd));
                }
                self.db.set_touch(cref, self.stats.conflicts);
                self.attach(cref);
                self.learnts.push(cref);
                self.stats.peak_learnts = self.stats.peak_learnts.max(self.learnts.len() as u64);
                self.learned_since_vivify += 1;
                self.assign(learnt[0], Reason::Clause(cref));
                self.maybe_export(learnt, lbd);
                lbd
            }
        }
    }

    // ------------------------------------------------------------------
    // Cross-solver clause exchange
    // ------------------------------------------------------------------

    /// Publishes a freshly learned clause to the exchange when it passes
    /// the share filters: short, low-glue, and — critically for soundness —
    /// confined to the shared base encoding (`share_var_limit`), so clauses
    /// that depend on solver-local guarded bounds never leave this solver.
    fn maybe_export(&mut self, lits: &[Lit], lbd: u32) {
        let Some(ex) = &self.config.exchange else {
            return;
        };
        if lits.len() > self.config.share_max_len || lbd > self.config.share_max_lbd {
            return;
        }
        if lits
            .iter()
            .any(|l| l.var().index() >= self.config.share_var_limit)
        {
            return;
        }
        if ex.publish(self.config.share_writer, lits) {
            self.stats.exported += 1;
        }
    }

    /// Imports clauses other workers published since the last call. Must
    /// run outside search or at a restart boundary; backtracks to level 0
    /// (assumptions are re-decided by the next `pick_next` pass).
    fn import_shared(&mut self) {
        // A foreign clause has no local derivation, so it could never be
        // justified in the DRAT trace: under proof logging this solver
        // exports but does not import.
        if self.config.proof {
            return;
        }
        let Some(ex) = self.config.exchange.clone() else {
            return;
        };
        self.backtrack_to(0);
        let mut incoming: Vec<Vec<Lit>> = Vec::new();
        self.exchange_cursor = ex.drain(self.config.share_writer, self.exchange_cursor, |c| {
            incoming.push(c.to_vec());
        });
        for lits in incoming {
            if !self.ok {
                return;
            }
            self.import_clause(&lits);
        }
    }

    /// Installs one foreign clause as a (deletable) learned clause,
    /// simplifying against the level-0 assignment first.
    fn import_clause(&mut self, lits: &[Lit]) {
        // Defensive: a clause from a differently-sized encoding is dropped.
        if lits.iter().any(|l| l.var().index() >= self.num_vars()) {
            return;
        }
        // Shared-base variables are automatically frozen, so a foreign
        // clause should never mention an eliminated variable; drop it rather
        // than restore (a learned clause is never worth the churn).
        if lits.iter().any(|l| self.eliminated[l.var().index()]) {
            return;
        }
        let mut cl: Vec<Lit> = lits.to_vec();
        cl.sort_unstable();
        cl.dedup();
        let mut write = 0;
        for i in 0..cl.len() {
            let l = cl[i];
            if i + 1 < cl.len() && cl[i + 1] == !l {
                return; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return, // already satisfied at level 0
                LBool::False => {}
                LBool::Undef => {
                    cl[write] = l;
                    write += 1;
                }
            }
        }
        cl.truncate(write);
        self.stats.imported += 1;
        match cl.len() {
            0 => self.ok = false,
            1 => {
                self.assign(cl[0], Reason::None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
            }
            _ => {
                let cref = self.db.alloc(&cl, true);
                self.db.set_lbd(cref, cl.len() as u32);
                self.db.set_activity(cref, self.cla_inc);
                if self.config.tiered_db {
                    self.db.set_tier(cref, tier_for_lbd(cl.len() as u32));
                }
                self.db.set_touch(cref, self.stats.conflicts);
                self.attach(cref);
                self.learnts.push(cref);
                self.stats.peak_learnts = self.stats.peak_learnts.max(self.learnts.len() as u64);
            }
        }
    }

    /// Exports the accumulated *input* constraints (clauses and PB
    /// constraints, not learned clauses) as a [`crate::Formula`] — e.g. to
    /// dump an encoded instance in OPB format for an external solver.
    ///
    /// Level-0 unit assignments made while adding constraints are exported
    /// as unit constraints so the formula is equisatisfiable.
    pub fn export_formula(&self) -> crate::Formula {
        let to_signed = |l: Lit| -> i64 {
            let v = l.var().index() as i64 + 1;
            if l.is_positive() {
                v
            } else {
                -v
            }
        };
        let mut f = crate::Formula {
            n_vars: self.num_vars(),
            ..Default::default()
        };
        // Root-level forced literals (from unit clauses / PB units).
        let root_end = self.trail_lim.first().copied().unwrap_or(self.trail.len());
        for &l in &self.trail[..root_end] {
            if self.reason[l.var().index()] == Reason::None {
                f.clauses.push(vec![to_signed(l)]);
            }
        }
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                continue;
            }
            f.clauses
                .push(self.db.lits(cref).iter().map(|&l| to_signed(l)).collect());
        }
        for pb in &self.pbs {
            let terms: Vec<(i64, i64)> = pb
                .lits
                .iter()
                .zip(pb.coefs.iter())
                .map(|(&l, &a)| (a as i64, to_signed(l)))
                .collect();
            f.pbs.push((terms, crate::PbOp::Ge, pb.bound as i64));
        }
        f
    }

    /// Verifies the current model against every input constraint. Intended
    /// for tests and debug assertions; `panic`s on violation.
    pub fn debug_check_model(&self) {
        for cref in self.db.iter_refs() {
            if self.db.is_learnt(cref) {
                continue;
            }
            assert!(
                self.db.lits(cref).iter().any(|&l| self.model_value(l)),
                "clause {:?} violated",
                self.db.lits(cref)
            );
        }
        for pb in &self.pbs {
            let sum: u64 = pb
                .lits
                .iter()
                .zip(pb.coefs.iter())
                .filter(|&(l, _)| self.model_value(*l))
                .map(|(_, &a)| a)
                .sum();
            assert!(
                sum >= pb.bound,
                "PB constraint violated: sum {} < bound {}",
                sum,
                pb.bound
            );
        }
        // Clauses removed by variable elimination must be satisfied through
        // the reconstruction-extended part of the model.
        self.debug_check_elim_stack();
    }
}

enum SearchOutcome {
    Sat,
    Unsat,
    Restart,
    Budget,
    Interrupted,
}

enum PickOutcome {
    AllAssigned,
    AssumptionConflict,
    Decided,
}

/// Releases the excess capacity of a grossly over-allocated list, returning
/// the number of surplus elements freed. Lists near their high-water mark
/// are left alone: `shrink_to_fit` on a hot watch list that immediately
/// regrows would thrash the allocator.
/// Initial tier of a learned clause by LBD.
fn tier_for_lbd(lbd: u32) -> Tier {
    if lbd <= CORE_LBD {
        Tier::Core
    } else if lbd <= MID_LBD {
        Tier::Mid
    } else {
        Tier::Local
    }
}

fn shrink_excess<T>(v: &mut Vec<T>) -> usize {
    if v.capacity() <= 16 || v.capacity() < 4 * v.len().max(1) {
        return 0;
    }
    let before = v.capacity();
    v.shrink_to_fit();
    before - v.capacity()
}

/// SplitMix64 finalizer; mixes a seed into a well-distributed word. Used for
/// the per-variable pseudo-random initial phases under
/// [`SolverConfig::phase_seed`].
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i, then recurse.
    let mut k = 1u32;
    loop {
        if i + 1 == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        if i + 1 < (1u64 << k) - 1 {
            i -= (1u64 << (k - 1)) - 1;
            k = 1;
            continue;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut Solver, ids: &mut Vec<Var>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize - 1;
        while ids.len() <= idx {
            ids.push(s.new_var());
        }
        ids[idx].lit(i > 0)
    }

    fn add(s: &mut Solver, ids: &mut Vec<Var>, clause: &[i32]) -> bool {
        let lits: Vec<Lit> = clause.iter().map(|&i| lit(s, ids, i)).collect();
        s.add_clause(&lits)
    }

    /// Fills every stat field with a distinct value derived from `base`
    /// via the metric iterator, so the test can never silently skip a
    /// newly added field.
    fn synthetic_stats(base: u64) -> SolverStats {
        let mut s = SolverStats::default();
        let mut names = Vec::new();
        s.for_each_metric(&mut |name, kind, _| names.push((name, kind)));
        s.decisions = base;
        s.propagations = base + 1;
        s.conflicts = base + 2;
        s.restarts = base + 3;
        s.learned = base + 4;
        s.deleted = base + 5;
        s.pb_propagations = base + 6;
        s.exported = base + 7;
        s.imported = base + 8;
        s.pp_removed = base + 9;
        s.pp_strengthened = base + 10;
        s.pp_fixed = base + 11;
        s.elim_vars = base + 12;
        s.elim_clauses = base + 13;
        s.elim_resolvents = base + 14;
        s.elim_restored = base + 15;
        s.elim_stack_depth = base + 16;
        s.restarts_luby = base + 17;
        s.restarts_ema = base + 18;
        s.restarts_blocked = base + 19;
        s.vivified = base + 20;
        s.vivify_lits_removed = base + 21;
        s.tier_core = base + 22;
        s.tier_mid = base + 23;
        s.tier_local = base + 24;
        s.peak_learnts = base + 25;
        s.watch_bytes_reclaimed = base + 26;
        s.solve_ms = base as f64 + 27.5;
        assert_eq!(names.len(), 28, "synthetic_stats must cover every field");
        s
    }

    #[test]
    fn stats_absorb_sums_counters_and_maxes_peak() {
        let mut a = synthetic_stats(100);
        let b = synthetic_stats(1000);
        a.absorb(&b);
        assert_eq!(a.decisions, 1100);
        assert_eq!(a.solve_ms, 127.5 + 1027.5);
        // Gauges sum to the fleet total.
        assert_eq!(a.tier_core, 122 + 1022);
        assert_eq!(a.elim_stack_depth, 116 + 1016);
        // Peak takes the worst single solver.
        assert_eq!(a.peak_learnts, 1025);
    }

    #[test]
    fn stats_delta_inverts_absorb_for_counters() {
        let baseline = synthetic_stats(100);
        let mut grown = baseline.clone();
        let increment = synthetic_stats(40);
        grown.absorb(&increment);
        let delta = grown.delta_since(&baseline);
        // Counters recover the increment exactly.
        assert_eq!(delta.decisions, increment.decisions);
        assert_eq!(delta.conflicts, increment.conflicts);
        assert_eq!(delta.watch_bytes_reclaimed, increment.watch_bytes_reclaimed);
        assert_eq!(delta.solve_ms, increment.solve_ms);
        // Gauges and peaks carry the grown (current) value, not a diff.
        assert_eq!(delta.tier_core, grown.tier_core);
        assert_eq!(delta.elim_stack_depth, grown.elim_stack_depth);
        assert_eq!(delta.peak_learnts, grown.peak_learnts);
    }

    #[test]
    fn stats_delta_saturates_watch_bytes() {
        // A GC in the baseline epoch can make the cumulative counter look
        // like it shrank per-request; the delta must clamp at zero rather
        // than wrap.
        let now = SolverStats {
            watch_bytes_reclaimed: 10,
            ..SolverStats::default()
        };
        let base = SolverStats {
            watch_bytes_reclaimed: 25,
            ..SolverStats::default()
        };
        assert_eq!(now.delta_since(&base).watch_bytes_reclaimed, 0);
    }

    #[test]
    fn stats_metric_iterator_covers_every_field() {
        let s = synthetic_stats(7);
        let mut seen = std::collections::BTreeMap::new();
        s.for_each_metric(&mut |name, kind, value| {
            seen.insert(name, (kind, value));
        });
        assert_eq!(seen.len(), 28);
        assert_eq!(seen["decisions"], ("counter", 7.0));
        assert_eq!(seen["elim_stack_depth"].0, "gauge");
        assert_eq!(seen["peak_learnts"].0, "max");
        assert_eq!(seen["watch_bytes_reclaimed"].0, "counter_sat");
        assert_eq!(seen["solve_ms"], ("counter", 34.5));
    }

    #[test]
    fn solve_records_search_span_matching_solve_ms() {
        let obs = Obs::enabled();
        let mut s = Solver::new();
        s.config.obs = obs.clone();
        let mut ids = Vec::new();
        for i in 1..=8 {
            add(&mut s, &mut ids, &[i, -(i % 8 + 1)]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[ids[0].positive()]), SolveResult::Sat);
        let spans = obs.spans();
        let search: Vec<_> = spans.iter().filter(|r| r.phase == "search").collect();
        assert_eq!(search.len(), 2, "one search span per solve call");
        let total: f64 = search.iter().map(|r| r.dur_ms).sum();
        // Same f64 stream, same order: bit-exact, not approximate.
        assert_eq!(total, s.stats.solve_ms);
        let snap = obs.metrics().unwrap().snapshot();
        assert_eq!(snap.counter("solver.solve_calls"), None, "no such metric");
        assert!(snap.counter("solver.propagations").unwrap() > 0);
        assert_eq!(snap.counter("solver.decisions").unwrap(), s.stats.decisions);
    }

    #[test]
    fn progress_hook_fires_and_respects_worker_stamp() {
        use std::sync::Mutex;
        let events: Arc<Mutex<Vec<ProgressEvent>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = events.clone();
        let mut s = Solver::new();
        // Keep the conflicts in search: preprocessing would refute this
        // instance at level 0 before a single conflict fires.
        s.config.preprocess = false;
        s.config.progress = Some(ProgressHook::new(move |ev| {
            sink.lock().unwrap().push(ev.clone());
        }));
        s.config.progress_every_conflicts = 1;
        s.config.progress_interval_ms = 0;
        s.config.progress_worker = Some(3);
        s.config.progress_window = Some((10, 20));
        let mut ids = Vec::new();
        // Small pigeonhole-ish contradiction to force conflicts.
        for i in 1..=4 {
            for j in (i + 1)..=4 {
                add(&mut s, &mut ids, &[-i, -j]);
            }
        }
        add(&mut s, &mut ids, &[1, 2, 3, 4]);
        add(&mut s, &mut ids, &[5, 6]);
        add(&mut s, &mut ids, &[-5, 6]);
        add(&mut s, &mut ids, &[5, -6]);
        add(&mut s, &mut ids, &[-5, -6]);
        let _ = s.solve(&[]);
        let got = events.lock().unwrap();
        assert!(!got.is_empty(), "at least one progress event");
        assert_eq!(got[0].worker, Some(3));
        assert_eq!(got[0].window, Some((10, 20)));
        assert!(got[0].conflicts >= 1);
    }

    #[test]
    fn luby_sequence() {
        let expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        assert!(add(&mut s, &mut ids, &[1]));
        assert!(add(&mut s, &mut ids, &[-1, 2]));
        assert!(add(&mut s, &mut ids, &[-2, 3]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(ids[0].positive()));
        assert!(s.model_value(ids[1].positive()));
        assert!(s.model_value(ids[2].positive()));
    }

    #[test]
    fn simple_unsat() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        add(&mut s, &mut ids, &[1, 2]);
        add(&mut s, &mut ids, &[1, -2]);
        add(&mut s, &mut ids, &[-1, 2]);
        add(&mut s, &mut ids, &[-1, -2]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn contradictory_units_unsat_at_add_time() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        assert!(add(&mut s, &mut ids, &[1]));
        assert!(!add(&mut s, &mut ids, &[-1]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_verdict() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        add(&mut s, &mut ids, &[1, 2]);
        let a = ids[0];
        let b = ids[1];
        assert_eq!(s.solve(&[a.negative(), b.negative()]), SolveResult::Unsat);
        // Still satisfiable without assumptions (incremental reuse).
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.solve(&[a.negative()]), SolveResult::Sat);
        assert!(s.model_value(b.positive()));
    }

    #[test]
    fn pb_exactly_one() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
        let terms: Vec<PbTerm> = vars.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
        assert!(s.add_pb(&terms, PbOp::Eq, 1));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let count = vars.iter().filter(|v| s.model_value(v.positive())).count();
        assert_eq!(count, 1);
        s.debug_check_model();
    }

    #[test]
    fn pb_at_least_two_with_forbidden_pair() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let terms: Vec<PbTerm> = vars.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
        assert!(s.add_pb(&terms, PbOp::Ge, 2));
        // v0 and v1 cannot both hold ⇒ v2 must hold.
        assert!(s.add_clause(&[vars[0].negative(), vars[1].negative()]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(vars[2].positive()));
        s.debug_check_model();
    }

    #[test]
    fn pb_infeasible_bound() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
        let terms: Vec<PbTerm> = vars.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
        assert!(s.add_pb(&terms, PbOp::Le, 1));
        assert!(s.add_pb(&terms, PbOp::Ge, 1));
        // Forbid each single-variable solution pairwise-free: force v0 true
        // and v1 true, contradicting ≤ 1.
        assert!(s.add_clause(&[vars[0].positive()]));
        let ok = s.add_clause(&[vars[1].positive()]);
        assert!(!ok || s.solve(&[]) == SolveResult::Unsat);
    }

    #[test]
    fn weighted_pb_propagation() {
        // 3a + 2b + c >= 5 with b false forces a and c... 3+1 < 5 ⇒ conflict;
        // with c false forces a and b.
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let terms = vec![
            PbTerm::new(a.positive(), 3),
            PbTerm::new(b.positive(), 2),
            PbTerm::new(c.positive(), 1),
        ];
        assert!(s.add_pb(&terms, PbOp::Ge, 5));
        assert_eq!(s.solve(&[b.negative()]), SolveResult::Unsat);
        assert_eq!(s.solve(&[c.negative()]), SolveResult::Sat);
        assert!(s.model_value(a.positive()));
        assert!(s.model_value(b.positive()));
    }

    #[test]
    fn full_adder_pb_encoding() {
        // The paper's §5.1 example: cout ⇔ (x + y + cin ≥ 2) via two PB
        // constraints. Check all 8 input combinations by assumption.
        let mut s = Solver::new();
        let x = s.new_var();
        let y = s.new_var();
        let cin = s.new_var();
        let cout = s.new_var();
        assert!(s.add_pb(
            &[
                PbTerm::new(cout.negative(), 2),
                PbTerm::new(x.positive(), 1),
                PbTerm::new(y.positive(), 1),
                PbTerm::new(cin.positive(), 1),
            ],
            PbOp::Ge,
            2
        ));
        assert!(s.add_pb(
            &[
                PbTerm::new(cout.positive(), 2),
                PbTerm::new(x.negative(), 1),
                PbTerm::new(y.negative(), 1),
                PbTerm::new(cin.negative(), 1),
            ],
            PbOp::Ge,
            2
        ));
        for bits in 0..8u32 {
            let assumptions = [
                x.lit(bits & 1 != 0),
                y.lit(bits & 2 != 0),
                cin.lit(bits & 4 != 0),
            ];
            assert_eq!(s.solve(&assumptions), SolveResult::Sat);
            let expect = (bits & 1 != 0) as u32 + (bits & 2 != 0) as u32 + (bits & 4 != 0) as u32;
            assert_eq!(
                s.model_value(cout.positive()),
                expect >= 2,
                "bits {bits:03b}"
            );
        }
    }

    #[test]
    fn pigeonhole_4_into_3_unsat() {
        // PHP(4,3): classic small hard instance; exercises learning.
        let mut s = Solver::new();
        let mut p = vec![];
        for _ in 0..4 {
            let row: Vec<Var> = (0..3).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..3 {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_via_pb_unsat() {
        // Same pigeonhole expressed with PB cardinality constraints.
        let mut s = Solver::new();
        let mut p = vec![];
        for _ in 0..5 {
            let row: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let terms: Vec<PbTerm> = row.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
            assert!(s.add_pb(&terms, PbOp::Ge, 1));
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..4 {
            let terms: Vec<PbTerm> = p
                .iter()
                .map(|row| PbTerm::new(row[hole].positive(), 1))
                .collect();
            assert!(s.add_pb(&terms, PbOp::Le, 1));
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        let mut s = Solver::new();
        s.config.max_conflicts = Some(1);
        // A pigeonhole that needs more than one conflict.
        let mut p = vec![];
        for _ in 0..5 {
            let row: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..4 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
    }

    #[test]
    fn interrupt_leaves_solver_reusable() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;

        // An unsatisfiable pigeonhole: 5 pigeons, 4 holes.
        let mut s = Solver::new();
        let flag = Arc::new(AtomicBool::new(false));
        s.config.interrupt = Some(flag.clone());
        let mut p = vec![];
        for _ in 0..5 {
            let row: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..4 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }

        // A raised flag aborts before (and during) search…
        flag.store(true, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SolveResult::Interrupted);

        // …and once cleared the same solver finishes with the real verdict,
        // i.e. the interrupt lost no constraints and corrupted no state.
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn clear_learned_resets_the_database_and_keeps_the_solver_sound() {
        // A guarded pigeonhole (5 pigeons, 4 holes): assuming the guard
        // makes the instance UNSAT through real search, so clauses are
        // learned but the solver itself stays consistent for re-solving.
        let mut s = Solver::new();
        let g = s.new_var();
        let mut p = vec![];
        for _ in 0..5 {
            let row: Vec<Var> = (0..4).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..4 {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    s.add_clause(&[g.negative(), p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }
        assert_eq!(s.solve(&[g.positive()]), SolveResult::Unsat);
        assert!(s.num_learned() > 0, "the refutation learned clauses");

        let before = s.num_learned();
        let deleted_before = s.stats.deleted;
        let removed = s.clear_learned();
        assert!(removed > 0);
        assert_eq!(s.num_learned(), before - removed);
        assert_eq!(s.stats.deleted, deleted_before + removed as u64);

        // The reset lost no input constraints: both verdicts reproduce.
        assert_eq!(s.solve(&[g.negative()]), SolveResult::Sat);
        assert_eq!(s.solve(&[g.positive()]), SolveResult::Unsat);
    }

    #[test]
    fn clear_learned_on_a_fresh_solver_is_a_no_op() {
        let mut s = Solver::new();
        let v = s.new_var();
        s.add_clause(&[v.positive()]);
        assert_eq!(s.clear_learned(), 0);
        assert_eq!(s.num_learned(), 0);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn phase_seed_diversifies_initial_phases() {
        let mut seeded = Solver::new();
        seeded.config.phase_seed = Some(0xDEAD_BEEF);
        let mut plain = Solver::new();
        let mut phases = Vec::new();
        for _ in 0..64 {
            let v = seeded.new_var();
            plain.new_var();
            // Before any solving, saved phase == initial phase; probe it via
            // a trivially satisfiable instance below instead of private state.
            phases.push(v);
        }
        // All-default phases are uniform `false`; a seeded solver must pick a
        // mix. Solve an unconstrained instance so the model exposes phases.
        assert_eq!(seeded.solve(&[]), SolveResult::Sat);
        assert_eq!(plain.solve(&[]), SolveResult::Sat);
        let seeded_trues = phases
            .iter()
            .filter(|v| seeded.model_value(v.positive()))
            .count();
        let plain_trues = phases
            .iter()
            .filter(|v| plain.model_value(v.positive()))
            .count();
        assert_eq!(plain_trues, 0);
        assert!(seeded_trues > 8 && seeded_trues < 56);
    }

    #[test]
    fn preprocessing_removes_subsumed_and_duplicate_clauses() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        add(&mut s, &mut ids, &[1, 2]);
        add(&mut s, &mut ids, &[1, 2, 3]); // subsumed by (1 2)
        add(&mut s, &mut ids, &[1, 2]); // duplicate
        add(&mut s, &mut ids, &[-1, 4]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(
            s.stats.pp_removed >= 2,
            "expected subsumed + duplicate removal, got {}",
            s.stats.pp_removed
        );
    }

    #[test]
    fn preprocessing_self_subsuming_resolution() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        // (1 2) and (-1 2 3): resolving on 1 strengthens the second to (2 3).
        add(&mut s, &mut ids, &[1, 2]);
        add(&mut s, &mut ids, &[-1, 2, 3]);
        add(&mut s, &mut ids, &[4, 5]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(
            s.stats.pp_strengthened >= 1,
            "expected a self-subsumption strengthening, got {}",
            s.stats.pp_strengthened
        );
    }

    #[test]
    fn preprocessing_strengthening_to_unit_fixes_variable() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        // (1 2) and (-1 2) resolve to the unit (2).
        add(&mut s, &mut ids, &[1, 2]);
        add(&mut s, &mut ids, &[-1, 2]);
        add(&mut s, &mut ids, &[-2, 3]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.model_value(ids[1].positive()));
        assert!(s.model_value(ids[2].positive()));
        assert!(s.stats.pp_fixed >= 1);
    }

    #[test]
    fn preprocessing_agrees_with_unpreprocessed_solver() {
        // Random-ish 3-SAT instances: verdicts must match with the pass on
        // and off, and incremental reuse under assumptions must survive it.
        for seed in 0..20u64 {
            let mut clauses = Vec::new();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let nv = 12i32;
            for _ in 0..40 {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (next() % nv as u64) as i32 + 1;
                    let sign = if next() & 1 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let mut on = Solver::new();
            let mut off = Solver::new();
            off.config.preprocess = false;
            let (mut ids_on, mut ids_off) = (Vec::new(), Vec::new());
            for c in &clauses {
                add(&mut on, &mut ids_on, c);
                add(&mut off, &mut ids_off, c);
            }
            let (r_on, r_off) = (on.solve(&[]), off.solve(&[]));
            assert_eq!(r_on, r_off, "seed {seed}: verdicts diverge");
            if r_on == SolveResult::Sat && !ids_on.is_empty() {
                // Re-solving under an assumption must agree too.
                let a_on = on.solve(&[ids_on[0].negative()]);
                let a_off = off.solve(&[ids_off[0].negative()]);
                assert_eq!(a_on, a_off, "seed {seed}: assumption verdicts diverge");
            }
        }
    }

    #[test]
    fn preprocessing_preserves_incremental_clause_addition() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        add(&mut s, &mut ids, &[1, 2]);
        add(&mut s, &mut ids, &[1, 2, 3]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        // Clauses added after the pass ran are still honored.
        add(&mut s, &mut ids, &[-1]);
        add(&mut s, &mut ids, &[-2]);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    /// Unsatisfiable pigeonhole clauses over fresh variables.
    fn add_pigeonhole(s: &mut Solver, pigeons: usize, holes: usize) {
        let mut p = vec![];
        for _ in 0..pigeons {
            let row: Vec<Var> = (0..holes).map(|_| s.new_var()).collect();
            p.push(row);
        }
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.positive()).collect();
            s.add_clause(&lits);
        }
        #[allow(clippy::needless_range_loop)] // `hole` indexes two rows at once
        for hole in 0..holes {
            for i in 0..pigeons {
                for j in (i + 1)..pigeons {
                    s.add_clause(&[p[i][hole].negative(), p[j][hole].negative()]);
                }
            }
        }
    }

    #[test]
    fn search_engine_label_and_parse_roundtrip() {
        for e in [
            SearchEngine::full(),
            SearchEngine::legacy(),
            SearchEngine {
                binary_watches: true,
                tiered_db: false,
                restart: RestartPolicy::Ema,
                vivify: false,
                elim: false,
            },
            SearchEngine {
                binary_watches: false,
                tiered_db: false,
                restart: RestartPolicy::Luby,
                vivify: true,
                elim: true,
            },
        ] {
            let label = e.label();
            assert_eq!(label.parse::<SearchEngine>().unwrap(), e, "label {label}");
        }
        assert!("bogus".parse::<SearchEngine>().is_err());
        let mut cfg = SolverConfig::default();
        SearchEngine::legacy().configure(&mut cfg);
        assert_eq!(SearchEngine::from_config(&cfg), SearchEngine::legacy());
    }

    #[test]
    fn every_axis_combination_agrees_on_random_instances() {
        // 3-SAT with a sprinkle of binary clauses; every one of the 32 axis
        // combinations must reproduce the reference verdict, including
        // under an assumption re-solve (incremental reuse).
        for seed in 0..8u64 {
            let mut clauses = Vec::new();
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let nv = 14i32;
            for k in 0..56 {
                let width = if k % 4 == 0 { 2 } else { 3 };
                let mut c = Vec::new();
                for _ in 0..width {
                    let v = (next() % nv as u64) as i32 + 1;
                    let sign = if next() & 1 == 0 { 1 } else { -1 };
                    c.push(v * sign);
                }
                clauses.push(c);
            }
            let mut reference: Option<SolveResult> = None;
            for bits in 0..32u32 {
                let engine = SearchEngine {
                    binary_watches: bits & 1 != 0,
                    tiered_db: bits & 2 != 0,
                    restart: if bits & 4 != 0 {
                        RestartPolicy::Ema
                    } else {
                        RestartPolicy::Luby
                    },
                    vivify: bits & 8 != 0,
                    elim: bits & 16 != 0,
                };
                let mut s = Solver::new();
                engine.configure(&mut s.config);
                let mut ids = Vec::new();
                for c in &clauses {
                    add(&mut s, &mut ids, c);
                }
                let r = s.solve(&[]);
                match reference {
                    None => reference = Some(r),
                    Some(want) => assert_eq!(r, want, "seed {seed} engine {}", engine.label()),
                }
                if r == SolveResult::Sat {
                    s.debug_check_model();
                    let ra = s.solve(&[ids[0].negative()]);
                    let mut fresh = Solver::new();
                    SearchEngine::legacy().configure(&mut fresh.config);
                    let mut fids = Vec::new();
                    for c in &clauses {
                        add(&mut fresh, &mut fids, c);
                    }
                    let want = fresh.solve(&[fids[0].negative()]);
                    assert_eq!(ra, want, "seed {seed} engine {} assumption", engine.label());
                }
            }
        }
    }

    #[test]
    fn ema_restarts_are_deterministic_and_counted() {
        let run = || {
            let mut s = Solver::new();
            s.config.restart_policy = RestartPolicy::Ema;
            add_pigeonhole(&mut s, 7, 6);
            assert_eq!(s.solve(&[]), SolveResult::Unsat);
            (
                s.stats.conflicts,
                s.stats.decisions,
                s.stats.propagations,
                s.stats.restarts,
                s.stats.restarts_ema,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "bit-identical replay");
        assert!(a.4 > 0, "EMA restarts fired");
        assert_eq!(a.3, a.4, "all restarts attributed to the EMA policy");
    }

    #[test]
    fn luby_policy_attributes_restarts() {
        let mut s = Solver::new();
        s.config.restart_policy = RestartPolicy::Luby;
        s.config.restart_unit = 10;
        add_pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(s.stats.restarts_luby > 0);
        assert_eq!(s.stats.restarts, s.stats.restarts_luby);
        assert_eq!(s.stats.restarts_ema, 0);
    }

    #[test]
    fn tiered_db_populates_tier_gauges() {
        let mut s = Solver::new();
        s.config.tiered_db = true;
        add_pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let total = s.stats.tier_core + s.stats.tier_mid + s.stats.tier_local;
        assert_eq!(total, s.num_learned() as u64);
        assert!(s.stats.peak_learnts > 0);
        assert!(s.stats.peak_learnts >= total);
    }

    #[test]
    fn binary_clauses_use_dedicated_lists() {
        let mut s = Solver::new();
        assert!(s.config.binary_watches);
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        assert_eq!(s.bin_watches.iter().map(Vec::len).sum::<usize>(), 4);
        assert_eq!(s.watches.iter().map(Vec::len).sum::<usize>(), 2);
        // The implication chain propagates through the binary lists.
        assert_eq!(s.solve(&[a.positive()]), SolveResult::Sat);
        assert!(s.model_value(c.positive()));
    }

    #[test]
    fn vivify_round_strengthens_and_keeps_proof_checkable() {
        let mut s = Solver::new();
        s.config.proof = true;
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        let x = s.new_var();
        s.add_clause(&[a.negative(), b.positive()]);
        s.add_clause(&[b.negative(), c.positive()]);
        // Inject (¬a ∨ c ∨ x) as a kept learned clause: it is implied by
        // the chain above, and asserting `a` propagates `c` true, so
        // vivification must truncate it to (¬a ∨ c).
        let lemma = vec![a.negative(), c.positive(), x.positive()];
        let cref = s.db.alloc(&lemma, true);
        s.db.set_lbd(cref, 3);
        s.db.set_tier(cref, Tier::Mid);
        s.attach(cref);
        s.learnts.push(cref);

        s.vivify_round();
        assert_eq!(s.stats.vivified, 1);
        assert_eq!(s.stats.vivify_lits_removed, 1);
        assert_eq!(s.num_learned(), 1);
        let kept = s.learnts[0];
        assert_eq!(s.db.lits(kept), &[a.negative(), c.positive()][..]);
        assert!(s.db.is_vivified(kept));

        // The trace stays checkable and the solver stays sound.
        assert_eq!(s.solve(&[a.positive()]), SolveResult::Sat);
        assert!(s.model_value(c.positive()));
        let log = s.take_proof().expect("proof recorded");
        let checked = crate::drat::check_proof(&log).expect("vivified clause is RUP");
        assert!(checked.adds_verified >= 1);
        // The injected lemma was never Add-ed to the trace, so its delete is
        // the checker's lenient "ignored" kind.
        assert!(checked.deletions + checked.ignored_deletions >= 1);
    }

    #[test]
    fn vivify_round_skips_clauses_it_cannot_improve() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        let c = s.new_var();
        s.add_clause(&[a.positive(), b.positive(), c.positive()]);
        // An irredundant lemma over independent variables: nothing to cut.
        let lemma = vec![a.negative(), b.negative(), c.negative()];
        let cref = s.db.alloc(&lemma, true);
        s.db.set_lbd(cref, 3);
        s.db.set_tier(cref, Tier::Core);
        s.attach(cref);
        s.learnts.push(cref);
        s.vivify_round();
        assert_eq!(s.stats.vivified, 0);
        assert!(s.db.is_vivified(cref), "examined once, never re-examined");
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn garbage_collection_reclaims_watch_capacity() {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..6).map(|_| s.new_var()).collect();
        // Grow one watch list far past its steady-state size with learned
        // clauses, then delete them all: the GC shrink must release bytes.
        for i in 0..200 {
            let lits = vec![
                vars[0].positive(),
                vars[1 + (i % 4)].positive(),
                vars[5].lit(i % 2 == 0),
            ];
            let cref = s.db.alloc(&lits, true);
            s.attach(cref);
            s.learnts.push(cref);
        }
        assert_eq!(s.clear_learned(), 200);
        assert!(
            s.stats.watch_bytes_reclaimed > 0,
            "oversized watch lists were shrunk"
        );
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn stats_are_populated() {
        let mut s = Solver::new();
        let mut ids = Vec::new();
        for i in 1..=6 {
            add(&mut s, &mut ids, &[i, -(i % 6 + 1)]);
        }
        add(&mut s, &mut ids, &[1, 2, 3]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.num_vars() == 6);
        assert!(s.num_literals() > 0);
        assert!(s.num_constraints() == 7);
    }
}
