//! Metamorphic fuzzing campaigns against the allocation pipeline.
//!
//! ```text
//! optalloc-fuzz campaign [--seed N] [--iters N] [--time-secs N] [--checked]
//!                        [--relations a,b,...] [--max-tasks N]
//!                        [--regressions DIR] [--corpus FILE]
//!                        [--max-violations N] [--summary FILE] [--quiet]
//! optalloc-fuzz replay <seed> [--checked] [--relations a,b,...]
//!                      [--max-tasks N]
//! ```
//!
//! `campaign` generates instances from a master seed and checks every
//! requested metamorphic relation on each; violations are shrunk to
//! minimal reproducers, persisted under `--regressions`, and the run exits
//! nonzero. `replay` re-runs all relations on the single instance a seed
//! denotes — the loop is: campaign fails in CI, replay the reported seed
//! locally, debug against the shrunk regression file.

use optalloc_testkit::campaign::{replay, run_campaign, CampaignConfig};
use optalloc_testkit::gen::GenConfig;
use optalloc_testkit::relations::RelationKind;
use std::process::ExitCode;
use std::time::Duration;

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}");
    eprintln!(
        "usage: optalloc-fuzz campaign [--seed N] [--iters N] [--time-secs N] [--checked]\n\
         \x20                             [--relations a,b,...] [--max-tasks N]\n\
         \x20                             [--regressions DIR] [--corpus FILE]\n\
         \x20                             [--max-violations N] [--summary FILE] [--quiet]\n\
         \x20      optalloc-fuzz replay <seed> [--checked] [--relations a,b,...] [--max-tasks N]"
    );
    ExitCode::from(2)
}

fn parse_relations(arg: &str) -> Result<Vec<RelationKind>, String> {
    if arg == "all" {
        return Ok(RelationKind::all());
    }
    arg.split(',')
        .map(|name| {
            RelationKind::parse(name.trim()).ok_or_else(|| {
                let known: Vec<&str> = RelationKind::all().iter().map(|r| r.name()).collect();
                format!("unknown relation '{name}' (known: {})", known.join(", "))
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage("missing command");
    };
    match command.as_str() {
        "campaign" => run_campaign_cmd(&args[1..]),
        "replay" => run_replay_cmd(&args[1..]),
        other => usage(&format!("unknown command '{other}'")),
    }
}

/// Pulls the value of `--flag value`; `None` if absent, `Err` if dangling.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v)),
            None => Err(format!("{flag} needs a value")),
        },
        None => Ok(None),
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad value '{v}' for {flag}"))
}

fn run_campaign_cmd(args: &[String]) -> ExitCode {
    let mut cfg = CampaignConfig {
        iterations: 500,
        regressions_dir: Some("tests/regressions".into()),
        ..CampaignConfig::default()
    };
    let mut summary_file: Option<String> = None;
    let quiet = args.iter().any(|a| a == "--quiet");
    cfg.paranoid = args.iter().any(|a| a == "--checked");

    let parsed = (|| -> Result<(), String> {
        if let Some(v) = flag_value(args, "--seed")? {
            cfg.seed = parse_num(v, "--seed")?;
        }
        if let Some(v) = flag_value(args, "--iters")? {
            cfg.iterations = parse_num(v, "--iters")?;
        }
        if let Some(v) = flag_value(args, "--time-secs")? {
            cfg.time_limit = Some(Duration::from_secs(parse_num(v, "--time-secs")?));
        }
        if let Some(v) = flag_value(args, "--relations")? {
            cfg.relations = parse_relations(v)?;
        }
        if let Some(v) = flag_value(args, "--max-tasks")? {
            cfg.gen = GenConfig {
                max_tasks: parse_num(v, "--max-tasks")?,
                ..cfg.gen
            };
        }
        if let Some(v) = flag_value(args, "--regressions")? {
            cfg.regressions_dir = if v == "none" { None } else { Some(v.into()) };
        }
        if let Some(v) = flag_value(args, "--corpus")? {
            cfg.corpus_file = Some(v.into());
        }
        if let Some(v) = flag_value(args, "--max-violations")? {
            cfg.max_violations = parse_num(v, "--max-violations")?;
        }
        summary_file = flag_value(args, "--summary")?.map(String::from);
        Ok(())
    })();
    if let Err(e) = parsed {
        return usage(&e);
    }

    if !quiet {
        eprintln!(
            "campaign: seed {} / {} iterations / relations [{}]{}",
            cfg.seed,
            cfg.iterations,
            cfg.relations
                .iter()
                .map(|r| r.name())
                .collect::<Vec<_>>()
                .join(", "),
            if cfg.paranoid { " / checked mode" } else { "" }
        );
    }
    let summary = run_campaign(&cfg, |line| {
        if !quiet {
            eprintln!("{line}");
        }
    });
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    match &summary_file {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: could not write summary to {path}: {e}");
                return ExitCode::from(2);
            }
            if !quiet {
                eprintln!("summary written to {path}");
            }
        }
        None => println!("{json}"),
    }
    if summary.clean() {
        if !quiet {
            eprintln!(
                "clean: {} iterations, {} checks passed, {} skipped, {} ms",
                summary.iterations_run,
                summary.checks_passed,
                summary.checks_skipped,
                summary.wall_ms
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FOUND {} violation(s); replay with `optalloc-fuzz replay <seed>`",
            summary.violations.len()
        );
        ExitCode::FAILURE
    }
}

fn run_replay_cmd(args: &[String]) -> ExitCode {
    let Some(seed_arg) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage("replay needs a seed");
    };
    let seed: u64 = match seed_arg.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => seed_arg.parse(),
    }
    .unwrap_or_else(|_| {
        eprintln!("error: bad seed '{seed_arg}'");
        std::process::exit(2)
    });
    let paranoid = args.iter().any(|a| a == "--checked");
    let mut relations = RelationKind::all();
    let mut gen = GenConfig::default();
    let parsed = (|| -> Result<(), String> {
        if let Some(v) = flag_value(args, "--relations")? {
            relations = parse_relations(v)?;
        }
        if let Some(v) = flag_value(args, "--max-tasks")? {
            gen.max_tasks = parse_num(v, "--max-tasks")?;
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        return usage(&e);
    }

    let verdicts = replay(seed, &gen, &relations, paranoid);
    let mut failed = false;
    for (kind, verdict) in &verdicts {
        match verdict {
            Ok(true) => eprintln!("{:>11}: ok", kind.name()),
            Ok(false) => eprintln!("{:>11}: skipped (budget)", kind.name()),
            Err(msg) => {
                failed = true;
                eprintln!("{:>11}: VIOLATION: {msg}", kind.name());
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
