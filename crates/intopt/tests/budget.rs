//! Budgeted-solving behavior: the conflict budget must degrade gracefully
//! into `Unknown` verdicts with usable incumbents, never wrong answers.

use optalloc_intopt::{Backend, BinSearchMode, IntProblem, MinimizeOptions, MinimizeStatus};

/// A moderately hard optimization instance: magic-square-ish constraints.
fn hard_instance() -> (IntProblem, optalloc_intopt::IntVar) {
    let mut p = IntProblem::new();
    let n = 9;
    let xs: Vec<_> = (0..n).map(|_| p.int_var(1, 9)).collect();
    // All distinct (pairwise ≠).
    for i in 0..n {
        for j in (i + 1)..n {
            p.assert(xs[i].expr().ne(xs[j].expr()));
        }
    }
    // Rows sum to 15.
    for row in xs.chunks(3) {
        let sum = row
            .iter()
            .fold(optalloc_intopt::IntExpr::constant(0), |a, v| a + v.expr());
        p.assert(sum.eq(15));
    }
    // Minimize the top-left corner.
    let cost = p.int_var(0, 9);
    p.assert(cost.expr().eq(xs[0].expr()));
    (p, cost)
}

#[test]
fn unlimited_budget_finds_true_optimum() {
    let (p, cost) = hard_instance();
    let out = p.minimize(cost, &MinimizeOptions::default());
    match out.status {
        // Rows of distinct 1..9 summing to 15 exist with corner 1, e.g.
        // (1,5,9),(2,6,7),(3,4,8).
        MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 1),
        ref s => panic!("unexpected {s:?}"),
    }
}

#[test]
fn tiny_budget_yields_unknown_not_wrong_answers() {
    let (p, cost) = hard_instance();
    for mode in [BinSearchMode::Fresh, BinSearchMode::Incremental] {
        let out = p.minimize(
            cost,
            &MinimizeOptions {
                mode,
                max_conflicts: Some(1),
                ..Default::default()
            },
        );
        match out.status {
            MinimizeStatus::Unknown { incumbent } => {
                // Any incumbent returned must satisfy the constraints.
                if let Some((value, model)) = incumbent {
                    assert!((1..=9).contains(&value));
                    let _ = model;
                }
            }
            // With enough luck the first probes may finish under budget;
            // then the answer must still be the true optimum.
            MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 1, "{mode:?}"),
            MinimizeStatus::Infeasible => panic!("{mode:?}: instance is feasible"),
            // No interrupt flag or shared bound is configured here.
            ref s => panic!("{mode:?}: unexpected {s:?}"),
        }
    }
}

#[test]
fn medium_budget_incumbent_is_valid_upper_bound() {
    let (p, cost) = hard_instance();
    let out = p.minimize(
        cost,
        &MinimizeOptions {
            max_conflicts: Some(200),
            ..Default::default()
        },
    );
    match out.status {
        MinimizeStatus::Unknown {
            incumbent: Some((value, _)),
        } => {
            assert!(value >= 1, "incumbent below true optimum");
        }
        MinimizeStatus::Unknown { incumbent: None } => {}
        MinimizeStatus::Optimal { value, .. } => assert_eq!(value, 1),
        MinimizeStatus::Infeasible => panic!("feasible instance"),
        // No interrupt flag or shared bound is configured here.
        ref s => panic!("unexpected {s:?}"),
    }
}

#[test]
fn budgeted_solve_reports_err_on_abort() {
    let (p, _) = hard_instance();
    // With a 1-conflict budget plain solving must abort (Err), not claim
    // UNSAT.
    match p.solve_with_budget(Backend::PseudoBoolean, Some(1)) {
        Err(()) => {}
        Ok(Some(_)) => {} // solved within one conflict — acceptable
        Ok(None) => panic!("budget abort misreported as UNSAT"),
    }
}
