#![allow(clippy::all)] // vendored stub — lint-exempt

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of the `rand` API
//! surface it actually uses: [`rngs::SmallRng`], [`SeedableRng`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid for test-case generation and benchmarking, deterministic for a
//! fixed seed on every platform. It is **not** the upstream `SmallRng`
//! stream: seeds produce different (but equally well-distributed) sequences
//! than the real crate would.

use std::ops::{Range, RangeInclusive};

/// Core pseudo-random generator interface (subset of `rand_core`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience sampling methods (subset of the `Rng` extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator: xoshiro256++ with splitmix64 seeding.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000u64), b.gen_range(0..1000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..1000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((350..650).contains(&hits), "suspicious bias: {hits}");
    }
}
