//! Warm-started re-solving: the paper's §7 "reuse of derived facts"
//! extended *across* optimization requests.
//!
//! A [`WarmEngine`] is a long-lived minimizer. Each call to
//! [`WarmEngine::solve`] runs the `BIN_SEARCH` scheme of
//! [`crate::binsearch`] over a [`CostProber`], but unlike the one-shot
//! entry points it retains state between calls and picks the cheapest
//! sound reuse level for the next request:
//!
//! * [`WarmMode::Reused`] — the request's problem is **structurally
//!   identical** to the retained prober's (see
//!   [`IntProblem::structurally_eq`]): the encoding *and every learned
//!   clause* carry over, and only the cost windows are re-probed. This is
//!   the only mode in which SAT-level facts survive, and it is gated
//!   exactly on structural identity: learned clauses are logical
//!   consequences of the encoded formula, so any change to the formula —
//!   a WCET constant, a deadline, an added task — invalidates them.
//! * [`WarmMode::Seeded`] — the problem changed, so the engine re-encodes
//!   from scratch, but it still carries over *validated hints* from the
//!   previous optimum: the first probe is bounded by the old optimum
//!   (falling back to an unbounded probe if the hint is infeasible, exactly
//!   like [`MinimizeOptions::initial_upper`]), and the first bisection
//!   probes `[lo, incumbent − 1]` to confirm an unchanged optimum in a
//!   single refutation. Both hints are *probed, never assumed*, so a wrong
//!   hint can cost time but never an incorrect optimum.
//! * [`WarmMode::Cold`] — no previous state; plain `BIN_SEARCH`.
//!
//! Certification composes with warm starts, with one restriction: a
//! retained prober's proof trace was drained by the previous certificate
//! assembly ([`CostProber::take_proof`] is draining), so a second search on
//! the same prober could not produce a self-contained DRAT certificate.
//! Under [`MinimizeOptions::certify`] the engine therefore *never* retains
//! a prober — every request is re-encoded fresh and only the seed hints
//! carry over, which keeps every emitted certificate independently
//! checkable. The optimum is unaffected (hints are validated), only the
//! reuse level degrades; the warm == cold property tests exercise exactly
//! this path.

use crate::binsearch::{MinimizeOptions, MinimizeOutcome, MinimizeStatus};
use crate::certificate::Certificate;
use crate::prober::{CostProber, Probe};
use crate::problem::IntProblem;
use crate::IntVar;

/// How much prior work a [`WarmEngine::solve`] call was able to reuse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WarmMode {
    /// No retained state: a plain cold `BIN_SEARCH`.
    Cold,
    /// Re-encoded from scratch, seeded with the previous optimum as a
    /// validated upper-bound hint and first-bisection target.
    Seeded {
        /// The previous optimum used as the hint.
        hint: i64,
    },
    /// The retained prober (encoding + learned clauses) was reused whole;
    /// only new cost windows were probed.
    Reused {
        /// The previous optimum used as the hint (`None` when the retained
        /// run never reached one — interrupted or infeasible).
        hint: Option<i64>,
        /// Learned clauses carried into this solve.
        learned: usize,
    },
}

impl WarmMode {
    /// Short lowercase label (`"cold"`, `"seeded"`, `"reused"`) for logs
    /// and machine-readable responses.
    pub fn label(&self) -> &'static str {
        match self {
            WarmMode::Cold => "cold",
            WarmMode::Seeded { .. } => "seeded",
            WarmMode::Reused { .. } => "reused",
        }
    }
}

struct WarmState {
    prober: CostProber<'static>,
    last_optimum: Option<i64>,
}

/// A long-lived minimizer that carries encodings, learned clauses and
/// bound hints across requests (see the module docs).
pub struct WarmEngine {
    opts: MinimizeOptions,
    /// Learned-clause retention budget: a retained prober holding more
    /// than this many learned clauses is reset (the clauses are dropped,
    /// the encoding kept) before reuse.
    max_retained: usize,
    state: Option<WarmState>,
}

impl std::fmt::Debug for WarmEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmEngine")
            .field("max_retained", &self.max_retained)
            .field("retained", &self.state.is_some())
            .field("last_optimum", &self.last_optimum())
            .finish()
    }
}

impl WarmEngine {
    /// An engine with no retained state yet. The options — including the
    /// cooperative [`optalloc_sat::SolverConfig::interrupt`] flag, which a
    /// service resets (rather than replaces) between jobs so it reaches
    /// the retained solver — are fixed for the engine's lifetime.
    pub fn new(opts: MinimizeOptions) -> WarmEngine {
        WarmEngine {
            opts,
            max_retained: 100_000,
            state: None,
        }
    }

    /// Overrides the learned-clause retention budget (builder style).
    pub fn with_retention(mut self, max_retained: usize) -> WarmEngine {
        self.max_retained = max_retained;
        self
    }

    /// The engine's minimize options.
    pub fn options(&self) -> &MinimizeOptions {
        &self.opts
    }

    /// The optimum of the most recent successful solve, if any — the seed
    /// for the next request's hints.
    pub fn last_optimum(&self) -> Option<i64> {
        self.state.as_ref().and_then(|s| s.last_optimum)
    }

    /// Learned clauses currently held by the retained prober, if one is
    /// retained.
    pub fn retained_learned(&self) -> Option<usize> {
        self.state.as_ref().map(|s| s.prober.num_learned())
    }

    /// Drops all retained state; the next solve is [`WarmMode::Cold`].
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Minimizes `cost` over `problem`, reusing as much prior state as is
    /// sound (see the module docs for the mode ladder).
    pub fn solve(&mut self, problem: &IntProblem, cost: IntVar) -> (MinimizeOutcome, WarmMode) {
        self.solve_bounded(problem, cost, None)
    }

    /// Like [`solve`](WarmEngine::solve) but restricted to the cost window
    /// `lo ≤ cost ≤ hi` (clamped to the variable's declared range) — the
    /// cost-bound delta of a re-solve request. [`MinimizeStatus::Infeasible`]
    /// then means *no solution within the window*; any certificate's
    /// coverage starts at the clamped window lower end.
    pub fn solve_window(
        &mut self,
        problem: &IntProblem,
        cost: IntVar,
        lo: i64,
        hi: i64,
    ) -> (MinimizeOutcome, WarmMode) {
        self.solve_bounded(problem, cost, Some((lo, hi)))
    }

    fn solve_bounded(
        &mut self,
        problem: &IntProblem,
        cost: IntVar,
        window: Option<(i64, i64)>,
    ) -> (MinimizeOutcome, WarmMode) {
        let hint = self.last_optimum();
        // Learned clauses only survive when the formula is unchanged —
        // and never under certification (the retained trace was drained).
        let reusable = !self.opts.certify
            && self.state.as_ref().is_some_and(|s| {
                s.prober.cost() == cost && s.prober.problem().structurally_eq(problem)
            });
        let (mut prober, mode) = if reusable {
            let state = self.state.take().unwrap();
            let mut prober = state.prober;
            if prober.num_learned() > self.max_retained {
                prober.clear_learned();
            }
            let learned = prober.num_learned();
            (prober, WarmMode::Reused { hint, learned })
        } else {
            self.state = None;
            let prober = CostProber::new_owned(problem.clone(), cost, &self.opts);
            let mode = match hint {
                Some(h) => WarmMode::Seeded { hint: h },
                None => WarmMode::Cold,
            };
            (prober, mode)
        };

        let outcome = search(&mut prober, &self.opts, hint, window);

        if !self.opts.certify {
            let last_optimum = match &outcome.status {
                MinimizeStatus::Optimal { value, .. } => Some(*value),
                MinimizeStatus::ExternalOptimal { value } => Some(*value),
                _ => hint,
            };
            self.state = Some(WarmState {
                prober,
                last_optimum,
            });
        }
        (outcome, mode)
    }
}

/// One `BIN_SEARCH` run over an already-encoded prober, with optional
/// hint-guided first probes and an optional hard cost window. Mirrors
/// `minimize_incremental` (same lattice folds, same `L := M + 1` fix) but
/// reports per-run statistics — a reused prober's counters are cumulative,
/// so the outcome is the delta against the entry snapshot.
fn search(
    prober: &mut CostProber<'static>,
    opts: &MinimizeOptions,
    hint: Option<i64>,
    window: Option<(i64, i64)>,
) -> MinimizeOutcome {
    let cost = prober.cost();
    let (base_lo, base_hi) = match window {
        Some((lo, hi)) => (lo.max(cost.lo), hi.min(cost.hi)),
        None => (cost.lo, cost.hi),
    };
    let stats_base = prober.stats().clone();
    let calls_base = prober.solve_calls();
    let encode_ms_base = prober.encode().encode_ms;

    let mut outcome = MinimizeOutcome {
        status: MinimizeStatus::Infeasible,
        solve_calls: 0,
        encode: prober.encode(),
        stats: optalloc_sat::SolverStats::default(),
        proofs: Vec::new(),
        certificate: None,
    };
    let finish = |mut o: MinimizeOutcome, prober: &mut CostProber<'static>| {
        o.solve_calls = prober.solve_calls() - calls_base;
        o.stats = prober.stats().delta_since(&stats_base);
        o.encode = prober.encode();
        o.encode.encode_ms -= encode_ms_base;
        if let Some(proof) = prober.take_proof() {
            o.proofs.push(proof);
        }
        if opts.certify {
            if let MinimizeStatus::Optimal { value, model } = &o.status {
                o.certificate = Some(Certificate {
                    optimum: *value,
                    cost_lo: base_lo,
                    witness: model.clone(),
                    proofs: o.proofs.clone(),
                });
            }
        }
        o
    };

    if prober.trivially_unsat() || base_lo > base_hi {
        return finish(outcome, prober);
    }

    // First probe: bounded by the validated hint when one is available and
    // it intersects the window; infeasible hints fall back to the full
    // range (probing the whole window, or the unbounded problem when no
    // window was requested — windowed UNSAT means infeasible-in-window).
    let full_probe = |prober: &mut CostProber<'static>| match window {
        Some(_) => prober.probe(Some((base_lo, base_hi))),
        None => prober.probe(None),
    };
    let first = match hint.filter(|&h| h >= base_lo) {
        Some(h) => match prober.probe(Some((base_lo, h.min(base_hi)))) {
            Probe::Unsat if h < base_hi => full_probe(prober),
            r => r,
        },
        None => full_probe(prober),
    };
    let (mut best_value, mut best_model) = match first {
        Probe::Unsat => return finish(outcome, prober),
        Probe::Unknown => {
            outcome.status = MinimizeStatus::Unknown { incumbent: None };
            return finish(outcome, prober);
        }
        Probe::Interrupted => {
            outcome.status = MinimizeStatus::Interrupted { incumbent: None };
            return finish(outcome, prober);
        }
        Probe::Sat { value, model } => (value, model),
    };
    opts.publish(best_value, &best_model);
    let mut lower = base_lo;
    let mut upper = best_value;
    // With a hint, spend the first bisection confirming the incumbent:
    // probe [L, incumbent − 1], whose UNSAT closes an unchanged optimum in
    // one step instead of log₂(range) halvings.
    let mut confirm_first = hint.is_some();

    let external = loop {
        let external = opts.external_upper();
        let proven_hi = upper.min(external);
        lower = lower.max(opts.external_lower());
        if lower >= proven_hi {
            break external;
        }
        let mid = if std::mem::take(&mut confirm_first) {
            proven_hi - 1
        } else {
            lower + (proven_hi - lower) / 2
        };
        match prober.probe(Some((lower, mid))) {
            Probe::Sat { value: k, model } => {
                debug_assert!(k >= lower && k <= mid);
                best_value = k;
                best_model = model;
                opts.publish(best_value, &best_model);
                upper = k;
            }
            Probe::Unsat => {
                // UNSAT over [L, M] proves the optimum exceeds M (the
                // paper's misprinted `L := M` never terminates).
                lower = mid + 1;
                opts.publish_lower(lower);
            }
            Probe::Unknown => {
                outcome.status = MinimizeStatus::Unknown {
                    incumbent: Some((best_value, best_model)),
                };
                return finish(outcome, prober);
            }
            Probe::Interrupted => {
                outcome.status = MinimizeStatus::Interrupted {
                    incumbent: Some((best_value, best_model)),
                };
                return finish(outcome, prober);
            }
        }
    };

    outcome.status = if upper <= external {
        MinimizeStatus::Optimal {
            value: best_value,
            model: best_model,
        }
    } else {
        MinimizeStatus::ExternalOptimal { value: external }
    };
    finish(outcome, prober)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::BinSearchMode;

    /// min cost = x + y  s.t.  x + y ≥ floor,  x ≥ xmin. Optimum = floor
    /// (for xmin ≤ floor). Rebuilt from scratch per call so two calls with
    /// equal parameters are structurally equal but share no Arc nodes.
    fn floor_problem(floor: i64, xmin: i64) -> (IntProblem, IntVar) {
        let mut p = IntProblem::new();
        let x = p.int_var(0, 60);
        let y = p.int_var(0, 60);
        let cost = p.int_var(0, 120);
        p.assert((x.expr() + y.expr()).ge(floor));
        p.assert(x.expr().ge(xmin));
        p.assert(cost.expr().eq(x.expr() + y.expr()));
        (p, cost)
    }

    fn optimum(out: &MinimizeOutcome) -> i64 {
        match &out.status {
            MinimizeStatus::Optimal { value, .. } => *value,
            s => panic!("expected Optimal, got {s:?}"),
        }
    }

    #[test]
    fn structural_equality_gates_reuse() {
        let (a, _) = floor_problem(9, 2);
        let (b, _) = floor_problem(9, 2);
        let (c, _) = floor_problem(10, 2);
        assert!(a.structurally_eq(&b), "independently built copies match");
        assert!(!a.structurally_eq(&c), "changed constant must not match");
    }

    #[test]
    fn modes_ladder_cold_reused_seeded() {
        let mut engine = WarmEngine::new(MinimizeOptions::default());

        let (p1, c1) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p1, c1);
        assert_eq!(mode, WarmMode::Cold);
        assert_eq!(optimum(&out), 9);

        // Same problem, rebuilt: full prober reuse, hinted at 9.
        let (p2, c2) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p2, c2);
        assert!(
            matches!(mode, WarmMode::Reused { hint: Some(9), .. }),
            "got {mode:?}"
        );
        assert_eq!(optimum(&out), 9);
        // Unchanged optimum resolves in two probes: SAT at ≤ 9, then the
        // confirming refutation of [0, 8].
        assert_eq!(out.solve_calls, 2);

        // Mutated problem: encoding invalidated, seeds carry over.
        let (p3, c3) = floor_problem(11, 2);
        let (out, mode) = engine.solve(&p3, c3);
        assert!(matches!(mode, WarmMode::Seeded { hint: 9 }), "got {mode:?}");
        assert_eq!(optimum(&out), 11);
    }

    #[test]
    fn warm_equals_cold_across_a_mutation_chain() {
        let mut engine = WarmEngine::new(MinimizeOptions::default());
        for (floor, xmin) in [(9, 2), (9, 2), (12, 2), (12, 7), (3, 0), (9, 2)] {
            let (p, cost) = floor_problem(floor, xmin);
            let (warm, _) = engine.solve(&p, cost);
            let cold = p.minimize(cost, &MinimizeOptions::default());
            assert_eq!(
                optimum(&warm),
                optimum(&cold),
                "warm diverged from cold at floor={floor} xmin={xmin}"
            );
        }
    }

    #[test]
    fn certify_never_retains_the_prober() {
        let opts = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        let mut engine = WarmEngine::new(opts);
        let (p1, c1) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p1, c1);
        assert_eq!(mode, WarmMode::Cold);
        out.certificate
            .as_ref()
            .expect("certificate on optimal")
            .verify()
            .expect("self-contained certificate");

        // A certified engine holds no prober, so the next call must not be
        // Reused — and its certificate must again verify standalone.
        assert!(engine.retained_learned().is_none());
        let (p2, c2) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p2, c2);
        assert_eq!(mode, WarmMode::Cold, "no state retained under certify");
        assert_eq!(optimum(&out), 9);
        out.certificate
            .as_ref()
            .expect("certificate on optimal")
            .verify()
            .expect("second certificate is self-contained too");
    }

    #[test]
    fn window_solves_report_infeasible_in_window() {
        let mut engine = WarmEngine::new(MinimizeOptions::default());
        let (p, cost) = floor_problem(9, 2);

        // Below the optimum: infeasible within the window…
        let (out, _) = engine.solve_window(&p, cost, 0, 5);
        assert!(matches!(out.status, MinimizeStatus::Infeasible));

        // …and the state survives for a successful re-solve.
        let (out, mode) = engine.solve_window(&p, cost, 0, 50);
        assert!(matches!(mode, WarmMode::Reused { .. }));
        assert_eq!(optimum(&out), 9);

        // A window cutting in from below raises the reported optimum.
        let (out, _) = engine.solve_window(&p, cost, 20, 50);
        assert_eq!(optimum(&out), 20);

        // Inverted window: vacuous, no probes.
        let (out, _) = engine.solve_window(&p, cost, 50, 20);
        assert!(matches!(out.status, MinimizeStatus::Infeasible));
        assert_eq!(out.solve_calls, 0);
    }

    #[test]
    fn windowed_certificates_anchor_coverage_at_the_window() {
        let opts = MinimizeOptions {
            certify: true,
            ..MinimizeOptions::default()
        };
        let mut engine = WarmEngine::new(opts);
        let (p, cost) = floor_problem(9, 2);
        let (out, _) = engine.solve_window(&p, cost, 4, 80);
        assert_eq!(optimum(&out), 9);
        let cert = out.certificate.as_ref().expect("certified window solve");
        assert_eq!(cert.cost_lo, 4, "coverage starts at the window");
        cert.verify().expect("windowed certificate verifies");
    }

    #[test]
    fn retention_budget_clears_learned_clauses() {
        let mut engine = WarmEngine::new(MinimizeOptions::default()).with_retention(0);
        let (p1, c1) = floor_problem(9, 2);
        engine.solve(&p1, c1);
        let (p2, c2) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p2, c2);
        // With a zero budget the reused prober enters the search with an
        // empty learned DB.
        assert!(
            matches!(mode, WarmMode::Reused { learned: 0, .. }),
            "got {mode:?}"
        );
        assert_eq!(optimum(&out), 9);
    }

    #[test]
    fn per_run_stats_are_deltas_not_cumulative() {
        let mut engine = WarmEngine::new(MinimizeOptions::default());
        let (p1, c1) = floor_problem(9, 2);
        let (first, _) = engine.solve(&p1, c1);
        let (p2, c2) = floor_problem(9, 2);
        let (second, _) = engine.solve(&p2, c2);
        // The reused run answers in 2 probes; cumulative counters would
        // report first.solve_calls + 2.
        assert_eq!(second.solve_calls, 2);
        assert!(first.solve_calls >= 2);
    }

    #[test]
    fn infeasible_problems_do_not_poison_the_hint() {
        let mut engine = WarmEngine::new(MinimizeOptions::default());
        let mut p = IntProblem::new();
        let x = p.int_var(0, 5);
        let cost = p.int_var(0, 5);
        p.assert(x.expr().ge(7)); // impossible
        p.assert(cost.expr().eq(x.expr()));
        let (out, _) = engine.solve(&p, cost);
        assert!(matches!(out.status, MinimizeStatus::Infeasible));
        assert_eq!(engine.last_optimum(), None);

        // A feasible follow-up on a different problem has no optimum to
        // seed from: it must run cold (never Seeded with a stale hint).
        let (p2, c2) = floor_problem(9, 2);
        let (out, mode) = engine.solve(&p2, c2);
        assert_eq!(mode, WarmMode::Cold);
        assert_eq!(optimum(&out), 9);
    }

    #[test]
    fn fresh_mode_options_still_search_incrementally_here() {
        // The engine always drives a CostProber (incremental); a Fresh
        // mode request in the options must not change the optimum.
        let opts = MinimizeOptions {
            mode: BinSearchMode::Fresh,
            ..MinimizeOptions::default()
        };
        let mut engine = WarmEngine::new(opts);
        let (p, cost) = floor_problem(9, 2);
        let (out, _) = engine.solve(&p, cost);
        assert_eq!(optimum(&out), 9);
    }
}
