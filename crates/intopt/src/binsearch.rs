//! The `BIN_SEARCH` optimization scheme (paper §5.2).
//!
//! `SOLVE(φ)` returns the cost value of *some* satisfying assignment, or −1
//! when unsatisfiable; binary search over the cost range then converges on
//! the optimum:
//!
//! ```text
//! L := cost.lo ;  R := SOLVE(φ)
//! while (L < R) do
//!     M := (L + R) div 2
//!     K := SOLVE(φ ∧ cost ≥ L ∧ cost ≤ M)
//!     if (K = −1) then L := M + 1 else R := K
//! done
//! ```
//!
//! (The paper prints `L := M` in the UNSAT branch, which fails to terminate
//! for `R = L + 1`; the intended update is `L := M + 1` — UNSAT in `[L, M]`
//! proves the optimum exceeds `M`.)
//!
//! Two modes are provided:
//!
//! * [`BinSearchMode::Fresh`] — every `SOLVE` builds a new solver and
//!   re-encodes the constraints with the bounds asserted hard. This is the
//!   paper's baseline formulation.
//! * [`BinSearchMode::Incremental`] — one solver instance; bounds enter as
//!   *guard literals* passed as assumptions, so every learned clause
//!   persists across the whole search. This is the paper's §7 extension,
//!   reported to give ≥2× speedups.

use crate::blast::{blast, Backend};
use crate::problem::{IntProblem, Model};
use crate::IntVar;
use optalloc_sat::{SolveResult, Solver, SolverStats};

/// How the sequence of `SOLVE` calls shares work.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinSearchMode {
    /// Re-encode and solve from scratch for every probe (paper baseline).
    Fresh,
    /// One incremental solver; learned clauses persist (paper §7).
    Incremental,
}

/// Options for [`IntProblem::minimize`].
#[derive(Clone, Debug)]
pub struct MinimizeOptions {
    /// Gate encoding backend.
    pub backend: Backend,
    /// Work sharing across the probe sequence.
    pub mode: BinSearchMode,
    /// Per-call conflict budget; exhausting it aborts with
    /// [`MinimizeStatus::Unknown`].
    pub max_conflicts: Option<u64>,
    /// Known feasible upper bound on the cost (e.g. from a heuristic
    /// incumbent). The first probe is bounded by it, which can skip the
    /// expensive unbounded `SOLVE(φ)` and halve the search range.
    pub initial_upper: Option<i64>,
}

impl Default for MinimizeOptions {
    fn default() -> MinimizeOptions {
        MinimizeOptions {
            backend: Backend::PseudoBoolean,
            mode: BinSearchMode::Incremental,
            max_conflicts: None,
            initial_upper: None,
        }
    }
}

/// Verdict of a minimization run.
#[derive(Clone, Debug)]
pub enum MinimizeStatus {
    /// The minimum cost and a witnessing model.
    Optimal {
        /// Minimal value of the cost variable.
        value: i64,
        /// A model attaining it.
        model: Model,
    },
    /// The constraints admit no solution at all.
    Infeasible,
    /// Budget exhausted; carries the best incumbent, if any was found.
    Unknown {
        /// Best (value, model) discovered before giving up.
        incumbent: Option<(i64, Model)>,
    },
}

/// Size of the propositional encoding — the paper's complexity columns
/// ("Var." and "Lit.").
#[derive(Copy, Clone, Debug, Default)]
pub struct EncodeStats {
    /// Propositional variables.
    pub bool_vars: u64,
    /// Literal occurrences over all constraints.
    pub literals: u64,
    /// Constraints (clauses + PB).
    pub constraints: u64,
}

/// Full result of a minimization run.
#[derive(Clone, Debug)]
pub struct MinimizeOutcome {
    /// Optimal / infeasible / unknown.
    pub status: MinimizeStatus,
    /// Number of `SOLVE` invocations.
    pub solve_calls: u32,
    /// Size of the (first complete) propositional encoding.
    pub encode: EncodeStats,
    /// Aggregated solver statistics over all calls.
    pub stats: SolverStats,
}

fn accumulate(total: &mut SolverStats, s: &SolverStats) {
    total.decisions += s.decisions;
    total.propagations += s.propagations;
    total.conflicts += s.conflicts;
    total.restarts += s.restarts;
    total.learned += s.learned;
    total.deleted += s.deleted;
    total.pb_propagations += s.pb_propagations;
}

pub(crate) fn minimize(
    problem: &IntProblem,
    cost: IntVar,
    opts: &MinimizeOptions,
) -> MinimizeOutcome {
    match opts.mode {
        BinSearchMode::Incremental => minimize_incremental(problem, cost, opts),
        BinSearchMode::Fresh => minimize_fresh(problem, cost, opts),
    }
}

fn minimize_incremental(
    problem: &IntProblem,
    cost: IntVar,
    opts: &MinimizeOptions,
) -> MinimizeOutcome {
    let mut solver = Solver::new();
    solver.config.max_conflicts = opts.max_conflicts;
    let form = problem.triplet_form();
    let mut bl = blast(&form, problem.int_decls(), &mut solver, opts.backend);
    let encode = EncodeStats {
        bool_vars: solver.num_vars() as u64,
        literals: solver.num_literals(),
        constraints: solver.num_constraints(),
    };
    let mut outcome = MinimizeOutcome {
        status: MinimizeStatus::Infeasible,
        solve_calls: 0,
        encode,
        stats: SolverStats::default(),
    };
    let finish = |mut o: MinimizeOutcome, solver: &Solver| {
        o.stats = solver.stats.clone();
        o
    };

    if bl.trivially_unsat() {
        return outcome;
    }

    // R := SOLVE(φ), optionally warm-started with a known upper bound:
    // R := SOLVE(φ ∧ cost ≤ U) — falling back to the unbounded call if the
    // hint turns out infeasible.
    outcome.solve_calls += 1;
    let first = match opts.initial_upper {
        Some(u) if u >= cost.lo => {
            let guard = solver.new_var().positive();
            bl.add_guarded_bounds(&mut solver, cost, cost.lo, u, guard);
            let r = solver.solve(&[guard]);
            solver.add_clause(&[!guard]);
            if r == SolveResult::Unsat {
                // Bad hint; retry unbounded.
                outcome.solve_calls += 1;
                solver.solve(&[])
            } else {
                r
            }
        }
        _ => solver.solve(&[]),
    };
    match first {
        SolveResult::Unsat => return finish(outcome, &solver),
        SolveResult::Unknown => {
            outcome.status = MinimizeStatus::Unknown { incumbent: None };
            return finish(outcome, &solver);
        }
        SolveResult::Sat => {}
    }
    let mut best_value = bl.int_value(&solver, cost);
    let mut best_model = problem.extract_model(&solver, &bl);
    let mut lower = cost.lo;
    let mut upper = best_value;

    while lower < upper {
        let mid = lower + (upper - lower) / 2;
        let guard = solver.new_var().positive();
        bl.add_guarded_bounds(&mut solver, cost, lower, mid, guard);
        outcome.solve_calls += 1;
        match solver.solve(&[guard]) {
            SolveResult::Sat => {
                let k = bl.int_value(&solver, cost);
                debug_assert!(k >= lower && k <= mid);
                best_value = k;
                best_model = problem.extract_model(&solver, &bl);
                upper = k;
            }
            SolveResult::Unsat => {
                lower = mid + 1;
            }
            SolveResult::Unknown => {
                outcome.status = MinimizeStatus::Unknown {
                    incumbent: Some((best_value, best_model)),
                };
                return finish(outcome, &solver);
            }
        }
        // The guard is never assumed again; close it so the solver can
        // simplify the now-dead bound clauses away.
        solver.add_clause(&[!guard]);
    }

    outcome.status = MinimizeStatus::Optimal {
        value: best_value,
        model: best_model,
    };
    finish(outcome, &solver)
}

fn minimize_fresh(
    problem: &IntProblem,
    cost: IntVar,
    opts: &MinimizeOptions,
) -> MinimizeOutcome {
    let mut outcome = MinimizeOutcome {
        status: MinimizeStatus::Infeasible,
        solve_calls: 0,
        encode: EncodeStats::default(),
        stats: SolverStats::default(),
    };

    // One probe: fresh solver, bounds asserted hard.
    let probe = |bounds: Option<(i64, i64)>,
                     outcome: &mut MinimizeOutcome|
     -> (SolveResult, Option<(i64, Model)>) {
        let mut solver = Solver::new();
        solver.config.max_conflicts = opts.max_conflicts;
        let mut p = problem.clone();
        if let Some((lo, hi)) = bounds {
            p.assert(cost.expr().ge(lo).and(cost.expr().le(hi)));
        }
        let form = p.triplet_form();
        let bl = blast(&form, p.int_decls(), &mut solver, opts.backend);
        if outcome.solve_calls == 0 {
            outcome.encode = EncodeStats {
                bool_vars: solver.num_vars() as u64,
                literals: solver.num_literals(),
                constraints: solver.num_constraints(),
            };
        }
        outcome.solve_calls += 1;
        if bl.trivially_unsat() {
            return (SolveResult::Unsat, None);
        }
        let r = solver.solve(&[]);
        accumulate(&mut outcome.stats, &solver.stats);
        let witness = (r == SolveResult::Sat).then(|| {
            (
                bl.int_value(&solver, cost),
                problem.extract_model(&solver, &bl),
            )
        });
        (r, witness)
    };

    let first_bounds = opts.initial_upper.filter(|&u| u >= cost.lo).map(|u| (cost.lo, u));
    let (r0, w0) = match probe(first_bounds, &mut outcome) {
        // A bad warm-start hint must not report Infeasible; retry unbounded.
        (SolveResult::Unsat, _) if first_bounds.is_some() => probe(None, &mut outcome),
        other => other,
    };
    let (mut best_value, mut best_model) = match r0 {
        SolveResult::Unsat => return outcome,
        SolveResult::Unknown => {
            outcome.status = MinimizeStatus::Unknown { incumbent: None };
            return outcome;
        }
        SolveResult::Sat => w0.unwrap(),
    };
    let mut lower = cost.lo;
    let mut upper = best_value;

    while lower < upper {
        let mid = lower + (upper - lower) / 2;
        let (r, w) = probe(Some((lower, mid)), &mut outcome);
        match r {
            SolveResult::Sat => {
                let (k, m) = w.unwrap();
                debug_assert!(k >= lower && k <= mid);
                best_value = k;
                best_model = m;
                upper = k;
            }
            SolveResult::Unsat => lower = mid + 1,
            SolveResult::Unknown => {
                outcome.status = MinimizeStatus::Unknown {
                    incumbent: Some((best_value, best_model)),
                };
                return outcome;
            }
        }
    }

    outcome.status = MinimizeStatus::Optimal {
        value: best_value,
        model: best_model,
    };
    outcome
}
