//! Rewriting to *triplet form* (paper §5.1).
//!
//! The paper's first reduction step introduces helper variables so that the
//! whole constraint system becomes a conjunction of "triplets": definitions
//! with at most three variables, at most one binary operator and exactly one
//! relational operator. This mirrors Tseitin's linear-time CNF transformation
//! and makes the subsequent bit-blasting local.
//!
//! We additionally *intern* definitions: structurally identical
//! subexpressions map to the same helper variable (common-subexpression
//! elimination), which matters because the allocation encoding reuses
//! response-time terms across many constraints.
//!
//! Ranges of helper integer variables are inferred bottom-up by interval
//! arithmetic, exactly as the paper infers "appropriate ranges … from the
//! ranges of the subexpressions".

use crate::expr::{BoolExpr, BoolNode, CmpOp, IntExpr, IntNode};
use std::collections::HashMap;

/// Index of an integer definition in a [`TripletForm`].
pub type IntId = u32;
/// Index of a Boolean definition in a [`TripletForm`].
pub type BoolId = u32;
/// A direct pseudo-Boolean constraint in triplet form: `(terms, op,
/// bound)` with terms `(bool id, coefficient)`.
pub type TripletPb = (Vec<(BoolId, i64)>, optalloc_sat::PbOp, i64);

/// Arithmetic operator of an integer triplet.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

/// One integer definition `[e] = …` in triplet form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IntDefKind {
    /// A problem input variable (by declaration id).
    Input(u32),
    /// A constant.
    Const(i64),
    /// `[e] = [a] ⊗ [b]`.
    Op(ArithOp, IntId, IntId),
}

/// An integer definition with its inferred interval.
#[derive(Clone, Debug)]
pub struct IntDef {
    /// What this helper variable is defined as.
    pub kind: IntDefKind,
    /// Inferred inclusive lower bound.
    pub lo: i64,
    /// Inferred inclusive upper bound.
    pub hi: i64,
}

/// One Boolean definition `[φ] ⇔ …` in triplet form.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum BoolDef {
    /// A problem input variable (by declaration id).
    Input(u32),
    /// A constant.
    Const(bool),
    /// `[φ] ⇔ [a] ∼ [b]` over integer definitions.
    Cmp(CmpOp, IntId, IntId),
    /// `[φ] ⇔ ¬[a]`.
    Not(BoolId),
    /// `[φ] ⇔ ⋀ᵢ [aᵢ]`.
    And(Vec<BoolId>),
    /// `[φ] ⇔ ⋁ᵢ [aᵢ]`.
    Or(Vec<BoolId>),
    /// `[φ] ⇔ ([a] ⇔ [b])`.
    Iff(BoolId, BoolId),
}

/// The result of triplet rewriting: interned, topologically ordered
/// definitions plus the ids of asserted root formulas.
#[derive(Default)]
pub struct TripletForm {
    /// Integer definitions; children always precede parents.
    pub ints: Vec<IntDef>,
    /// Boolean definitions; children always precede parents.
    pub bools: Vec<BoolDef>,
    /// Root formulas asserted to hold.
    pub asserts: Vec<BoolId>,
    /// Direct pseudo-Boolean constraints over Boolean definitions:
    /// `(terms, op, bound)` with terms `(bool id, coefficient)`.
    pub pb_asserts: Vec<TripletPb>,

    int_intern: HashMap<IntDefKind, IntId>,
    bool_intern: HashMap<BoolDef, BoolId>,
}

impl TripletForm {
    /// Creates an empty form.
    pub fn new() -> TripletForm {
        TripletForm::default()
    }

    /// Total number of triplet definitions (the paper's helper variables).
    pub fn len(&self) -> usize {
        self.ints.len() + self.bools.len()
    }

    /// `true` when no definitions exist.
    pub fn is_empty(&self) -> bool {
        self.ints.is_empty() && self.bools.is_empty()
    }

    fn intern_int(&mut self, kind: IntDefKind, lo: i64, hi: i64) -> IntId {
        if let Some(&id) = self.int_intern.get(&kind) {
            return id;
        }
        let id = self.ints.len() as IntId;
        self.int_intern.insert(kind.clone(), id);
        self.ints.push(IntDef { kind, lo, hi });
        id
    }

    fn intern_bool(&mut self, def: BoolDef) -> BoolId {
        if let Some(&id) = self.bool_intern.get(&def) {
            return id;
        }
        let id = self.bools.len() as BoolId;
        self.bool_intern.insert(def.clone(), id);
        self.bools.push(def);
        id
    }

    /// Flattens an integer expression, returning its definition id.
    pub fn flatten_int(&mut self, e: &IntExpr) -> IntId {
        match e.node() {
            IntNode::Const(v) => self.intern_int(IntDefKind::Const(*v), *v, *v),
            IntNode::Var(v) => self.intern_int(IntDefKind::Input(v.id), v.lo, v.hi),
            IntNode::Add(a, b) => self.flatten_op(ArithOp::Add, a, b),
            IntNode::Sub(a, b) => self.flatten_op(ArithOp::Sub, a, b),
            IntNode::Mul(a, b) => self.flatten_op(ArithOp::Mul, a, b),
        }
    }

    fn flatten_op(&mut self, op: ArithOp, a: &IntExpr, b: &IntExpr) -> IntId {
        let ia = self.flatten_int(a);
        let ib = self.flatten_int(b);
        // Constant folding keeps the form small.
        if let (IntDefKind::Const(x), IntDefKind::Const(y)) =
            (&self.ints[ia as usize].kind, &self.ints[ib as usize].kind)
        {
            let v = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
            };
            return self.intern_int(IntDefKind::Const(v), v, v);
        }
        let (al, ah) = (self.ints[ia as usize].lo, self.ints[ia as usize].hi);
        let (bl, bh) = (self.ints[ib as usize].lo, self.ints[ib as usize].hi);
        let (lo, hi) = match op {
            ArithOp::Add => (al + bl, ah + bh),
            ArithOp::Sub => (al - bh, ah - bl),
            ArithOp::Mul => {
                let p = [al * bl, al * bh, ah * bl, ah * bh];
                (
                    p.iter().copied().min().unwrap(),
                    p.iter().copied().max().unwrap(),
                )
            }
        };
        self.intern_int(IntDefKind::Op(op, ia, ib), lo, hi)
    }

    /// Flattens a Boolean expression, returning its definition id.
    pub fn flatten_bool(&mut self, e: &BoolExpr) -> BoolId {
        match e.node() {
            BoolNode::Const(b) => self.intern_bool(BoolDef::Const(*b)),
            BoolNode::Var(v) => self.intern_bool(BoolDef::Input(v.id)),
            BoolNode::Cmp(op, a, b) => {
                let ia = self.flatten_int(a);
                let ib = self.flatten_int(b);
                // Fold comparisons decidable from ranges alone.
                let (al, ah) = (self.ints[ia as usize].lo, self.ints[ia as usize].hi);
                let (bl, bh) = (self.ints[ib as usize].lo, self.ints[ib as usize].hi);
                let decided = match op {
                    CmpOp::Le => {
                        if ah <= bl {
                            Some(true)
                        } else if al > bh {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Lt => {
                        if ah < bl {
                            Some(true)
                        } else if al >= bh {
                            Some(false)
                        } else {
                            None
                        }
                    }
                    CmpOp::Eq => {
                        if al == ah && bl == bh && al == bl {
                            Some(true)
                        } else if ah < bl || bh < al {
                            Some(false)
                        } else {
                            None
                        }
                    }
                };
                match decided {
                    Some(b) => self.intern_bool(BoolDef::Const(b)),
                    None => self.intern_bool(BoolDef::Cmp(*op, ia, ib)),
                }
            }
            BoolNode::Not(a) => {
                let ia = self.flatten_bool(a);
                if let BoolDef::Const(b) = self.bools[ia as usize] {
                    return self.intern_bool(BoolDef::Const(!b));
                }
                self.intern_bool(BoolDef::Not(ia))
            }
            BoolNode::And(items) => {
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    let id = self.flatten_bool(item);
                    match self.bools[id as usize] {
                        BoolDef::Const(true) => {}
                        BoolDef::Const(false) => return self.intern_bool(BoolDef::Const(false)),
                        _ => ids.push(id),
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                match ids.len() {
                    0 => self.intern_bool(BoolDef::Const(true)),
                    1 => ids[0],
                    _ => self.intern_bool(BoolDef::And(ids)),
                }
            }
            BoolNode::Or(items) => {
                let mut ids = Vec::with_capacity(items.len());
                for item in items {
                    let id = self.flatten_bool(item);
                    match self.bools[id as usize] {
                        BoolDef::Const(false) => {}
                        BoolDef::Const(true) => return self.intern_bool(BoolDef::Const(true)),
                        _ => ids.push(id),
                    }
                }
                ids.sort_unstable();
                ids.dedup();
                match ids.len() {
                    0 => self.intern_bool(BoolDef::Const(false)),
                    1 => ids[0],
                    _ => self.intern_bool(BoolDef::Or(ids)),
                }
            }
            BoolNode::Iff(a, b) => {
                let ia = self.flatten_bool(a);
                let ib = self.flatten_bool(b);
                match (&self.bools[ia as usize], &self.bools[ib as usize]) {
                    (BoolDef::Const(x), BoolDef::Const(y)) => {
                        let v = x == y;
                        self.intern_bool(BoolDef::Const(v))
                    }
                    (BoolDef::Const(true), _) => ib,
                    (_, BoolDef::Const(true)) => ia,
                    (BoolDef::Const(false), _) => self.intern_bool(BoolDef::Not(ib)),
                    (_, BoolDef::Const(false)) => self.intern_bool(BoolDef::Not(ia)),
                    _ if ia == ib => self.intern_bool(BoolDef::Const(true)),
                    _ => {
                        let (x, y) = (ia.min(ib), ia.max(ib));
                        self.intern_bool(BoolDef::Iff(x, y))
                    }
                }
            }
        }
    }

    /// Flattens and asserts a root formula.
    pub fn assert(&mut self, e: &BoolExpr) {
        // Top-level conjunctions split into independent assertions, which
        // lets the blaster emit plain clauses instead of Tseitin gates.
        if let BoolNode::And(items) = e.node() {
            for item in items {
                self.assert(item);
            }
            return;
        }
        let id = self.flatten_bool(e);
        self.asserts.push(id);
    }

    /// Asserts a pseudo-Boolean constraint directly over Boolean expressions.
    pub fn assert_pb(&mut self, terms: &[(BoolExpr, i64)], op: optalloc_sat::PbOp, bound: i64) {
        let flat: Vec<(BoolId, i64)> = terms
            .iter()
            .map(|(e, c)| (self.flatten_bool(e), *c))
            .collect();
        self.pb_asserts.push((flat, op, bound));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BoolVar, IntVar};

    fn ivar(id: u32, lo: i64, hi: i64) -> IntVar {
        IntVar { id, lo, hi }
    }

    #[test]
    fn shared_subexpressions_are_interned_once() {
        let x = ivar(0, 0, 10).expr();
        let y = ivar(1, 0, 10).expr();
        let shared = &x + &y;
        let mut tf = TripletForm::new();
        tf.assert(&(&shared * 2).ge(5));
        tf.assert(&(&shared * 3).le(20));
        // x, y, x+y, 2, 3, (x+y)*2, (x+y)*3, 5, 20 → exactly one Add node.
        let adds = tf
            .ints
            .iter()
            .filter(|d| matches!(d.kind, IntDefKind::Op(ArithOp::Add, _, _)))
            .count();
        assert_eq!(adds, 1);
        assert_eq!(tf.asserts.len(), 2);
    }

    #[test]
    fn constant_folding_in_int_ops() {
        let mut tf = TripletForm::new();
        let e = IntExpr::constant(3) * 4 + 5;
        let id = tf.flatten_int(&e);
        assert_eq!(tf.ints[id as usize].kind, IntDefKind::Const(17));
    }

    #[test]
    fn range_decided_comparisons_fold() {
        let x = ivar(0, 0, 3).expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_bool(&x.le(10));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
        let id2 = tf.flatten_bool(&x.ge(4));
        assert_eq!(tf.bools[id2 as usize], BoolDef::Const(false));
    }

    #[test]
    fn and_or_simplification() {
        let p = BoolVar { id: 0 }.expr();
        let mut tf = TripletForm::new();
        let t = BoolExpr::constant(true);
        let f = BoolExpr::constant(false);
        let id = tf.flatten_bool(&p.and(&t));
        assert_eq!(tf.bools[id as usize], BoolDef::Input(0));
        let id = tf.flatten_bool(&p.and(&f));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(false));
        let id = tf.flatten_bool(&p.or(&t));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
        let id = tf.flatten_bool(&p.or(&f));
        assert_eq!(tf.bools[id as usize], BoolDef::Input(0));
    }

    #[test]
    fn iff_with_same_operand_is_true() {
        let p = BoolVar { id: 0 }.expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_bool(&p.iff(&p));
        assert_eq!(tf.bools[id as usize], BoolDef::Const(true));
    }

    #[test]
    fn top_level_conjunction_splits() {
        let p = BoolVar { id: 0 }.expr();
        let q = BoolVar { id: 1 }.expr();
        let mut tf = TripletForm::new();
        tf.assert(&p.and(&q));
        assert_eq!(tf.asserts.len(), 2);
    }

    #[test]
    fn inferred_ranges_propagate() {
        let x = ivar(0, 2, 5).expr();
        let y = ivar(1, -1, 3).expr();
        let mut tf = TripletForm::new();
        let id = tf.flatten_int(&(&x * &y - 7));
        let d = &tf.ints[id as usize];
        assert_eq!((d.lo, d.hi), (-5 - 7, 5 * 3 - 7));
    }

    #[test]
    fn children_precede_parents() {
        let x = ivar(0, 0, 7).expr();
        let y = ivar(1, 0, 7).expr();
        let mut tf = TripletForm::new();
        tf.assert(&((&x + &y) * (&x - &y)).eq(0));
        for (i, d) in tf.ints.iter().enumerate() {
            if let IntDefKind::Op(_, a, b) = d.kind {
                assert!((a as usize) < i && (b as usize) < i);
            }
        }
        for (i, d) in tf.bools.iter().enumerate() {
            match d {
                BoolDef::Not(a) => assert!((*a as usize) < i),
                BoolDef::And(v) | BoolDef::Or(v) => {
                    v.iter().for_each(|&a| assert!((a as usize) < i))
                }
                BoolDef::Iff(a, b) => assert!((*a as usize) < i && (*b as usize) < i),
                _ => {}
            }
        }
    }
}
