//! End-to-end proof-logging tests: run the solver on known instances with
//! `SolverConfig::proof` enabled and verify the recorded trace with the
//! built-in forward DRAT checker.

use optalloc_sat::{check_proof, PbOp, PbTerm, SolveResult, Solver, SolverConfig, Var};

/// Pigeonhole principle: `pigeons` into `holes`; UNSAT when pigeons > holes.
fn pigeonhole(solver: &mut Solver, pigeons: usize, holes: usize) {
    let vars: Vec<Vec<Var>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| solver.new_var()).collect())
        .collect();
    for p in &vars {
        let clause: Vec<_> = p.iter().map(|v| v.positive()).collect();
        solver.add_clause(&clause);
    }
    #[allow(clippy::needless_range_loop)] // h indexes two different rows at once
    for h in 0..holes {
        for a in 0..pigeons {
            for b in a + 1..pigeons {
                solver.add_clause(&[vars[a][h].negative(), vars[b][h].negative()]);
            }
        }
    }
}

#[test]
fn unsat_proof_verifies_with_preprocessing() {
    for preprocess in [false, true] {
        let mut solver = Solver::new();
        solver.config = SolverConfig {
            proof: true,
            preprocess,
            ..SolverConfig::default()
        };
        pigeonhole(&mut solver, 6, 5);
        assert_eq!(solver.solve(&[]), SolveResult::Unsat);
        let log = solver.take_proof().expect("proof recorded");
        let checked = check_proof(&log).expect("every step RUP");
        assert!(checked.proves_unsat(), "preprocess={preprocess}");
        assert!(checked.adds_verified > 0);
    }
}

#[test]
fn proof_survives_clause_db_reduction() {
    let mut solver = Solver::new();
    solver.config = SolverConfig {
        proof: true,
        // Force several reduce_db passes so deletions appear in the trace.
        first_reduce: 50,
        ..SolverConfig::default()
    };
    pigeonhole(&mut solver, 7, 6);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let log = solver.take_proof().expect("proof recorded");
    let checked = check_proof(&log).expect("every step RUP");
    assert!(checked.proves_unsat());
    assert!(
        checked.deletions > 0,
        "reduce_db should have logged deletions"
    );
}

#[test]
fn sat_solve_produces_checkable_trace() {
    // A satisfiable instance: no empty clause, but every learned clause in
    // the trace must still pass its RUP check.
    let mut solver = Solver::new();
    solver.config.proof = true;
    pigeonhole(&mut solver, 5, 5);
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    let log = solver.take_proof().expect("proof recorded");
    let checked = check_proof(&log).expect("every step RUP");
    assert!(!checked.proves_unsat());
}

#[test]
fn guarded_assumption_unsat_yields_window_claim() {
    // Incremental use like the cost prober: the base formula is SAT, a
    // guard assumption turns it UNSAT; the trace must prove ¬guard.
    let mut solver = Solver::new();
    solver.config.proof = true;
    pigeonhole(&mut solver, 5, 5);
    let guard = solver.new_var().positive();
    // guard → pigeon 0 avoids every hole (contradicts "some hole").
    let first_pigeon: Vec<Var> = (0..5).map(Var::from_index).collect();
    for v in &first_pigeon {
        solver.add_clause(&[!guard, v.negative()]);
    }
    assert_eq!(solver.solve(&[guard]), SolveResult::Unsat);
    solver.add_clause(&[!guard]);
    // Solver stays usable without the guard.
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    let log = solver.take_proof().expect("proof recorded");
    let checked = check_proof(&log).expect("every step RUP");
    assert!(!checked.proves_unsat(), "base formula is SAT");
    assert!(
        checked.proves_clause(&[!guard]),
        "the failed-assumption clause certifies the probe"
    );
}

#[test]
fn pb_constraints_enter_the_trace() {
    // Σ xᵢ ≥ 3 over 4 vars plus Σ xᵢ ≤ 1 is UNSAT through PB reasoning.
    let mut solver = Solver::new();
    solver.config.proof = true;
    let vars: Vec<Var> = (0..4).map(|_| solver.new_var()).collect();
    let terms: Vec<PbTerm> = vars.iter().map(|v| PbTerm::new(v.positive(), 1)).collect();
    solver.add_pb(&terms, PbOp::Ge, 3);
    solver.add_pb(&terms, PbOp::Le, 1);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    let log = solver.take_proof().expect("proof recorded");
    let checked = check_proof(&log).expect("PB-aware RUP");
    assert!(checked.proves_unsat());
    assert!(checked.inputs >= 2);
}

#[test]
fn strengthening_chain_keeps_trace_checkable() {
    // Regression: a subsumer can itself be strengthened and then subsumed
    // by the very clause it strengthened. With write-back-time logging the
    // dead parent was deleted (arena order) before the Add that resolves
    // against it, so the Add failed RUP. Strengthened copies must be
    // logged the moment they are derived, while both parents are present.
    //
    //   d = ¬a ∨ c ∨ ¬e          (dies: subsumed by the final copy of y)
    //   y = a ∨ c ∨ f ∨ ¬e       (→ a ∨ c ∨ ¬e via s, → c ∨ ¬e via d)
    //   s = c ∨ ¬f               (strengthens y first)
    let mut solver = Solver::new();
    solver.config = SolverConfig {
        proof: true,
        preprocess: true,
        ..SolverConfig::default()
    };
    let a = solver.new_var().positive();
    let c = solver.new_var().positive();
    let e = solver.new_var().positive();
    let f = solver.new_var().positive();
    solver.add_clause(&[!a, c, !e]);
    solver.add_clause(&[a, c, f, !e]);
    solver.add_clause(&[c, !f]);
    assert_eq!(solver.solve(&[]), SolveResult::Sat);
    assert!(
        solver.stats.pp_strengthened >= 2,
        "the self-subsuming resolution chain should fire twice"
    );
    let log = solver.take_proof().expect("proof recorded");
    let checked = check_proof(&log).expect("strengthened copies logged at derivation time");
    assert!(checked.adds_verified >= 1);
    assert!(checked.deletions >= 1);
}

#[test]
fn proof_disabled_records_nothing() {
    let mut solver = Solver::new();
    pigeonhole(&mut solver, 6, 5);
    assert_eq!(solver.solve(&[]), SolveResult::Unsat);
    assert!(solver.proof().is_none());
    assert!(solver.take_proof().is_none());
}
