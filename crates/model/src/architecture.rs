//! The system architecture `A = (P, K, κ)` of paper §2: ECUs, the media
//! connecting them, and the derived gateway structure for hierarchical
//! topologies (§4).

use crate::ids::{EcuId, MediumId};
use crate::medium::Medium;
use serde::{Deserialize, Serialize};

/// An embedded control unit.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ecu {
    /// Human-readable name.
    pub name: String,
    /// Memory capacity in bytes (`u64::MAX` = unconstrained).
    pub memory_capacity: u64,
    /// `false` forbids placing application tasks here (pure gateway nodes,
    /// as in the paper's architectures A and B).
    pub hosts_tasks: bool,
}

impl Ecu {
    /// An ECU with unconstrained memory that hosts tasks.
    pub fn new(name: impl Into<String>) -> Ecu {
        Ecu {
            name: name.into(),
            memory_capacity: u64::MAX,
            hosts_tasks: true,
        }
    }

    /// Limits the memory capacity (builder style).
    pub fn with_memory(mut self, bytes: u64) -> Ecu {
        self.memory_capacity = bytes;
        self
    }

    /// Marks the ECU as a pure gateway that hosts no application tasks
    /// (builder style).
    pub fn gateway_only(mut self) -> Ecu {
        self.hosts_tasks = false;
        self
    }
}

/// Errors reported by [`Architecture::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArchError {
    /// A medium references an ECU index outside the ECU table.
    UnknownEcu {
        /// The offending medium.
        medium: MediumId,
        /// The dangling reference.
        ecu: EcuId,
    },
    /// A medium connects fewer than two ECUs.
    DegenerateMedium(MediumId),
    /// Two media share more than one ECU (the paper allows only one gateway
    /// between two media).
    MultipleGateways(MediumId, MediumId),
    /// An ECU appears twice in one medium's member list.
    DuplicateMember(MediumId, EcuId),
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::UnknownEcu { medium, ecu } => {
                write!(f, "medium {medium} references unknown ECU {ecu}")
            }
            ArchError::DegenerateMedium(m) => {
                write!(f, "medium {m} connects fewer than two ECUs")
            }
            ArchError::MultipleGateways(a, b) => {
                write!(f, "media {a} and {b} share more than one gateway ECU")
            }
            ArchError::DuplicateMember(m, p) => {
                write!(f, "medium {m} lists ECU {p} twice")
            }
        }
    }
}

impl std::error::Error for ArchError {}

/// The hardware platform: ECUs plus communication media.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    /// All ECUs; `EcuId(i)` indexes this vector.
    pub ecus: Vec<Ecu>,
    /// All media; `MediumId(i)` indexes this vector.
    pub media: Vec<Medium>,
}

impl Architecture {
    /// Creates an empty architecture.
    pub fn new() -> Architecture {
        Architecture::default()
    }

    /// Adds an ECU, returning its id.
    pub fn push_ecu(&mut self, ecu: Ecu) -> EcuId {
        let id = EcuId(self.ecus.len() as u32);
        self.ecus.push(ecu);
        id
    }

    /// Adds a medium, returning its id.
    pub fn push_medium(&mut self, medium: Medium) -> MediumId {
        let id = MediumId(self.media.len() as u32);
        self.media.push(medium);
        id
    }

    /// Number of ECUs.
    pub fn num_ecus(&self) -> usize {
        self.ecus.len()
    }

    /// Number of media.
    pub fn num_media(&self) -> usize {
        self.media.len()
    }

    /// The ECU behind an id.
    pub fn ecu(&self, id: EcuId) -> &Ecu {
        &self.ecus[id.index()]
    }

    /// The medium behind an id.
    pub fn medium(&self, id: MediumId) -> &Medium {
        &self.media[id.index()]
    }

    /// Iterates `(id, ecu)` pairs.
    pub fn iter_ecus(&self) -> impl Iterator<Item = (EcuId, &Ecu)> {
        self.ecus
            .iter()
            .enumerate()
            .map(|(i, e)| (EcuId(i as u32), e))
    }

    /// Iterates `(id, medium)` pairs.
    pub fn iter_media(&self) -> impl Iterator<Item = (MediumId, &Medium)> {
        self.media
            .iter()
            .enumerate()
            .map(|(i, m)| (MediumId(i as u32), m))
    }

    /// The media an ECU is connected to.
    pub fn media_of(&self, ecu: EcuId) -> Vec<MediumId> {
        self.iter_media()
            .filter(|(_, m)| m.connects(ecu))
            .map(|(id, _)| id)
            .collect()
    }

    /// ECUs connected to two or more media — the gateway nodes whose arcs
    /// form the hierarchical topology graph of §4.
    pub fn gateways(&self) -> Vec<EcuId> {
        self.iter_ecus()
            .filter(|&(id, _)| self.media_of(id).len() >= 2)
            .map(|(id, _)| id)
            .collect()
    }

    /// The unique gateway ECU linking two media, if they are adjacent.
    pub fn gateway_between(&self, a: MediumId, b: MediumId) -> Option<EcuId> {
        if a == b {
            return None;
        }
        self.medium(a)
            .members
            .iter()
            .copied()
            .find(|&p| self.medium(b).connects(p))
    }

    /// A medium shared by both ECUs (for single-hop communication).
    pub fn shared_medium(&self, a: EcuId, b: EcuId) -> Option<MediumId> {
        self.iter_media()
            .find(|(_, m)| m.connects(a) && m.connects(b))
            .map(|(id, _)| id)
    }

    /// Checks the structural rules of §2/§4: members exist and are unique,
    /// every medium connects ≥ 2 ECUs, and any two media share at most one
    /// gateway ECU.
    pub fn validate(&self) -> Result<(), ArchError> {
        for (mid, m) in self.iter_media() {
            if m.members.len() < 2 {
                return Err(ArchError::DegenerateMedium(mid));
            }
            for &p in &m.members {
                if p.index() >= self.ecus.len() {
                    return Err(ArchError::UnknownEcu {
                        medium: mid,
                        ecu: p,
                    });
                }
            }
            let mut sorted = m.members.clone();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return Err(ArchError::DuplicateMember(mid, w[0]));
            }
        }
        for (a, ma) in self.iter_media() {
            for (b, mb) in self.iter_media() {
                if a >= b {
                    continue;
                }
                let shared = ma.members.iter().filter(|p| mb.connects(**p)).count();
                if shared > 1 {
                    return Err(ArchError::MultipleGateways(a, b));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::Medium;

    fn arch_two_buses() -> Architecture {
        // p0, p1 on k0; p2, p3 on k1; p1 also on k1 → gateway.
        let mut a = Architecture::new();
        for i in 0..4 {
            a.push_ecu(Ecu::new(format!("p{i}")));
        }
        a.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 2, 1));
        a.push_medium(Medium::priority(
            "k1",
            vec![EcuId(1), EcuId(2), EcuId(3)],
            2,
            1,
        ));
        a
    }

    #[test]
    fn gateway_detection() {
        let a = arch_two_buses();
        assert_eq!(a.gateways(), vec![EcuId(1)]);
        assert_eq!(a.gateway_between(MediumId(0), MediumId(1)), Some(EcuId(1)));
        assert_eq!(a.gateway_between(MediumId(0), MediumId(0)), None);
    }

    #[test]
    fn shared_medium_lookup() {
        let a = arch_two_buses();
        assert_eq!(a.shared_medium(EcuId(0), EcuId(1)), Some(MediumId(0)));
        assert_eq!(a.shared_medium(EcuId(2), EcuId(3)), Some(MediumId(1)));
        assert_eq!(a.shared_medium(EcuId(0), EcuId(3)), None);
    }

    #[test]
    fn media_of_lists_connections() {
        let a = arch_two_buses();
        assert_eq!(a.media_of(EcuId(1)), vec![MediumId(0), MediumId(1)]);
        assert_eq!(a.media_of(EcuId(0)), vec![MediumId(0)]);
    }

    #[test]
    fn validate_accepts_wellformed() {
        assert_eq!(arch_two_buses().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_unknown_ecu() {
        let mut a = Architecture::new();
        a.push_ecu(Ecu::new("p0"));
        a.push_ecu(Ecu::new("p1"));
        a.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(7)], 1, 1));
        assert!(matches!(a.validate(), Err(ArchError::UnknownEcu { .. })));
    }

    #[test]
    fn validate_rejects_degenerate_medium() {
        let mut a = Architecture::new();
        a.push_ecu(Ecu::new("p0"));
        a.push_medium(Medium::priority("k0", vec![EcuId(0)], 1, 1));
        assert!(matches!(a.validate(), Err(ArchError::DegenerateMedium(_))));
    }

    #[test]
    fn validate_rejects_double_gateway() {
        let mut a = Architecture::new();
        for i in 0..3 {
            a.push_ecu(Ecu::new(format!("p{i}")));
        }
        a.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(1)], 1, 1));
        a.push_medium(Medium::priority(
            "k1",
            vec![EcuId(0), EcuId(1), EcuId(2)],
            1,
            1,
        ));
        assert!(matches!(
            a.validate(),
            Err(ArchError::MultipleGateways(_, _))
        ));
    }

    #[test]
    fn validate_rejects_duplicate_member() {
        let mut a = Architecture::new();
        a.push_ecu(Ecu::new("p0"));
        a.push_ecu(Ecu::new("p1"));
        a.push_medium(Medium::priority("k0", vec![EcuId(0), EcuId(0)], 1, 1));
        assert!(matches!(
            a.validate(),
            Err(ArchError::DuplicateMember(_, _))
        ));
    }

    #[test]
    fn gateway_only_ecus() {
        let e = Ecu::new("gw").gateway_only().with_memory(512);
        assert!(!e.hosts_tasks);
        assert_eq!(e.memory_capacity, 512);
    }
}
