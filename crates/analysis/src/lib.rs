//! # optalloc-analysis
//!
//! Concrete schedulability analysis for the task-allocation system of
//! Metzner et al. (IPPS 2006): the fixed-point response-time analyses of
//! paper §2 and the holistic multi-hop validation of §4, applied to a
//! *given* [`Allocation`](optalloc_model::Allocation).
//!
//! The SAT optimizer in the `optalloc` crate encodes these same equations
//! symbolically; this crate evaluates them numerically, serving three roles:
//!
//! 1. **oracle** — every optimal allocation the solver emits is re-validated
//!    here ([`validate`]) before being returned;
//! 2. **baseline substrate** — the simulated-annealing and greedy heuristics
//!    use [`validate`] as their feasibility test and the objective
//!    functions as their energy;
//! 3. **reporting** — response times, bus loads and chain latencies for the experiment
//!    tables.

#![warn(missing_docs)]

mod chains;
mod cosim;
mod holistic;
mod msg_rta;
mod objective;
mod sim;
mod task_rta;

pub use chains::{all_hop_latency_bounds, hop_latency_bound};
pub use cosim::{cosimulate, CosimOutcome};
pub use holistic::{validate, AnalysisConfig, Report, Violation};
pub use msg_rta::{forwarder, jitter_on_medium, message_response_time, msg_outranks};
pub use objective::{
    bus_load, bus_load_permille, ecu_utilization_permille, sum_trt, token_rotation_time,
    utilization_minmax_spread_permille, utilization_spread_permille,
};
pub use sim::simulate_critical_instant;
pub use task_rta::{all_task_response_times, task_response_time, ResponseTime};
