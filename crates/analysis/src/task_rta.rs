//! Fixed-point response-time analysis for tasks (paper §2, equation 1).
//!
//! For a task `τᵢ` under preemptive fixed-priority scheduling, the worst
//! case response time is the least fixed point of
//!
//! ```text
//! rᵢⁿ⁺¹ = cᵢ + Σ_{j ∈ hp(i)} ⌈rᵢⁿ / tⱼ⌉ · cⱼ
//! ```
//!
//! where `hp(i)` are the higher-priority tasks on the same ECU. The
//! iteration starts at `cᵢ` and stops at the fixed point or as soon as the
//! deadline is exceeded (divergence).

use optalloc_model::{Allocation, TaskId, TaskSet, Time};

/// Result of one task's response-time iteration.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ResponseTime {
    /// Converged within the deadline.
    Converged(Time),
    /// Exceeded the deadline before converging (unschedulable).
    ExceedsDeadline,
}

impl ResponseTime {
    /// The converged value, if any.
    pub fn value(self) -> Option<Time> {
        match self {
            ResponseTime::Converged(r) => Some(r),
            ResponseTime::ExceedsDeadline => None,
        }
    }
}

/// Computes the worst-case response time of `task` under `alloc`.
///
/// Interference comes from every task with higher priority placed on the
/// same ECU (eq. 12 of the encoding: different ECUs never preempt). The
/// optional `extra_interferer_jitter` adds release jitter of interferers
/// (`⌈(r + Jⱼ)/tⱼ⌉`), an extension the paper mentions but does not spell
/// out; pass `false` for the paper's exact eq. (1).
pub fn task_response_time(
    tasks: &TaskSet,
    alloc: &Allocation,
    task: TaskId,
    with_jitter: bool,
) -> ResponseTime {
    let t = tasks.task(task);
    let ecu = alloc.ecu_of(task);
    let own_wcet = t
        .wcet_on(ecu)
        .expect("task placed on an ECU outside its permission set");
    // Higher-priority tasks sharing the ECU.
    let interferers: Vec<(Time, Time, Time)> = tasks
        .iter()
        .filter(|&(j, _)| j != task && alloc.ecu_of(j) == ecu && alloc.outranks(j, task))
        .map(|(_j, tj)| {
            let c = tj
                .wcet_on(ecu)
                .expect("interferer placed outside its permission set");
            let jitter = if with_jitter { tj.release_jitter } else { 0 };
            (tj.period, c, jitter)
        })
        .collect();

    let deadline = t.deadline;
    let mut r = own_wcet;
    loop {
        let mut next = own_wcet;
        for &(period, c, jitter) in &interferers {
            next += (r + jitter).div_ceil(period) * c;
        }
        if next > deadline {
            return ResponseTime::ExceedsDeadline;
        }
        if next == r {
            return ResponseTime::Converged(r);
        }
        r = next;
    }
}

/// Response times for every task; `None` marks unschedulable tasks.
pub fn all_task_response_times(
    tasks: &TaskSet,
    alloc: &Allocation,
    with_jitter: bool,
) -> Vec<Option<Time>> {
    tasks
        .iter()
        .map(|(id, _)| task_response_time(tasks, alloc, id, with_jitter).value())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optalloc_model::{Allocation, EcuId, Task, TaskSet};

    /// Classic example: three tasks on one ECU.
    /// t1: C=1, T=4 (highest), t2: C=2, T=6, t3: C=3, T=12 (lowest).
    /// Known response times: r1=1, r2=3, r3=10.
    fn classic() -> (TaskSet, Allocation) {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("t1", 4, 4, w(1)));
        ts.push(Task::new("t2", 6, 6, w(2)));
        ts.push(Task::new("t3", 12, 12, w(3)));
        let alloc = Allocation::skeleton(&ts); // DM = rate order here
        (ts, alloc)
    }

    #[test]
    fn classic_response_times() {
        let (ts, alloc) = classic();
        let rts = all_task_response_times(&ts, &alloc, false);
        assert_eq!(rts, vec![Some(1), Some(3), Some(10)]);
    }

    #[test]
    fn highest_priority_sees_only_own_wcet() {
        let (ts, alloc) = classic();
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(0), false),
            ResponseTime::Converged(1)
        );
    }

    #[test]
    fn overload_exceeds_deadline() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("hog", 10, 10, w(6)));
        ts.push(Task::new("victim", 20, 15, w(8)));
        let alloc = Allocation::skeleton(&ts);
        // victim: 8 + 2*6 = 20 > 15.
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(1), false),
            ResponseTime::ExceedsDeadline
        );
    }

    #[test]
    fn separate_ecus_do_not_interfere() {
        let mut ts = TaskSet::new();
        ts.push(Task::new("a", 10, 10, vec![(EcuId(0), 6), (EcuId(1), 6)]));
        ts.push(Task::new("b", 10, 10, vec![(EcuId(0), 6), (EcuId(1), 6)]));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(0), EcuId(1)];
        let rts = all_task_response_times(&ts, &alloc, false);
        assert_eq!(rts, vec![Some(6), Some(6)]);
    }

    #[test]
    fn heterogeneous_wcet_uses_placement() {
        let mut ts = TaskSet::new();
        ts.push(Task::new(
            "a",
            100,
            100,
            vec![(EcuId(0), 10), (EcuId(1), 30)],
        ));
        let mut alloc = Allocation::skeleton(&ts);
        alloc.placement = vec![EcuId(1)];
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(0), false),
            ResponseTime::Converged(30)
        );
    }

    #[test]
    fn interferer_jitter_increases_interference() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("hp", 10, 5, w(3)).with_jitter(4));
        ts.push(Task::new("lp", 40, 40, w(5)));
        let alloc = Allocation::skeleton(&ts);
        // Without jitter: r = 5 + ceil(r/10)*3 → 8.
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(1), false),
            ResponseTime::Converged(8)
        );
        // With jitter 4: r = 5 + ceil((r+4)/10)*3 → 5+3=8, ceil(12/10)=2 →
        // 11, ceil(15/10)=2 → 11.
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(1), true),
            ResponseTime::Converged(11)
        );
    }

    #[test]
    fn exact_deadline_hit_is_schedulable() {
        let mut ts = TaskSet::new();
        let w = |c| vec![(EcuId(0), c)];
        ts.push(Task::new("a", 4, 4, w(2)));
        ts.push(Task::new("b", 8, 8, w(4)));
        let alloc = Allocation::skeleton(&ts);
        // b: 4 + 2*2 = 8 = deadline exactly.
        assert_eq!(
            task_response_time(&ts, &alloc, TaskId(1), false),
            ResponseTime::Converged(8)
        );
    }
}
